"""Exact affine symbolic expressions.

An :class:`Affine` is an expression of the form ``c0 + c1*v1 + c2*v2 + ...``
where the coefficients are exact :class:`fractions.Fraction` values and the
variables are strings.  This is the only expression family the PetaBricks
compiler needs: every region bound in the language (``n``, ``n/2``, ``i-1``,
``c/2 + 1`` ...) is affine in the transform's free variables.

Division keeps exact rational coefficients; integral semantics (C-style
flooring) are applied only when an expression is *evaluated* against a
concrete environment, which matches how the original compiler deferred
integer rounding to the runtime.
"""

from __future__ import annotations

import math
import re
from fractions import Fraction
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

Number = Union[int, Fraction]
AffineLike = Union["Affine", int, Fraction, str]


class SymbolicCompareError(Exception):
    """Raised when an inequality between affine expressions is undecidable
    under the available assumptions."""


def _as_fraction(value: Number) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    raise TypeError(f"expected int or Fraction, got {type(value).__name__}")


class Affine:
    """An immutable affine expression ``const + sum(coeff[v] * v)``.

    Instances are hashable and support ``+ - * /`` with other affine
    expressions and numbers (multiplication and division require at least
    one constant operand, since the result must stay affine).
    """

    __slots__ = ("_coeffs", "_const", "_hash")

    def __init__(
        self,
        const: Number = 0,
        coeffs: Optional[Mapping[str, Number]] = None,
    ) -> None:
        self._const = _as_fraction(const)
        items: Dict[str, Fraction] = {}
        if coeffs:
            for var, c in coeffs.items():
                frac = _as_fraction(c)
                if frac != 0:
                    items[var] = frac
        self._coeffs: Tuple[Tuple[str, Fraction], ...] = tuple(
            sorted(items.items())
        )
        self._hash = hash((self._const, self._coeffs))

    # -- constructors ------------------------------------------------------

    @staticmethod
    def var(name: str) -> "Affine":
        """The expression consisting of a single variable."""
        return Affine(0, {name: 1})

    @staticmethod
    def const(value: Number) -> "Affine":
        """A constant expression."""
        return Affine(value)

    @staticmethod
    def coerce(value: AffineLike) -> "Affine":
        """Convert ints, Fractions, variable names, or Affines to Affine."""
        if isinstance(value, Affine):
            return value
        if isinstance(value, (int, Fraction)):
            return Affine(value)
        if isinstance(value, str):
            return parse_affine(value)
        raise TypeError(f"cannot coerce {type(value).__name__} to Affine")

    # -- accessors ---------------------------------------------------------

    @property
    def constant(self) -> Fraction:
        """The constant term."""
        return self._const

    @property
    def coefficients(self) -> Dict[str, Fraction]:
        """A fresh dict of variable coefficients (non-zero only)."""
        return dict(self._coeffs)

    def coefficient(self, var: str) -> Fraction:
        """The coefficient of ``var`` (zero if absent)."""
        for name, coeff in self._coeffs:
            if name == var:
                return coeff
        return Fraction(0)

    def variables(self) -> Tuple[str, ...]:
        """The variables with non-zero coefficient, sorted."""
        return tuple(name for name, _ in self._coeffs)

    def is_constant(self) -> bool:
        return not self._coeffs

    def denominator_lcm(self) -> int:
        """LCM of all coefficient/constant denominators.

        Under any integer assignment of the variables, the expression's
        value is a multiple of ``1/L`` where ``L`` is this LCM.  That
        granularity is what converts inclusive integer bounds to exact
        half-open form: ``v <= q`` over integers is ``v < q + 1/L``, and
        ``ceil(q + 1/L) == floor(q) + 1`` exactly (for integral ``q`` both
        sides are ``q + 1``).  The previous ``q + 1`` shift over-counted by
        one whenever ``q`` evaluated to a non-integer.
        """
        lcm = self._const.denominator
        for _, coeff in self._coeffs:
            lcm = math.lcm(lcm, coeff.denominator)
        return lcm

    def as_constant(self) -> Fraction:
        """The value of a constant expression (raises if not constant)."""
        if self._coeffs:
            raise ValueError(f"{self} is not constant")
        return self._const

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: AffineLike) -> "Affine":
        other = Affine.coerce(other)
        coeffs = dict(self._coeffs)
        for var, coeff in other._coeffs:
            coeffs[var] = coeffs.get(var, Fraction(0)) + coeff
        return Affine(self._const + other._const, coeffs)

    def __radd__(self, other: AffineLike) -> "Affine":
        return self.__add__(other)

    def __neg__(self) -> "Affine":
        return Affine(-self._const, {v: -c for v, c in self._coeffs})

    def __sub__(self, other: AffineLike) -> "Affine":
        return self + (-Affine.coerce(other))

    def __rsub__(self, other: AffineLike) -> "Affine":
        return (-self) + Affine.coerce(other)

    def __mul__(self, other: AffineLike) -> "Affine":
        other = Affine.coerce(other)
        if other.is_constant():
            scale = other._const
            return Affine(
                self._const * scale, {v: c * scale for v, c in self._coeffs}
            )
        if self.is_constant():
            return other.__mul__(self)
        raise ValueError(
            f"product of {self} and {other} is not affine"
        )

    def __rmul__(self, other: AffineLike) -> "Affine":
        return self.__mul__(other)

    def __truediv__(self, other: AffineLike) -> "Affine":
        other = Affine.coerce(other)
        if not other.is_constant():
            raise ValueError(f"cannot divide by symbolic {other}")
        if other._const == 0:
            raise ZeroDivisionError("affine division by zero")
        return Affine(
            self._const / other._const,
            {v: c / other._const for v, c in self._coeffs},
        )

    # -- substitution and evaluation ----------------------------------------

    def subs(self, env: Mapping[str, AffineLike]) -> "Affine":
        """Substitute variables with affine expressions or numbers."""
        result = Affine(self._const)
        for var, coeff in self._coeffs:
            if var in env:
                result = result + Affine.coerce(env[var]) * coeff
            else:
                result = result + Affine(0, {var: coeff})
        return result

    def evaluate(self, env: Mapping[str, Number]) -> Fraction:
        """Exact rational value under a full variable assignment."""
        total = self._const
        for var, coeff in self._coeffs:
            if var not in env:
                raise KeyError(f"no value for variable {var!r} in {self}")
            total += coeff * _as_fraction(env[var])
        return total

    def eval_floor(self, env: Mapping[str, Number]) -> int:
        """Integer value with C-style flooring (``n/2`` -> ``n // 2``)."""
        return math.floor(self.evaluate(env))

    def eval_ceil(self, env: Mapping[str, Number]) -> int:
        """Integer value rounded up; used for lower bounds of intervals."""
        return math.ceil(self.evaluate(env))

    # -- inequality reasoning ------------------------------------------------

    def bounds(
        self, assumptions: "AssumptionsLike" = None
    ) -> Tuple[Optional[Fraction], Optional[Fraction]]:
        """Smallest interval ``[lo, hi]`` guaranteed to contain this
        expression's value, given per-variable bounds.  ``None`` means
        unbounded on that side."""
        from repro.symbolic.assumptions import Assumptions

        asm = Assumptions.coerce(assumptions)
        lo: Optional[Fraction] = self._const
        hi: Optional[Fraction] = self._const
        for var, coeff in self._coeffs:
            var_lo, var_hi = asm.range_of(var)
            if coeff > 0:
                lo = None if (lo is None or var_lo is None) else lo + coeff * var_lo
                hi = None if (hi is None or var_hi is None) else hi + coeff * var_hi
            else:
                lo = None if (lo is None or var_hi is None) else lo + coeff * var_hi
                hi = None if (hi is None or var_lo is None) else hi + coeff * var_lo
        return lo, hi

    def compare(
        self, other: AffineLike, assumptions: "AssumptionsLike" = None
    ) -> Optional[int]:
        """Return -1, 0, or +1 if ``self`` is always <, ==, or > ``other``
        under the assumptions; ``None`` if undecidable."""
        diff = self - Affine.coerce(other)
        if diff.is_constant():
            value = diff.as_constant()
            return (value > 0) - (value < 0)
        lo, hi = diff.bounds(assumptions)
        if lo is not None and lo > 0:
            return 1
        if hi is not None and hi < 0:
            return -1
        if lo is not None and hi is not None and lo == hi == 0:
            return 0
        return None

    def always_le(self, other: AffineLike, assumptions: "AssumptionsLike" = None) -> bool:
        diff = self - Affine.coerce(other)
        if diff.is_constant():
            return diff.as_constant() <= 0
        _, hi = diff.bounds(assumptions)
        return hi is not None and hi <= 0

    def always_ge(self, other: AffineLike, assumptions: "AssumptionsLike" = None) -> bool:
        return Affine.coerce(other).always_le(self, assumptions)

    def always_lt(self, other: AffineLike, assumptions: "AssumptionsLike" = None) -> bool:
        diff = self - Affine.coerce(other)
        if diff.is_constant():
            return diff.as_constant() < 0
        _, hi = diff.bounds(assumptions)
        return hi is not None and hi < 0

    def order_key(self, assumptions: "AssumptionsLike" = None):
        """A callable-friendly helper for sorting bound expressions.

        Sorting mixed symbolic bounds requires a total order; we use
        :func:`sort_bounds` which performs pairwise comparisons and raises
        :class:`SymbolicCompareError` on undecidable pairs.
        """
        raise NotImplementedError("use sort_bounds() to order expressions")

    # -- dunder plumbing -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, Fraction)):
            other = Affine(other)
        if not isinstance(other, Affine):
            return NotImplemented
        return self._const == other._const and self._coeffs == other._coeffs

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Affine({self})"

    def __str__(self) -> str:
        parts = []
        if self._const != 0 or not self._coeffs:
            parts.append(_format_fraction(self._const))
        for var, coeff in self._coeffs:
            if coeff == 1:
                term = var
            elif coeff == -1:
                term = f"-{var}"
            elif coeff.denominator == 1:
                term = f"{coeff.numerator}*{var}"
            else:
                term = f"{coeff.numerator}*{var}/{coeff.denominator}"
            if parts and not term.startswith("-"):
                parts.append(f"+{term}")
            else:
                parts.append(term)
        return "".join(parts) if len(parts) == 1 else " ".join(parts)


def _format_fraction(value: Fraction) -> str:
    if value.denominator == 1:
        return str(value.numerator)
    return f"{value.numerator}/{value.denominator}"


def sort_bounds(
    exprs: Iterable[Affine], assumptions: "AssumptionsLike" = None
) -> Tuple[Affine, ...]:
    """Sort affine expressions into non-decreasing order under assumptions.

    Duplicates (symbolically equal expressions) are collapsed.  Raises
    :class:`SymbolicCompareError` when two bounds cannot be ordered; the
    caller (the choice-grid pass) surfaces this as a compile error, exactly
    as the original compiler did when its inference system failed.
    """
    unique: list[Affine] = []
    for expr in exprs:
        if not any(expr == seen for seen in unique):
            unique.append(expr)
    # Insertion sort with symbolic comparisons: n is tiny (region bounds).
    # Non-strict comparisons suffice: after deduplication, a <= b places a
    # first (ties cannot occur between distinct canonical expressions that
    # are provably <= in both directions unless they are equal everywhere
    # in the assumed range, in which case either order is valid).
    ordered: list[Affine] = []
    for expr in unique:
        placed = False
        for idx, existing in enumerate(ordered):
            if expr.always_le(existing, assumptions):
                ordered.insert(idx, expr)
                placed = True
                break
            if not existing.always_le(expr, assumptions):
                raise SymbolicCompareError(
                    f"cannot order bounds {expr} and {existing}"
                )
        if not placed:
            ordered.append(expr)
    return tuple(ordered)


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<num>\d+)|(?P<name>[A-Za-z_]\w*)|(?P<op>[()+\-*/]))"
)


def parse_affine(text: str) -> Affine:
    """Parse an arithmetic expression like ``"n/2 + 1"`` into an Affine.

    Supports ``+ - * /``, parentheses, integer literals, and variable
    names.  Division is exact-rational; products must have a constant
    operand (otherwise the expression is not affine and a ValueError is
    raised).
    """
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos:].strip() == "":
                break
            raise ValueError(f"bad character in affine expression: {text[pos:]!r}")
        tokens.append(match.group().strip())
        pos = match.end()
    tokens = [tok for tok in tokens if tok]
    index = 0

    def peek() -> Optional[str]:
        return tokens[index] if index < len(tokens) else None

    def take() -> str:
        nonlocal index
        tok = tokens[index]
        index += 1
        return tok

    def parse_expr() -> Affine:
        node = parse_term()
        while peek() in ("+", "-"):
            op = take()
            rhs = parse_term()
            node = node + rhs if op == "+" else node - rhs
        return node

    def parse_term() -> Affine:
        node = parse_unary()
        while peek() in ("*", "/"):
            op = take()
            rhs = parse_unary()
            node = node * rhs if op == "*" else node / rhs
        return node

    def parse_unary() -> Affine:
        if peek() == "-":
            take()
            return -parse_unary()
        if peek() == "+":
            take()
            return parse_unary()
        return parse_atom()

    def parse_atom() -> Affine:
        tok = peek()
        if tok is None:
            raise ValueError(f"unexpected end of expression: {text!r}")
        if tok == "(":
            take()
            node = parse_expr()
            if peek() != ")":
                raise ValueError(f"missing ')' in {text!r}")
            take()
            return node
        take()
        if tok.isdigit():
            return Affine(int(tok))
        return Affine.var(tok)

    result = parse_expr()
    if index != len(tokens):
        raise ValueError(f"trailing tokens in affine expression {text!r}")
    return result


# Imported late to avoid a cycle; used only in type positions above.
from repro.symbolic.assumptions import AssumptionsLike  # noqa: E402
