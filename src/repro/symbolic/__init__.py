"""Symbolic algebra for region analysis.

The PetaBricks compiler performs all of its region reasoning on *affine*
expressions over free variables (matrix sizes like ``n`` and rule
coordinates like ``i``, ``x``, ``y``).  The original system shelled out to
the Maxima CAS for this; everything the compiler actually needs — exact
rational affine arithmetic, inequality reasoning under variable bounds,
half-open interval algebra, and solving affine constraints for a single
variable — is provided natively by this package.

Public surface:

* :class:`~repro.symbolic.expr.Affine` — exact affine expression
  ``c0 + c1*v1 + ...`` with :class:`fractions.Fraction` coefficients.
* :class:`~repro.symbolic.assumptions.Assumptions` — per-variable integer
  bounds used to decide symbolic inequalities.
* :class:`~repro.symbolic.interval.Interval` /
  :class:`~repro.symbolic.interval.Box` — half-open symbolic intervals and
  their n-dimensional products.
* :func:`~repro.symbolic.solve.solve_bounds_for` — turn a constraint
  ``lo <= e(v) < hi`` into an interval for ``v``.
"""

from repro.symbolic.assumptions import Assumptions
from repro.symbolic.expr import Affine, SymbolicCompareError, parse_affine
from repro.symbolic.interval import Box, Interval
from repro.symbolic.solve import solve_bounds_for

__all__ = [
    "Affine",
    "Assumptions",
    "Box",
    "Interval",
    "SymbolicCompareError",
    "parse_affine",
    "solve_bounds_for",
]
