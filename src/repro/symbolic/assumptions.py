"""Variable-range assumptions used to decide symbolic inequalities.

The compiler reasons about region bounds like ``0 <= 1 <= n`` which only
hold under assumptions such as ``n >= 1``.  An :class:`Assumptions` object
records an inclusive integer range per variable.  By default every
variable is assumed non-negative (coordinates and sizes are never
negative in PetaBricks), and transform *size* variables are typically
registered with a minimum of 1 by the compiler frontend.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Mapping, Optional, Tuple, Union

Bound = Optional[Fraction]
AssumptionsLike = Union["Assumptions", Mapping[str, Tuple[int, Optional[int]]], None]

_DEFAULT_RANGE: Tuple[Bound, Bound] = (Fraction(0), None)


class Assumptions:
    """Inclusive per-variable ranges ``lo <= var <= hi`` (``hi=None`` means
    unbounded above)."""

    __slots__ = ("_ranges",)

    def __init__(
        self, ranges: Optional[Mapping[str, Tuple[Optional[int], Optional[int]]]] = None
    ) -> None:
        self._ranges: Dict[str, Tuple[Bound, Bound]] = {}
        if ranges:
            for var, (lo, hi) in ranges.items():
                self._ranges[var] = (
                    None if lo is None else Fraction(lo),
                    None if hi is None else Fraction(hi),
                )

    @staticmethod
    def coerce(value: AssumptionsLike) -> "Assumptions":
        if value is None:
            return Assumptions()
        if isinstance(value, Assumptions):
            return value
        return Assumptions(value)

    def range_of(self, var: str) -> Tuple[Bound, Bound]:
        """The assumed inclusive range of ``var``."""
        return self._ranges.get(var, _DEFAULT_RANGE)

    def with_at_least(self, var: str, minimum: int) -> "Assumptions":
        """A copy with ``var >= minimum`` added (tightening only)."""
        lo, hi = self.range_of(var)
        new_lo = Fraction(minimum) if lo is None else max(lo, Fraction(minimum))
        copy = Assumptions()
        copy._ranges = dict(self._ranges)
        copy._ranges[var] = (new_lo, hi)
        return copy

    def with_range(self, var: str, lo: Optional[int], hi: Optional[int]) -> "Assumptions":
        """A copy with the range of ``var`` replaced."""
        copy = Assumptions()
        copy._ranges = dict(self._ranges)
        copy._ranges[var] = (
            None if lo is None else Fraction(lo),
            None if hi is None else Fraction(hi),
        )
        return copy

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{var}:[{lo},{'inf' if hi is None else hi}]"
            for var, (lo, hi) in sorted(self._ranges.items())
        )
        return f"Assumptions({inner})"
