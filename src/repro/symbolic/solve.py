"""Solving affine constraints for a single variable.

The applicable-region pass needs to answer: for which values of the rule
variable ``i`` does an index expression ``e(i)`` fall inside ``[lo, hi)``?
Because ``e`` is affine in ``i``, this is a one-variable linear
inequality: with ``e = c*i + r`` (``r`` free of ``i``),

* ``c > 0``:  ``i in [ (lo - r)/c, (hi - r)/c )``
* ``c < 0``:  the inequalities flip; the interval endpoints come from the
  opposite constraint sides.  Over the integers ``i > q`` is
  ``i >= floor(q) + 1`` — we encode that exactly as the affine bound
  ``q + 1/L`` where ``L`` is the LCM of ``q``'s denominators: every
  integer assignment makes ``q`` a multiple of ``1/L``, so
  ``ceil(q + 1/L) == floor(q) + 1`` (concrete evaluation rounds interval
  endpoints with ceil).  The same shift turns the inclusive upper bound
  ``i <= q`` into the half-open ``i < q + 1/L``.
* ``c == 0``: the constraint does not restrict ``i``; it is either always
  satisfiable (leave unbounded) or a compile-time error when provably
  violated.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from repro.symbolic.assumptions import AssumptionsLike
from repro.symbolic.expr import Affine, AffineLike
from repro.symbolic.interval import Interval


class UnsatisfiableConstraint(Exception):
    """A dependency index provably falls outside its matrix for every value
    of the rule variables (a compile-time bug in the input program)."""


def solve_bounds_for(
    var: str,
    expr: AffineLike,
    lo: AffineLike,
    hi: AffineLike,
    assumptions: AssumptionsLike = None,
) -> Optional[Interval]:
    """Solve ``lo <= expr(var) < hi`` for ``var``.

    Returns the half-open interval of satisfying values of ``var`` (whose
    endpoints may mention other free variables), or ``None`` when the
    constraint does not involve ``var`` and is not provably violated.
    Raises :class:`UnsatisfiableConstraint` when the constraint is provably
    violated regardless of ``var``.
    """
    expr = Affine.coerce(expr)
    lo = Affine.coerce(lo)
    hi = Affine.coerce(hi)
    coeff = expr.coefficient(var)
    rest = expr - Affine(0, {var: coeff})

    if coeff == 0:
        # The constraint is independent of var: check satisfiability.
        if expr.always_lt(lo, assumptions) or hi.always_le(expr, assumptions):
            raise UnsatisfiableConstraint(
                f"index {expr} can never lie in [{lo}, {hi})"
            )
        return None

    lower = (lo - rest) / coeff
    upper = (hi - rest) / coeff
    if coeff > 0:
        return Interval(lower, upper)
    # Negative coefficient: lo <= c*v + r < hi  <=>
    #   (lo - r)/c >= v  and  v > (hi - r)/c.
    # expr decreasing in var: v ranges over ( (hi-r)/c , (lo-r)/c ].
    strict_low = upper  # exclusive lower bound
    incl_high = lower  # inclusive upper bound
    return Interval(
        strict_low + Fraction(1, strict_low.denominator_lcm()),
        incl_high + Fraction(1, incl_high.denominator_lcm()),
    )


def solve_equal(var: str, lhs: AffineLike, rhs: AffineLike) -> Optional[Affine]:
    """Solve ``lhs(var) == rhs(var)`` for ``var``; ``None`` when ``var``
    cancels out (the equation is then either an identity or inconsistent,
    which the caller must check)."""
    diff = Affine.coerce(lhs) - Affine.coerce(rhs)
    coeff = diff.coefficient(var)
    if coeff == 0:
        return None
    rest = diff - Affine(0, {var: coeff})
    return (-rest) / coeff


def unit_stride_offset(
    src: AffineLike,
    dst: AffineLike,
    src_vars,
    dst_vars,
) -> Optional[Fraction]:
    """Constant dependence offset between two access coordinates.

    ``src`` and ``dst`` are the affine coordinates two rules use to index
    the same dimension of a shared matrix; ``src_vars``/``dst_vars`` are
    the respective rules' instance variables.  The offset is well defined
    when each coordinate sweeps the dimension unit-stride in at most one
    of its own instance variables — then instances pair up positionally
    and the per-pair gap ``(dst - dst_var) - (src - src_var)`` is a single
    number.  Returns that exact :class:`Fraction`, or ``None`` when either
    access is multi-variable, non-unit-stride, or only one side sweeps
    (a broadcast: the gap varies per instance).
    """
    src = Affine.coerce(src)
    dst = Affine.coerce(dst)

    def strip_sweep(expr: Affine, own_vars) -> Optional[Affine]:
        swept = [v for v in expr.variables() if v in own_vars]
        if len(swept) > 1:
            return None
        if not swept:
            return expr
        if expr.coefficient(swept[0]) != 1:
            return None
        return expr - Affine.var(swept[0])

    src_swept = any(v in src_vars for v in src.variables())
    dst_swept = any(v in dst_vars for v in dst.variables())
    if src_swept != dst_swept:
        return None
    src_rest = strip_sweep(src, src_vars)
    dst_rest = strip_sweep(dst, dst_vars)
    if src_rest is None or dst_rest is None:
        return None
    diff = dst_rest - src_rest
    if not diff.is_constant():
        return None
    return diff.as_constant()
