"""Half-open symbolic intervals and n-dimensional boxes.

Every region in PetaBricks is a rectilinear box with affine bounds; the
applicable-region and choice-grid passes manipulate these as
``[lo, hi)`` products.  Interval endpoints are :class:`Affine`
expressions, so emptiness and containment are decided symbolically under
:class:`Assumptions`.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence, Tuple, Union

from repro.symbolic.assumptions import Assumptions, AssumptionsLike
from repro.symbolic.expr import Affine, AffineLike, Number, SymbolicCompareError

IntervalLike = Union["Interval", Tuple[AffineLike, AffineLike]]


class Interval:
    """A half-open interval ``[lo, hi)`` with affine endpoints."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: AffineLike, hi: AffineLike) -> None:
        self.lo = Affine.coerce(lo)
        self.hi = Affine.coerce(hi)

    @staticmethod
    def coerce(value: IntervalLike) -> "Interval":
        if isinstance(value, Interval):
            return value
        lo, hi = value
        return Interval(lo, hi)

    @staticmethod
    def point(at: AffineLike) -> "Interval":
        """The unit interval ``[at, at+1)`` covering a single cell."""
        expr = Affine.coerce(at)
        return Interval(expr, expr + 1)

    @staticmethod
    def empty() -> "Interval":
        return Interval(0, 0)

    def length(self) -> Affine:
        return self.hi - self.lo

    def is_empty(self, assumptions: AssumptionsLike = None) -> Optional[bool]:
        """True/False if decidable, None if it depends on variable values."""
        if self.hi.always_le(self.lo, assumptions):
            return True
        if self.lo.always_lt(self.hi, assumptions):
            return False
        return None

    def intersect(
        self, other: IntervalLike, assumptions: AssumptionsLike = None
    ) -> "Interval":
        """Symbolic intersection: max of lows, min of highs.

        When the ordering of the two lows (or highs) is undecidable under
        the assumptions the result cannot be expressed as a single affine
        bound and a :class:`SymbolicCompareError` is raised.
        """
        other = Interval.coerce(other)
        return Interval(
            _symbolic_max(self.lo, other.lo, assumptions),
            _symbolic_min(self.hi, other.hi, assumptions),
        )

    def shift(self, offset: AffineLike) -> "Interval":
        offset = Affine.coerce(offset)
        return Interval(self.lo + offset, self.hi + offset)

    def subs(self, env: Mapping[str, AffineLike]) -> "Interval":
        return Interval(self.lo.subs(env), self.hi.subs(env))

    def contains(
        self, other: IntervalLike, assumptions: AssumptionsLike = None
    ) -> bool:
        """True when ``other`` is provably inside ``self``."""
        other = Interval.coerce(other)
        if other.is_empty(assumptions) is True:
            return True
        return self.lo.always_le(other.lo, assumptions) and other.hi.always_le(
            self.hi, assumptions
        )

    def concrete(self, env: Mapping[str, Number]) -> Tuple[int, int]:
        """Integer endpoints under a full assignment.

        For integer iteration over ``[lo, hi)``, a fractional lower bound
        rounds up (smallest integer >= lo) and a fractional upper bound
        rounds up as well (integers i satisfy ``i < q`` iff ``i < ceil(q)``).
        """
        return self.lo.eval_ceil(env), self.hi.eval_ceil(env)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Interval):
            return NotImplemented
        return self.lo == other.lo and self.hi == other.hi

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __repr__(self) -> str:
        return f"[{self.lo}, {self.hi})"


def _symbolic_max(a: Affine, b: Affine, assumptions: AssumptionsLike = None) -> Affine:
    if a.always_ge(b, assumptions):
        return a
    if b.always_ge(a, assumptions):
        return b
    raise SymbolicCompareError(f"cannot compute max({a}, {b}) symbolically")


def _symbolic_min(a: Affine, b: Affine, assumptions: AssumptionsLike = None) -> Affine:
    if a.always_le(b, assumptions):
        return a
    if b.always_le(a, assumptions):
        return b
    raise SymbolicCompareError(f"cannot compute min({a}, {b}) symbolically")


class Box:
    """An n-dimensional product of half-open intervals.

    A zero-dimensional box represents a scalar region (used for
    zero-dimensional matrices, which PetaBricks treats as single values).
    """

    __slots__ = ("intervals",)

    def __init__(self, intervals: Iterable[IntervalLike]) -> None:
        self.intervals: Tuple[Interval, ...] = tuple(
            Interval.coerce(iv) for iv in intervals
        )

    @staticmethod
    def cell(coords: Sequence[AffineLike]) -> "Box":
        """The unit box covering a single cell at ``coords``."""
        return Box([Interval.point(c) for c in coords])

    @staticmethod
    def whole(sizes: Sequence[AffineLike]) -> "Box":
        """The box ``[0, size)`` in every dimension."""
        return Box([Interval(0, s) for s in sizes])

    @property
    def ndim(self) -> int:
        return len(self.intervals)

    def is_empty(self, assumptions: AssumptionsLike = None) -> Optional[bool]:
        """Empty if any dimension is empty; None when undecidable."""
        any_unknown = False
        for interval in self.intervals:
            state = interval.is_empty(assumptions)
            if state is True:
                return True
            if state is None:
                any_unknown = True
        return None if any_unknown else False

    def intersect(
        self, other: "Box", assumptions: AssumptionsLike = None
    ) -> "Box":
        if self.ndim != other.ndim:
            raise ValueError(
                f"dimension mismatch: {self.ndim} vs {other.ndim}"
            )
        return Box(
            a.intersect(b, assumptions)
            for a, b in zip(self.intervals, other.intervals)
        )

    def shift(self, offsets: Sequence[AffineLike]) -> "Box":
        if len(offsets) != self.ndim:
            raise ValueError("offset arity mismatch")
        return Box(
            iv.shift(off) for iv, off in zip(self.intervals, offsets)
        )

    def subs(self, env: Mapping[str, AffineLike]) -> "Box":
        return Box(iv.subs(env) for iv in self.intervals)

    def contains(self, other: "Box", assumptions: AssumptionsLike = None) -> bool:
        if self.ndim != other.ndim:
            return False
        return all(
            a.contains(b, assumptions)
            for a, b in zip(self.intervals, other.intervals)
        )

    def concrete(self, env: Mapping[str, Number]) -> Tuple[Tuple[int, int], ...]:
        """Integer ``(lo, hi)`` per dimension under a full assignment."""
        return tuple(iv.concrete(env) for iv in self.intervals)

    def volume(self, env: Mapping[str, Number]) -> int:
        """Number of integer cells under a full assignment."""
        total = 1
        for lo, hi in self.concrete(env):
            total *= max(0, hi - lo)
        return total

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Box):
            return NotImplemented
        return self.intervals == other.intervals

    def __hash__(self) -> int:
        return hash(self.intervals)

    def __repr__(self) -> str:
        if not self.intervals:
            return "Box(scalar)"
        return " x ".join(repr(iv) for iv in self.intervals)
