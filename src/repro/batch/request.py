"""Batch requests and the bucket-key grouper.

A request is ``(transform, inputs, config[, sizes])``.  Two requests
share a bucket — and therefore a stacked execution — exactly when the
engine can prove they run the *same* generated code over the *same*
iteration geometry: same program object, same transform, same exact
input shapes, same configuration content, same explicit sizes.  Exact
shapes (not a coarser size class) are required because stacking lays
requests along a new leading axis of one shared array per matrix.

The program component of the key is a registration token handed out per
compiled-program object in first-seen order: deterministic for a given
submission sequence without hashing IR structure.  The config component
is a blake2b digest of :meth:`ChoiceConfig.to_json`, so distinct config
objects with equal content share a bucket.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.compiler.codegen import CompiledTransform, ExecutionError
from repro.compiler.config import ChoiceConfig
from repro.runtime.matrix import Matrix

ArrayLike = Union[np.ndarray, Matrix, Sequence]

#: Bucket key: (program token, transform, shapes, config digest, sizes).
BucketKey = Tuple[str, str, Tuple[Tuple[int, ...], ...], str, Tuple]


@dataclass
class BatchRequest:
    """One submitted execution, tagged with its submission id."""

    request_id: int
    transform: CompiledTransform
    inputs: Union[Mapping[str, ArrayLike], Sequence[ArrayLike], None]
    config: Optional[ChoiceConfig]
    sizes: Optional[Mapping[str, int]] = None
    #: The config-content digest, snapshotted when the request is
    #: submitted.  Bucketing reads this field — never the live config
    #: object — so mutating a config after ``submit`` can neither
    #: corrupt grouping nor pin the object in an engine-lifetime memo.
    digest: str = "default"
    #: None when the request cannot be shape-analyzed (wrong input
    #: count / missing name); such requests bucket alone and run
    #: serially, reproducing the engine's exact error.
    shapes: Optional[Tuple[Tuple[int, ...], ...]] = None
    #: Inputs as float64 arrays in declared order, converted once at
    #: submit (None exactly when ``shapes`` is None).
    arrays: Optional[Tuple[np.ndarray, ...]] = None


@dataclass
class BatchResult:
    """The outcome of one request: outputs or the serial engine's error."""

    request_id: int
    outputs: Optional[Dict[str, Matrix]]
    error: Optional[Exception] = None
    #: True when the result came off a stacked (batched) execution.
    stacked: bool = False
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.error is None

    def output(self, name: Optional[str] = None) -> np.ndarray:
        """One output as a numpy array (mirrors ``RunResult.output``)."""
        if self.error is not None:
            raise self.error
        assert self.outputs is not None
        if name is None:
            if len(self.outputs) != 1:
                raise ValueError("transform has multiple outputs; pass a name")
            name = next(iter(self.outputs))
        return self.outputs[name].data


def input_arrays(
    transform: CompiledTransform,
    inputs: Union[Mapping[str, ArrayLike], Sequence[ArrayLike], None],
) -> Tuple[np.ndarray, ...]:
    """Inputs as float64 arrays in declared order, validated the same
    way the serial engine validates them (same error messages)."""
    declared = transform.ir.inputs
    if inputs is None:
        inputs = {}
    values = []
    if isinstance(inputs, Mapping):
        items = dict(inputs)
        for mat in declared:
            if mat.name not in items:
                raise ExecutionError(
                    f"{transform.name}: missing input {mat.name!r}"
                )
            values.append(items.pop(mat.name))
        if items:
            raise ExecutionError(
                f"{transform.name}: unexpected inputs {sorted(items)}"
            )
    else:
        supplied = list(inputs)
        if len(supplied) != len(declared):
            raise ExecutionError(
                f"{transform.name}: expected {len(declared)} inputs, "
                f"got {len(supplied)}"
            )
        values = supplied
    return tuple(
        v.data if isinstance(v, Matrix) else np.asarray(v, dtype=np.float64)
        for v in values
    )


def request_shapes(
    transform: CompiledTransform,
    inputs: Union[Mapping[str, ArrayLike], Sequence[ArrayLike], None],
) -> Tuple[Tuple[int, ...], ...]:
    """Exact input shapes in declared order (raises like the engine
    would when the request is malformed)."""
    return tuple(a.shape for a in input_arrays(transform, inputs))


def config_digest(config: Optional[ChoiceConfig]) -> str:
    if config is None:
        return "default"
    return hashlib.blake2b(
        config.to_json().encode(), digest_size=8
    ).hexdigest()


def bucket_key(program_token: str, request: BatchRequest) -> BucketKey:
    """The grouping key; malformed requests get a singleton key so the
    serial fallback reports their error without touching a live bucket.

    The config component is ``request.digest``, snapshotted at submit —
    grouping never re-serializes the config and never dereferences the
    live object."""
    if request.shapes is None:
        return (
            program_token,
            request.transform.name,
            (),
            f"invalid:{request.request_id}",
            (),
        )
    sizes = (
        tuple(sorted((str(k), int(v)) for k, v in request.sizes.items()))
        if request.sizes
        else ()
    )
    return (
        program_token,
        request.transform.name,
        request.shapes,
        request.digest,
        sizes,
    )
