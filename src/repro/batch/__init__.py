"""Batched many-small-problems execution (``repro.batch``).

Production traffic for a PetaBricks-style system is not one big matmul
— it is streams of tiny heterogeneous requests, a grain at which
per-call planning amortizes badly.  This package turns the library
into something a request firehose can hit:

* :mod:`repro.batch.request` — requests, results, and the bucket-key
  grouper (same program + transform + exact shapes + config → one
  bucket sharing all compile-time caches).
* :mod:`repro.batch.stacked` — the stacked execution path: a bucket
  runs as batched NumPy steps over a leading request axis, planned by
  the batch-axis extension of :mod:`repro.engine_fast.vectorize`.
* :mod:`repro.batch.engine` — :class:`BatchEngine` with the async
  ``submit()``/``gather()`` API, per-request error isolation, serial
  fallback for non-stackable work, and throughput counters.

The ``repro batch`` CLI subcommand feeds a JSONL request stream into a
:class:`BatchEngine`; the PB503 diagnostic (``repro check``) reports
per-transform stackability via :func:`~repro.batch.stacked.batch_eligibility`.
"""

from repro.batch.engine import BatchEngine
from repro.batch.request import (
    BatchRequest,
    BatchResult,
    bucket_key,
    config_digest,
    request_shapes,
)
from repro.batch.stacked import (
    StackedPlan,
    batch_eligibility,
    plan_stacked,
    run_stacked,
)

__all__ = [
    "BatchEngine",
    "BatchRequest",
    "BatchResult",
    "StackedPlan",
    "batch_eligibility",
    "bucket_key",
    "config_digest",
    "plan_stacked",
    "request_shapes",
    "run_stacked",
]
