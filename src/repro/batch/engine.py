"""The batch execution engine: submit/gather over bucketed requests.

:class:`BatchEngine` accepts many small execution requests, groups them
into buckets of provably-identical work (:mod:`repro.batch.request`),
and serves each bucket either *stacked* — one batched NumPy sweep over
a leading request axis (:mod:`repro.batch.stacked`) — or *serially*,
one ``CompiledTransform.run`` per request, when the bucket's transform
or configuration is not stackable.  Every program is batchable; only
the throughput differs.

Semantics:

* ``submit`` is asynchronous: it records the request and returns an id
  immediately; nothing executes until ``gather``.
* ``gather`` executes all pending requests and returns their results
  **in submission order**, regardless of bucket completion order
  (buckets drain in deterministic scrambled order — see
  :class:`repro.runtime.batchqueue.BucketQueue`).
* Errors are isolated per request: a stacked sweep that raises (e.g.
  one lane divides by zero) demotes its chunk to serial execution, so
  each request gets exactly the result or exception the serial engine
  gives it.  One bad request never poisons its bucket.

Counters on the optional :class:`~repro.observe.trace.TraceSink`:
``batch.requests``, ``batch.buckets``, ``batch.stacked_steps``,
``batch.stacked_requests``, ``batch.fallbacks``,
``batch.deadline_skips`` (requests resolved to a structured
deadline-exceeded error by an expired ``gather`` budget), plus a
``batch.requests_per_sec`` histogram (wall-clock, histogram-only — the
event stream stays deterministic).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.batch.request import (
    ArrayLike,
    BatchRequest,
    BatchResult,
    BucketKey,
    bucket_key,
    config_digest,
    input_arrays,
)
from repro.batch.stacked import StackedPlan, plan_stacked, run_stacked
from repro.compiler.codegen import CompiledTransform
from repro.compiler.config import ChoiceConfig
from repro.runtime.batchqueue import BucketQueue
from repro.runtime.matrix import Matrix


class BatchEngine:
    """Bucketing submit/gather executor for many small requests.

    ``max_stack`` caps how many requests share one stacked sweep; a
    bucket larger than that runs as several chunks (bounding peak
    memory: one chunk's arrays are ``max_stack`` × the serial
    footprint).

    The engine is safe to keep alive indefinitely (the serve daemon
    does): configs are frozen at submit — each request carries a private
    copy plus its content digest, so mutating the caller's config object
    after ``submit`` affects neither bucketing nor execution, and the
    engine holds no per-config-object state between gathers.  The
    stacked-plan cache is a bounded LRU (``plan_cache_size`` buckets).
    """

    def __init__(
        self,
        sink=None,
        max_stack: int = 1024,
        plan_cache_size: int = 256,
    ) -> None:
        if max_stack < 1:
            raise ValueError("max_stack must be >= 1")
        if plan_cache_size < 1:
            raise ValueError("plan_cache_size must be >= 1")
        self.sink = sink
        self.max_stack = max_stack
        self.plan_cache_size = plan_cache_size
        self._pending: List[BatchRequest] = []
        self._results: Dict[int, BatchResult] = {}
        self._tokens: Dict[int, str] = {}
        self._token_refs: List[CompiledTransform] = []  # keep ids alive
        self._plans: "OrderedDict[BucketKey, Tuple[Optional[StackedPlan], str]]" = (
            OrderedDict()
        )
        self._next_id = 0

    # -- submission ---------------------------------------------------------

    def submit(
        self,
        transform: CompiledTransform,
        inputs: Union[Mapping[str, ArrayLike], Sequence[ArrayLike], None],
        config: Optional[ChoiceConfig] = None,
        sizes: Optional[Mapping[str, int]] = None,
        digest: Optional[str] = None,
    ) -> int:
        """Queue one request; returns its id (also its gather position).

        The config is frozen here: the request keeps a private copy and
        its content digest, so two submits separated by a mutation land
        in different buckets and run with the configs they were
        submitted with.  ``digest`` lets a caller that guarantees the
        config is immutable (the serve registry versions its configs
        and never mutates them) pass the precomputed digest and skip
        both the copy and the serialization — the zero-serialization
        hot path.
        """
        request_id = self._next_id
        self._next_id += 1
        if digest is None:
            digest = config_digest(config)
            if config is not None:
                config = config.copy()
        try:
            arrays = input_arrays(transform, inputs)
            shapes = tuple(array.shape for array in arrays)
        except Exception:
            # malformed: serial fallback reports the error
            arrays = None
            shapes = None
        self._pending.append(
            BatchRequest(
                request_id=request_id,
                transform=transform,
                inputs=inputs,
                config=config,
                sizes=sizes,
                digest=digest,
                shapes=shapes,
                arrays=arrays,
            )
        )
        return request_id

    def gather(self, deadline=None) -> List[BatchResult]:
        """Execute everything pending; results in submission order.

        ``deadline`` is an optional budget object (duck-typed: the serve
        layer passes :class:`repro.serve.resilience.Deadline`) exposing
        ``expired()`` and ``error()``.  It is checked at bucket, chunk,
        and serial-request boundaries: once expired, every not-yet-
        started request resolves to a well-formed ``error()`` result
        while requests already inside a stacked chunk complete normally
        — an expired budget never abandons half-written results.
        """
        pending, self._pending = self._pending, []
        if not pending:
            return []
        started = time.perf_counter()
        queue: BucketQueue[BatchRequest] = BucketQueue()
        for request in pending:
            queue.add(self._key(request), request)
        for key, requests in queue.drain():
            if deadline is not None and deadline.expired():
                self._expire(requests, deadline)
                continue
            if self.sink is not None:
                self.sink.count("batch.buckets")
            self._run_bucket(key, requests, deadline)
        elapsed = time.perf_counter() - started
        if self.sink is not None:
            self.sink.count("batch.requests", len(pending))
            if elapsed > 0:
                self.sink.observe(
                    "batch.requests_per_sec", len(pending) / elapsed
                )
        return [
            self._results.pop(request.request_id) for request in pending
        ]

    def run(
        self,
        requests: Sequence[
            Tuple[CompiledTransform, Union[Mapping, Sequence, None]]
        ],
        config: Optional[ChoiceConfig] = None,
    ) -> List[BatchResult]:
        """Convenience: submit ``(transform, inputs)`` pairs and gather."""
        for transform, inputs in requests:
            self.submit(transform, inputs, config)
        return self.gather()

    # -- bucketing ----------------------------------------------------------

    def _key(self, request: BatchRequest) -> BucketKey:
        token = self._tokens.get(id(request.transform.program))
        if token is None:
            token = f"p{len(self._token_refs)}"
            self._tokens[id(request.transform.program)] = token
            self._token_refs.append(request.transform)
        return bucket_key(token, request)

    def _expire(self, requests: List[BatchRequest], deadline) -> None:
        """Resolve every request to the deadline's structured error."""
        if self.sink is not None:
            self.sink.count("batch.deadline_skips", len(requests))
        for request in requests:
            self._results[request.request_id] = BatchResult(
                request_id=request.request_id,
                outputs=None,
                error=deadline.error(),
                stacked=False,
            )

    def _run_bucket(
        self, key: BucketKey, requests: List[BatchRequest], deadline=None
    ) -> None:
        first = requests[0]
        plan = None
        if first.shapes is not None:
            cached = self._plans.get(key)
            if cached is None:
                cached = plan_stacked(
                    first.transform, first.shapes, first.config, first.sizes
                )
                self._plans[key] = cached
                if len(self._plans) > self.plan_cache_size:
                    self._plans.popitem(last=False)
            else:
                self._plans.move_to_end(key)
            plan, _reason = cached
        if plan is None:
            for request in requests:
                if deadline is not None and deadline.expired():
                    self._expire([request], deadline)
                    continue
                self._run_serial(request, fallback=True)
            return
        for start in range(0, len(requests), self.max_stack):
            chunk = requests[start : start + self.max_stack]
            if deadline is not None and deadline.expired():
                self._expire(chunk, deadline)
                continue
            self._run_chunk(plan, chunk)

    def _run_chunk(
        self, plan: StackedPlan, chunk: List[BatchRequest]
    ) -> None:
        transform = chunk[0].transform
        declared = [mat.name for mat in transform.ir.inputs]
        try:
            stacked_inputs = {
                name: np.stack([request.arrays[pos] for request in chunk])
                for pos, name in enumerate(declared)
            }
            outputs = run_stacked(
                transform, plan, stacked_inputs, len(chunk), sink=self.sink
            )
        except Exception:
            # Demote the whole chunk: each request re-runs serially and
            # owns its exact serial result or error.
            for request in chunk:
                self._run_serial(request, fallback=True)
            return
        if self.sink is not None:
            self.sink.count("batch.stacked_requests", len(chunk))
        for lane, request in enumerate(chunk):
            self._results[request.request_id] = BatchResult(
                request_id=request.request_id,
                outputs={
                    name: Matrix(storage.data[lane].copy(), name)
                    for name, storage in outputs.items()
                },
                stacked=True,
                meta={"sizes": dict(plan.env)},
            )

    def _run_serial(self, request: BatchRequest, fallback: bool) -> None:
        if fallback and self.sink is not None:
            self.sink.count("batch.fallbacks")
        try:
            result = request.transform.run(
                request.inputs, request.config, sizes=request.sizes
            )
            outcome = BatchResult(
                request_id=request.request_id,
                outputs=result.outputs,
                stacked=False,
                meta={"sizes": result.sizes},
            )
        except Exception as error:
            outcome = BatchResult(
                request_id=request.request_id,
                outputs=None,
                error=error,
                stacked=False,
            )
        self._results[request.request_id] = outcome
