"""Stacked execution: one bucket of same-shaped requests, one sweep.

``plan_stacked`` walks a transform's choice-grid schedule exactly the
way the serial engine does — same size binding, same order/size guards,
same option selection, same cached geometry — and asks the batch-axis
vector planner (:func:`repro.engine_fast.vectorize.plan_vector_leaf`
with ``batch=True``) for every nonempty segment the configuration
selects.  If every segment qualifies, the whole transform runs as a
sequence of batched NumPy steps over arrays carrying a leading
request axis; otherwise the plan reports the first blocking reason and
the engine falls back to per-request serial execution.

Eligibility for stacking is strictly narrower than PB501 vector
eligibility: a segment whose selected option carries a where-clause
fallback, a native body, or a whole-matrix rule is rejected even though
the serial engine handles it fine — those constructs take per-instance
control-flow decisions that may differ between batch lanes.  The
correctness contract is unchanged either way: stacked outputs are
byte-identical to per-request serial outputs (the batch axis is pure
broadcast; see :mod:`repro.engine_fast.vectorize`), and any error a
stacked run raises demotes its bucket to serial execution, which
reproduces each request's exact serial outcome.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compiler.codegen import CompiledTransform
from repro.compiler.config import ChoiceConfig
from repro.compiler.ir import ROLE_OUTPUT
from repro.engine_fast.vectorize import VectorPlan
from repro.runtime.matrix import Matrix


@dataclass
class StackedStep:
    """One data-parallel segment application, batched."""

    segment_key: str
    rule_label: str
    plan: VectorPlan
    #: ``(lo, count)`` pairs per free variable, flattened — the trailing
    #: arguments of the plan's step function.
    free_args: Tuple[int, ...]
    #: Concrete chain-variable value lists (empty tuple list = one step).
    chain_steps: Tuple[Tuple[int, ...], ...]


@dataclass
class StackedPlan:
    """Everything needed to run a bucket: shared env, tunables, steps."""

    env: Dict[str, int]
    problem_size: int
    tunables: Dict[str, int]
    #: (name, shape, is_output) per allocated matrix, schedule order.
    allocations: Tuple[Tuple[str, Tuple[int, ...], bool], ...]
    steps: Tuple[StackedStep, ...]


def plan_stacked(
    transform: CompiledTransform,
    shapes: Sequence[Tuple[int, ...]],
    config: Optional[ChoiceConfig],
    explicit_sizes=None,
) -> Tuple[Optional[StackedPlan], str]:
    """Plan one bucket, or explain why it must run serially.

    Returns ``(plan, "")`` when every nonempty scheduled segment under
    ``config`` admits a batched vector step, else ``(None, reason)``.
    Planning failures include anything the serial engine would raise at
    this (shapes, config) point — guard violations, bad option indices —
    because the serial fallback reproduces those errors per request.
    """
    config = config or ChoiceConfig()
    try:
        return _plan(transform, shapes, config, explicit_sizes)
    except Exception as error:  # serial fallback reproduces the error
        return None, str(error)


def _plan(transform, shapes, config, explicit_sizes):
    env = transform.bind_sizes_from_shapes(shapes, explicit_sizes)
    for guard in transform.grid.order_guards:
        if guard.evaluate(env) < 0:
            return None, f"order guard {guard} fails at {dict(env)}"

    allocations: List[Tuple[str, Tuple[int, ...], bool]] = []
    cells = 0
    for mat, shape in zip(transform.ir.inputs, shapes):
        cells += int(np.prod(shape, dtype=np.int64)) if shape else 1
    for mat in transform.ir.outputs + transform.ir.throughs:
        shape = tuple(dim.eval_floor(env) for dim in mat.dims)
        allocations.append((mat.name, shape, mat.role == ROLE_OUTPUT))
        cells += int(np.prod(shape, dtype=np.int64)) if shape else 1
    problem_size = cells
    tunables = transform.tunables_at(config, problem_size)

    steps: List[StackedStep] = []
    for node in transform.depgraph.schedule_order:
        segment = transform._segments.get(node)
        if segment is None:
            continue  # an input matrix
        bounds = segment.box.concrete(env)
        volume = 1
        for lo, hi in bounds:
            volume *= max(0, hi - lo)
        if volume == 0:
            continue
        option = transform._select_option(config, segment, problem_size)
        rule = transform.ir.rules[option.primary]
        if option.fallback is not None:
            return None, (
                f"{segment.key}: selected option has a where-clause "
                f"fallback (per-lane control flow)"
            )
        if not rule.is_instance_rule or rule.native_body is not None:
            return None, f"{segment.key}: selected rule is not a DSL instance rule"
        if rule.residual_where:
            return None, f"{segment.key}: selected rule has a where clause"
        transform._check_size_guards(rule, env)
        plan, reason = transform._vector_plan(segment, rule, False, batch=True)
        if plan is None:
            return None, f"{segment.key}: {reason}"
        geometry = transform.geometry_for(segment, rule, env, bounds)
        free_args: List[int] = []
        for var in plan.free_vars:
            lo, hi = geometry.var_ranges[var]
            free_args.extend((lo, hi - lo))
        chain_steps = (
            tuple(itertools.product(*geometry.chain_value_lists))
            if geometry.chain_vars
            else ((),)
        )
        steps.append(
            StackedStep(
                segment_key=segment.key,
                rule_label=rule.label,
                plan=plan,
                free_args=tuple(free_args),
                chain_steps=chain_steps,
            )
        )
    return (
        StackedPlan(
            env=env,
            problem_size=problem_size,
            tunables=tunables,
            allocations=tuple(allocations),
            steps=tuple(steps),
        ),
        "",
    )


def run_stacked(
    transform: CompiledTransform,
    plan: StackedPlan,
    stacked_inputs: Dict[str, np.ndarray],
    batch: int,
    sink=None,
) -> Dict[str, Matrix]:
    """Execute one planned bucket over ``batch`` stacked requests.

    ``stacked_inputs`` maps each declared input to an array of shape
    ``(batch,) + serial_shape``.  Outputs come back batched the same
    way; the engine slices lane ``i`` out for request ``i``.  Output
    and through storage is allocated via ``Matrix.zeros`` so unwritten
    cells match serial allocation bit-for-bit (the differential suite
    monkeypatches allocation to sentinel-fill and compares write sets).
    """
    arrays: Dict[str, np.ndarray] = dict(stacked_inputs)
    outputs: Dict[str, Matrix] = {}
    for name, shape, is_output in plan.allocations:
        storage = Matrix.zeros(
            (batch,) + shape, name=f"{transform.name}.{name}"
        )
        arrays[name] = storage.data
        if is_output:
            outputs[name] = storage
    for step in plan.steps:
        step_fn = step.plan.maker(
            plan.env,
            plan.tunables,
            {name: arrays[name] for name in step.plan.matrices},
        )
        for chain_values in step.chain_steps:
            step_fn(*chain_values, *step.free_args)
            if sink is not None:
                sink.count("batch.stacked_steps")
    return outputs


def batch_eligibility(
    transform: CompiledTransform,
) -> Tuple[str, str]:
    """Static per-transform batch-axis eligibility, for PB503.

    Returns ``(status, detail)`` with status one of:

    * ``"full"`` — every (segment, option) site stacks; any
      configuration of this transform batches without fallback.
    * ``"partial"`` — every segment has at least one stackable option,
      so *some* configurations batch; ``detail`` names the first
      blocked site.
    * ``"none"`` — some segment has no stackable option; every bucket
      of this transform falls back to per-request execution.  ``detail``
      carries the blocking reason.
    """
    any_blocked = ""
    for segment in transform.grid.all_segments():
        segment_ok = False
        segment_reason = ""
        for option in segment.options:
            ok, reason = _option_status(transform, segment, option)
            if ok:
                segment_ok = True
            else:
                if not segment_reason:
                    segment_reason = reason
                if not any_blocked:
                    any_blocked = f"{segment.key}: {reason}"
        if not segment_ok:
            return "none", f"{segment.key}: {segment_reason}"
    if any_blocked:
        return "partial", any_blocked
    return "full", ""


def _option_status(transform, segment, option) -> Tuple[bool, str]:
    rule = transform.ir.rules[option.primary]
    if option.fallback is not None:
        return False, "option has a where-clause fallback"
    if rule.native_body is not None:
        return False, "rule has a native body"
    if not rule.is_instance_rule:
        return False, "rule is not an instance rule"
    if rule.residual_where:
        return False, "rule has a where clause"
    try:
        plan, reason = transform._vector_plan(segment, rule, False, batch=True)
    except Exception as error:
        return False, str(error)
    if plan is None:
        return False, reason
    return True, ""
