"""Deterministic, seeded fault injection.

Every decision the injector makes is a pure function of ``(injector
seed, fault kind, fault identity, attempt)`` — hashed with blake2b, the
same construction :func:`repro.autotuner.evaluation.measurement_seed`
uses — so a fault plan fires identically across runs, across worker
processes, and regardless of evaluation order.  That is what makes the
recovery machinery of :mod:`repro.autotuner.parallel` testable in CI:
an injected crash is as reproducible as the measurement it interrupts.

Spec grammar (the CLI's ``--inject`` argument)::

    SPEC    := ITEM (',' ITEM)*
    ITEM    := FAULT | OPTION
    FAULT   := KIND ':' PROB ('x' REPEAT)?
    OPTION  := 'seed' '=' INT | 'hang' '=' SECONDS
    KIND    := 'worker-crash' | 'worker-hang' | 'transient'
             | 'corrupt-record' | 'cache-corrupt'
             | 'conn-drop' | 'slow-handler' | 'shed-storm'
             | 'store-io-fail' | 'drain-race'

``PROB`` is the per-attempt firing probability.  ``REPEAT`` bounds how
many attempts of one identity the fault may fire on: it defaults to 1
for ``PROB < 1`` (the fault fires at most once, so a single retry always
recovers and tuned output is provably identical to a fault-free run) and
to unbounded for ``PROB >= 1`` (a persistent fault, e.g. a candidate
that kills every worker — the quarantine path).  ``seed`` reseeds the
decision hash; ``hang`` sets how long an injected hang sleeps.

Example: ``worker-crash:0.2,worker-hang:0.05,seed=7,hang=2``.

Fault kinds
-----------

* ``worker-crash`` — the worker process exits hard (``os._exit``),
  breaking the process pool: exercises rebuild + retry.
* ``worker-hang`` — the worker sleeps ``hang`` seconds before
  measuring: exercises the per-measurement deadline.
* ``transient`` — the worker reports a retryable error record:
  exercises bounded retries with backoff.
* ``corrupt-record`` — the worker returns a malformed result record:
  exercises parent-side record validation + retry.
* ``cache-corrupt`` — a flushed cache line is garbled on disk:
  exercises the crash-safe cache loader.

The first four are process-boundary faults and fire only in pool
workers; the serial (in-process) evaluation path injects ``transient``
faults only — a crash or hang cannot be recovered from in-process, and
degraded-serial mode exists precisely to escape them.

Serve-side fault kinds (injected into the daemon stack — see
:mod:`repro.serve` and :mod:`repro.faults.serve_harness`; identities
key off the request's ``rid`` payload field and the client's retry
``attempt`` counter, so HTTP fault plans replay identically too):

* ``conn-drop`` — the daemon truncates a response mid-body and closes
  the connection: exercises client retry on ``IncompleteRead``.
* ``slow-handler`` — an admitted request sleeps in its handler:
  exercises deadline budgets and queue backpressure.
* ``shed-storm`` — admission force-sheds the request with a structured
  429: exercises Retry-After honoring and shed-then-retry parity.
* ``store-io-fail`` — an artifact-store write raises ``OSError``
  before any byte reaches disk: exercises durable-before-acknowledged
  publish ordering and restart recovery.
* ``drain-race`` — an in-flight request flips the daemon to draining
  mid-dispatch: exercises graceful-drain semantics under race.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Fault kinds the injector understands.
KINDS: Tuple[str, ...] = (
    "worker-crash",
    "worker-hang",
    "transient",
    "corrupt-record",
    "cache-corrupt",
    # serve-side kinds (daemon / transport / artifact store)
    "conn-drop",
    "slow-handler",
    "shed-storm",
    "store-io-fail",
    "drain-race",
)

#: Default decision seed ("FA17" — fault).
DEFAULT_SEED = 0xFA17

#: Default injected hang duration (seconds); far beyond any sane
#: measurement deadline, so an unrecovered hang is indistinguishable
#: from a dead worker.
DEFAULT_HANG_SECONDS = 3600.0


class FaultSpecError(ValueError):
    """An ``--inject`` spec string failed to parse."""


class TransientFault(RuntimeError):
    """An injected transient failure — always retryable."""


@dataclass(frozen=True)
class FaultRule:
    """One fault kind's firing policy.

    ``repeat`` bounds the attempts (0-based) the rule may fire on;
    ``None`` means unbounded (a persistent fault).
    """

    kind: str
    probability: float
    repeat: Optional[int] = 1

    def describe(self) -> str:
        prob = f"{self.probability:g}"
        if self.repeat is None:
            return f"{self.kind}:{prob}"
        return f"{self.kind}:{prob}x{self.repeat}"


@dataclass(frozen=True)
class FaultInjector:
    """A deterministic fault plan: rules per kind + the decision seed.

    Frozen and built from plain data, so it pickles across the process
    boundary and both parent and workers replay identical decisions.
    """

    rules: Tuple[FaultRule, ...] = ()
    seed: int = DEFAULT_SEED
    hang_seconds: float = DEFAULT_HANG_SECONDS
    _by_kind: Dict[str, FaultRule] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_by_kind", {rule.kind: rule for rule in self.rules}
        )

    # -- construction ------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultInjector":
        """Parse the ``--inject`` grammar (see module docstring)."""
        rules: Dict[str, FaultRule] = {}
        seed = DEFAULT_SEED
        hang = DEFAULT_HANG_SECONDS
        for raw in spec.split(","):
            item = raw.strip()
            if not item:
                continue
            if "=" in item:
                name, _, value = item.partition("=")
                name = name.strip()
                try:
                    if name == "seed":
                        seed = int(value)
                    elif name == "hang":
                        hang = float(value)
                        if hang < 0:
                            raise ValueError
                    else:
                        raise FaultSpecError(
                            f"unknown option {name!r} in {item!r} "
                            "(options: seed=INT, hang=SECONDS)"
                        )
                except FaultSpecError:
                    raise
                except ValueError:
                    raise FaultSpecError(
                        f"bad value for option {name!r} in {item!r}"
                    ) from None
                continue
            kind, sep, tail = item.partition(":")
            kind = kind.strip()
            if not sep or kind not in KINDS:
                raise FaultSpecError(
                    f"unknown fault {item!r}; expected KIND:PROB[xN] with "
                    f"KIND one of {', '.join(KINDS)}"
                )
            prob_text, x, repeat_text = tail.partition("x")
            try:
                probability = float(prob_text)
            except ValueError:
                raise FaultSpecError(
                    f"bad probability in {item!r}"
                ) from None
            if not 0.0 <= probability or not math.isfinite(probability):
                raise FaultSpecError(
                    f"probability must be a finite value >= 0 in {item!r}"
                )
            repeat: Optional[int]
            if x:
                try:
                    repeat = int(repeat_text)
                except ValueError:
                    raise FaultSpecError(
                        f"bad repeat count in {item!r}"
                    ) from None
                if repeat < 1:
                    raise FaultSpecError(
                        f"repeat count must be >= 1 in {item!r}"
                    )
            else:
                # Sub-certain faults default to firing at most once per
                # identity (a retry is then guaranteed to recover);
                # certain faults default to persistent.
                repeat = 1 if probability < 1.0 else None
            rules[kind] = FaultRule(kind, probability, repeat)
        if not rules:
            raise FaultSpecError(f"no faults in spec {spec!r}")
        ordered = tuple(rules[kind] for kind in KINDS if kind in rules)
        return cls(rules=ordered, seed=seed, hang_seconds=hang)

    def describe(self) -> str:
        """Canonical spec string; ``parse(describe())`` round-trips."""
        parts = [rule.describe() for rule in self.rules]
        if self.seed != DEFAULT_SEED:
            parts.append(f"seed={self.seed}")
        if self.hang_seconds != DEFAULT_HANG_SECONDS:
            parts.append(f"hang={self.hang_seconds:g}")
        return ",".join(parts)

    # -- decisions ---------------------------------------------------------

    def _fraction(self, kind: str, identity: str, attempt: int) -> float:
        digest = hashlib.blake2b(
            f"{self.seed}|{kind}|{identity}|{attempt}".encode("utf-8"),
            digest_size=8,
        ).digest()
        return int.from_bytes(digest, "big") / 2.0**64

    def fires(self, kind: str, identity: str, attempt: int = 0) -> bool:
        """Does fault ``kind`` fire for ``identity`` on this attempt?

        A pure function of ``(seed, kind, identity, attempt)``: the same
        question always gets the same answer, in any process.
        """
        rule = self._by_kind.get(kind)
        if rule is None:
            return False
        if rule.repeat is not None and attempt >= rule.repeat:
            return False
        if rule.probability >= 1.0:
            return True
        return self._fraction(kind, identity, attempt) < rule.probability

    def corrupt_line(self, line: str) -> str:
        """The ``cache-corrupt`` payload: garble a JSONL line the way a
        killed writer does — truncate mid-record."""
        return line[: max(1, len(line) // 2)]
