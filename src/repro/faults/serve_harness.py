"""Chaos harness for the serving layer.

The serve-side sibling of :mod:`repro.faults.harness`: where that
harness injects process faults into the parallel tuning loop, this one
injects transport / handler / store faults into a *live daemon* (real
sockets, real handler threads, the retrying :class:`~repro.serve.client.
ServeClient`) and asserts the serving invariant:

    **under any injected fault schedule, every request either receives
    the byte-identical fault-free response or exactly one well-formed
    structured error — never a hang, a duplicate side effect, or a
    corrupt artifact.**

Determinism end to end: fault decisions are pure functions of
``(seed, kind, request rid, attempt)``, the client's backoff jitter is
seeded, and response bodies contain no wall-clock content, so one
``(schedule, inject spec)`` pair replays identically.

Two checks compose the invariant:

* :func:`check_serve_resilience` — run a fixed request schedule against
  a fault-free daemon (recording canonical response bytes per request
  id), then replay the same schedule against a faulted daemon through
  retrying clients, and classify every outcome as byte-parity, a
  structured error (known status + machine-readable ``reason``), or a
  violation.  Ends by verifying no worker or daemon thread is left
  hanging.
* :func:`check_store_recovery` — publish a version sequence under
  ``store-io-fail``, kill the app (no drain — simulated crash), restart
  over the same artifact directory, and assert the recovered registry
  holds exactly the acknowledged versions: a failed publish was never
  acknowledged, an acknowledged publish is never lost, versions never
  move backwards.

``python -m repro.faults.serve_harness --seeds 1,2,3`` runs every
serve fault kind (plus a combined plan) under each seed and writes a
JSON report — the CI chaos smoke step.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.faults.injector import FaultInjector
from repro.observe.trace import ThreadSafeSink
from repro.serve.app import ServeApp, ServeError
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.daemon import ServeDaemon
from repro.serve.resilience import ResilienceConfig, RetryPolicy

#: The serve-side fault kinds this harness covers.
SERVE_FAULT_KINDS: Tuple[str, ...] = (
    "conn-drop",
    "slow-handler",
    "shed-storm",
    "store-io-fail",
    "drain-race",
)

#: The machine-readable reasons a structured error may carry.
VALID_REASONS = frozenset(
    {"capacity", "queue_timeout", "draining", "deadline_exceeded",
     "store_io"}
)

#: HTTP statuses a structured (non-parity) outcome may have.  429/503
#: are sheds, 504 is a deadline — never a 500, never a hang.
VALID_STATUSES = frozenset({429, 503, 504})

#: The program the schedule exercises (same shape the serve tests use).
SCALE = """
transform Scale
from A[n, m]
to B[n, m]
{
  to (B.cell(x, y) b) from (A.cell(x, y) a) { b = a * 2.0 + 1.0; }
}
"""

#: The combined fault plan: every transport/handler kind at once.
#: ``hang=0.05`` keeps an injected slow handler at 50 ms, and the small
#: probabilities keep most requests on the parity path so both arms of
#: the invariant are exercised in one run.
COMBINED_INJECT = (
    "conn-drop:0.3,slow-handler:0.3,shed-storm:0.3,drain-race:0.05,"
    "hang=0.05"
)

#: Per-kind plans for the single-kind sweeps.
KIND_INJECTS: Dict[str, str] = {
    "conn-drop": "conn-drop:0.5",
    "slow-handler": "slow-handler:0.5,hang=0.05",
    "shed-storm": "shed-storm:0.5",
    "drain-race": "drain-race:0.1",
    "store-io-fail": "store-io-fail:0.5",
}


@dataclass
class ServeChaosReport:
    """What one harness run observed (JSON-able via ``to_dict``)."""

    inject: str
    requests: int = 0
    parity: int = 0
    structured_errors: int = 0
    violations: List[str] = field(default_factory=list)
    server_counters: Dict[str, int] = field(default_factory=dict)
    client_counters: Dict[str, int] = field(default_factory=dict)
    hung_threads: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.hung_threads

    def to_dict(self) -> Dict[str, Any]:
        return {
            "inject": self.inject,
            "requests": self.requests,
            "parity": self.parity,
            "structured_errors": self.structured_errors,
            "violations": self.violations,
            "hung_threads": self.hung_threads,
            "server_counters": self.server_counters,
            "client_counters": self.client_counters,
            "ok": self.ok,
        }


def _schedule(requests: int) -> List[Tuple[str, str, Dict[str, Any]]]:
    """A deterministic ``(rid, route, payload-args)`` schedule mixing
    /run and /batch traffic; payloads vary per rid so parity is not
    trivially satisfied by identical responses."""
    plan = []
    for index in range(requests):
        rid = f"r{index}"
        if index % 3 == 2:
            lines = [
                json.dumps(
                    {
                        "transform": "Scale",
                        "inputs": {"A": [[float(index), float(lane)]]},
                    }
                )
                for lane in range(3)
            ]
            plan.append((rid, "batch", {"lines": lines}))
        else:
            plan.append(
                (
                    rid,
                    "run",
                    {
                        "transform": "Scale",
                        "inputs": {
                            "A": [[float(index), float(index) + 0.5]]
                        },
                    },
                )
            )
    return plan


def _issue(
    client: ServeClient,
    phash: str,
    rid: str,
    route: str,
    spec: Dict[str, Any],
) -> Tuple[str, Any]:
    """One scheduled request → ``("ok", canonical-bytes)`` or
    ``("error", (status, reason))`` or ``("crash", repr)``."""
    try:
        if route == "run":
            response = client.run(
                phash, spec["transform"], spec["inputs"], rid=rid
            )
        else:
            response = client.batch(phash, spec["lines"], rid=rid)
        return "ok", json.dumps(response, sort_keys=True)
    except ServeClientError as exc:
        return "error", (exc.status, exc.reason)
    except Exception as exc:  # transport giveup or worse
        return "crash", f"{type(exc).__name__}: {exc}"


def _run_schedule(
    daemon: ServeDaemon,
    phash: str,
    plan: Sequence[Tuple[str, str, Dict[str, Any]]],
    retry: RetryPolicy,
    client_sink: Optional[ThreadSafeSink] = None,
    workers: int = 4,
) -> Dict[str, Tuple[str, Any]]:
    """Drive the schedule through ``workers`` concurrent retrying
    clients; returns rid → outcome.  Outcomes are deterministic per rid
    (fault decisions key off the rid, not the interleaving)."""
    outcomes: Dict[str, Tuple[str, Any]] = {}
    lock = threading.Lock()
    pending = list(plan)

    def worker() -> None:
        client = ServeClient(
            port=daemon.port, timeout=30.0, retry=retry, sink=client_sink
        )
        while True:
            with lock:
                if not pending:
                    return
                rid, route, spec = pending.pop(0)
            outcome = _issue(client, phash, rid, route, spec)
            with lock:
                outcomes[rid] = outcome

    threads = [
        threading.Thread(target=worker, name=f"chaos-client-{i}")
        for i in range(workers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    hung = [t.name for t in threads if t.is_alive()]
    if hung:
        raise AssertionError(f"chaos clients hung: {hung}")
    return outcomes


def check_serve_resilience(
    inject: str,
    requests: int = 24,
    workers: int = 4,
    max_concurrency: int = 4,
) -> ServeChaosReport:
    """Assert the serving invariant for one fault plan (see module
    docstring).  Raises ``AssertionError`` on any violation; returns
    the report on success."""
    report = ServeChaosReport(inject=inject, requests=requests)
    plan = _schedule(requests)
    resilience = ResilienceConfig(
        max_concurrency=max_concurrency,
        # Roomy enough that the worker fleet alone can't overflow the
        # accept queue in the fault-free baseline (batches weigh their
        # line count); overload-shedding has its own benchmark gate.
        max_queue=4 * max_concurrency,
        queue_timeout_s=10.0,
        drain_timeout_s=2.0,
        retry_after_s=0.01,
    )
    retry = RetryPolicy(retries=4, backoff_s=0.01, max_backoff_s=0.2)

    # Phase 1: fault-free baseline — canonical bytes per rid.
    baseline_app = ServeApp(resilience=resilience)
    baseline = ServeDaemon(baseline_app, port=0).start_background()
    try:
        client = ServeClient(port=baseline.port, retry=retry)
        phash = client.compile(SCALE)["program"]
        expected = _run_schedule(baseline, phash, plan, retry,
                                 workers=workers)
    finally:
        baseline.stop()
    for rid, (state, value) in sorted(expected.items()):
        assert state == "ok", (
            f"fault-free baseline failed for {rid}: {value}"
        )

    # Phase 2: same schedule against a faulted daemon.
    injector = FaultInjector.parse(inject)
    sink = ThreadSafeSink(capture_events=False)
    client_sink = ThreadSafeSink(capture_events=False)
    app = ServeApp(sink=sink, resilience=resilience, injector=injector)
    daemon = ServeDaemon(app, port=0).start_background()
    try:
        client = ServeClient(port=daemon.port, retry=retry)
        assert client.compile(SCALE)["program"] == phash
        observed = _run_schedule(
            daemon, phash, plan, retry,
            client_sink=client_sink, workers=workers,
        )
    finally:
        daemon.stop()

    for rid, _route, _spec in plan:
        state, value = observed.get(rid, ("crash", "no outcome recorded"))
        if state == "ok":
            if value == expected[rid][1]:
                report.parity += 1
            else:
                report.violations.append(
                    f"{rid}: response diverged from fault-free bytes"
                )
        elif state == "error":
            status, reason = value
            if status in VALID_STATUSES and reason in VALID_REASONS:
                report.structured_errors += 1
            else:
                report.violations.append(
                    f"{rid}: unstructured error status={status} "
                    f"reason={reason!r}"
                )
        else:
            report.violations.append(f"{rid}: {value}")

    report.hung_threads = [
        thread.name
        for thread in threading.enumerate()
        if thread.name.startswith("chaos-client-") and thread.is_alive()
    ]
    report.server_counters = dict(sink.counters)
    report.client_counters = dict(client_sink.counters)
    assert report.ok, (
        f"serving invariant violated under {inject!r}: "
        f"{report.violations or report.hung_threads}"
    )
    return report


def check_store_recovery(
    inject: str = KIND_INJECTS["store-io-fail"],
    publishes: int = 6,
) -> ServeChaosReport:
    """Assert durable-before-acknowledged publishing under injected
    store I/O failures across a simulated crash-and-restart."""
    from repro.compiler import ChoiceConfig

    report = ServeChaosReport(inject=inject, requests=publishes)
    injector = FaultInjector.parse(inject)
    sink = ThreadSafeSink(capture_events=False)
    with tempfile.TemporaryDirectory() as root:
        app = ServeApp(store_dir=root, sink=sink, injector=injector)
        phash = app.compile({"source": SCALE})["program"]
        acked = 0
        for index in range(publishes):
            config = ChoiceConfig()
            config.set_tunable("Scale.__leaf_path__", index % 2)
            try:
                entry = app.publish_config(
                    phash, "xeon8", "any", config, attempt=0
                )
            except ServeError as exc:
                if exc.code != "store_io":
                    report.violations.append(
                        f"publish {index}: unexpected error "
                        f"{exc.code!r}: {exc.message}"
                    )
                    continue
                report.structured_errors += 1
                # The retry contract: a second attempt of the same
                # publish must land durably (at-most-once injection).
                entry = app.publish_config(
                    phash, "xeon8", "any", config, attempt=1
                )
            acked = entry.version
            if entry.version != index + 1:
                report.violations.append(
                    f"publish {index}: version {entry.version}, "
                    f"expected {index + 1}"
                )
            report.parity += 1
        # Simulated crash: no drain, no close ordering — just restart
        # over the same artifact directory.
        app.close()
        recovered = ServeApp(store_dir=root)
        try:
            version = recovered.registry.current_version(
                phash, "xeon8", "any"
            )
            if version != acked:
                report.violations.append(
                    f"recovered version {version} != acknowledged {acked}"
                )
        finally:
            recovered.close()
    report.server_counters = dict(sink.counters)
    assert report.ok, (
        f"store recovery invariant violated under {inject!r}: "
        f"{report.violations}"
    )
    return report


def run_serve_chaos(
    seeds: Sequence[int],
    requests: int = 24,
    report_path: Optional[str] = None,
) -> Dict[str, Any]:
    """The CI chaos smoke: every fault kind alone, plus the combined
    plan, under every seed.  Writes a JSON report when asked; raises on
    the first invariant violation."""
    runs: List[Dict[str, Any]] = []
    for seed in seeds:
        for kind in SERVE_FAULT_KINDS:
            spec = f"{KIND_INJECTS[kind]},seed={seed}"
            if kind == "store-io-fail":
                outcome = check_store_recovery(spec)
            else:
                outcome = check_serve_resilience(spec, requests=requests)
            runs.append({"seed": seed, "kind": kind, **outcome.to_dict()})
        combined = f"{COMBINED_INJECT},seed={seed}"
        outcome = check_serve_resilience(combined, requests=requests)
        runs.append({"seed": seed, "kind": "combined", **outcome.to_dict()})
    summary = {
        "seeds": list(seeds),
        "requests": requests,
        "runs": runs,
        "ok": all(run["ok"] for run in runs),
    }
    if report_path:
        with open(report_path, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return summary


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="serve-layer chaos harness (deterministic fault plans "
        "against a live daemon)"
    )
    parser.add_argument(
        "--seeds", default="1",
        help="comma-separated injector seeds (default: 1)",
    )
    parser.add_argument(
        "--requests", type=int, default=24,
        help="schedule length per run (default: 24)",
    )
    parser.add_argument(
        "--report", default=None, help="write a JSON report here"
    )
    args = parser.parse_args(argv)
    seeds = [int(part) for part in args.seeds.split(",") if part.strip()]
    summary = run_serve_chaos(
        seeds, requests=args.requests, report_path=args.report
    )
    total = len(summary["runs"])
    parity = sum(run["parity"] for run in summary["runs"])
    errors = sum(run["structured_errors"] for run in summary["runs"])
    print(
        f"serve chaos: {total} runs ok "
        f"({parity} byte-parity outcomes, {errors} structured errors)"
    )
    return 0 if summary["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
