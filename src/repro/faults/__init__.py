"""Deterministic fault injection for the fault-tolerance layer.

:mod:`repro.faults.injector` defines the seeded :class:`FaultInjector`
(worker crash, worker hang, transient error, corrupted result record,
cache-line corruption) that plugs into the pool workers and the cache
writer of :mod:`repro.autotuner.parallel`; every decision is a pure
function of ``(seed, fault kind, identity, attempt)``, so injected
failures replay identically across runs and processes.

:mod:`repro.faults.harness` is the companion stress harness — the
fault-layer sibling of :mod:`repro.observe.stress` — which tunes a real
transform under an injected fault plan and asserts the recovery
invariant: the tuned configuration and history are byte-identical to a
fault-free run (import it directly; it pulls in the autotuner).

:mod:`repro.faults.serve_harness` does the same for the serving stack:
serve-side fault kinds (``conn-drop``, ``slow-handler``, ``shed-storm``,
``store-io-fail``, ``drain-race``) injected into a live daemon, with the
serving invariant — byte-identical response or exactly one well-formed
structured error, never a hang or a corrupt artifact (import it
directly; it pulls in the serve stack, and doubles as the CI chaos
smoke via ``python -m repro.faults.serve_harness``).
"""

from repro.faults.injector import (
    DEFAULT_HANG_SECONDS,
    DEFAULT_SEED,
    KINDS,
    FaultInjector,
    FaultRule,
    FaultSpecError,
    TransientFault,
)

__all__ = [
    "DEFAULT_HANG_SECONDS",
    "DEFAULT_SEED",
    "KINDS",
    "FaultInjector",
    "FaultRule",
    "FaultSpecError",
    "TransientFault",
]
