"""Stress harness for the fault-tolerance layer.

The sibling of :mod:`repro.observe.stress`: where that harness throws
seeded random task graphs at the scheduler and asserts its theoretical
invariants, this one throws seeded fault plans at the parallel tuning
loop and asserts the recovery invariant that makes fault tolerance
trustworthy:

    **a tuning run under injected faults produces a tuned configuration
    and history byte-identical to a fault-free run with the same seed.**

That holds because every measurement is a pure function of its identity
(retries always reproduce the lost value) and because the injector's
default at-most-once policy guarantees a bounded number of recovery
attempts suffices.  :func:`check_fault_tolerance` verifies one fault
plan; :func:`fault_sweep` re-verifies it under many injector seeds, the
way the scheduler harness sweeps graph seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.autotuner.parallel import EvaluatorSpec, ParallelEvaluator
from repro.autotuner.tuner import GeneticTuner, TuneResult
from repro.faults.injector import FaultInjector
from repro.observe.trace import TraceSink

#: GeneticTuner settings for a small-but-real tuning run: several
#: generations, real mutation and tunable search, seconds not minutes.
DEFAULT_TUNER_KWARGS: Dict[str, Any] = {
    "min_size": 16,
    "max_size": 64,
    "population_size": 4,
    "tunable_rounds": 1,
    "refine_passes": 0,
}


@dataclass
class FaultToleranceReport:
    """What one :func:`check_fault_tolerance` run observed."""

    baseline: TuneResult
    faulty: TuneResult
    identical: bool
    counters: Dict[str, int]
    degraded: bool

    def recovery_counter(self, name: str) -> int:
        return self.counters.get(name, 0)


def _history_rows(result: TuneResult) -> List[tuple]:
    return [
        (log.size, log.best_time, log.best_lineage, log.population,
         log.evaluated)
        for log in result.history
    ]


def _tune(
    spec: EvaluatorSpec,
    jobs: int,
    tuner_kwargs: Dict[str, Any],
    sink: Optional[TraceSink] = None,
    **evaluator_kwargs: Any,
) -> TuneResult:
    evaluator = ParallelEvaluator.from_spec(
        spec, jobs=jobs, sink=sink, **evaluator_kwargs
    )
    try:
        return GeneticTuner(evaluator, **tuner_kwargs).tune()
    finally:
        evaluator.close()


def check_fault_tolerance(
    spec: EvaluatorSpec,
    inject: str,
    jobs: int = 2,
    measure_timeout: float = 0.5,
    max_retries: int = 3,
    tuner_kwargs: Optional[Dict[str, Any]] = None,
    **evaluator_kwargs: Any,
) -> FaultToleranceReport:
    """Tune once fault-free and once under ``inject``; assert parity.

    Raises ``AssertionError`` if the faulty run's tuned configuration or
    generation history differs from the baseline; returns the report
    (including the recovery counters the faulty run emitted) on success.
    """
    tuner_kwargs = dict(DEFAULT_TUNER_KWARGS, **(tuner_kwargs or {}))
    baseline = _tune(spec, 1, tuner_kwargs)
    sink = TraceSink(capture_events=False)
    injector = FaultInjector.parse(inject)
    evaluator = ParallelEvaluator.from_spec(
        spec,
        jobs=jobs,
        sink=sink,
        measure_timeout=measure_timeout,
        max_retries=max_retries,
        injector=injector,
        **evaluator_kwargs,
    )
    try:
        faulty = GeneticTuner(evaluator, **tuner_kwargs).tune()
        degraded = evaluator.degraded
    finally:
        evaluator.close()
    identical = (
        faulty.config.to_json() == baseline.config.to_json()
        and faulty.best_time == baseline.best_time
        and _history_rows(faulty) == _history_rows(baseline)
    )
    assert identical, (
        f"tuning under injected faults {inject!r} diverged from the "
        f"fault-free run: {faulty.config.to_json()} != "
        f"{baseline.config.to_json()}"
    )
    return FaultToleranceReport(
        baseline=baseline,
        faulty=faulty,
        identical=identical,
        counters=dict(sink.counters),
        degraded=degraded,
    )


def fault_sweep(
    spec: EvaluatorSpec,
    inject: str,
    seeds: Sequence[int],
    jobs: int = 2,
    **kwargs: Any,
) -> List[FaultToleranceReport]:
    """Re-verify ``inject`` under many injector seeds (``seed=N`` is
    appended to the spec per run), so the parity invariant is checked
    across many distinct crash/hang/retry interleavings — the
    fault-layer analogue of the scheduler harness's seed sweep."""
    reports = []
    for seed in seeds:
        reports.append(
            check_fault_tolerance(
                spec, f"{inject},seed={seed}", jobs=jobs, **kwargs
            )
        )
    return reports
