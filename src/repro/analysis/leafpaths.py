"""Leaf-path eligibility report (pass family 5: PB501, PB502, PB503).

Informational pass over the choice grid: for every (segment, option)
site with a DSL instance rule, report whether the engine's vectorized
leaf path (:mod:`repro.engine_fast.vectorize`) is legal there — and when
it is not, the exact reason the planner rejected it.  The verdicts come
from the same cached planner the executor consults, so ``repro check``
describes precisely what ``__leaf_path__ = 2`` would do at run time.

PB503 is the batch-axis companion, one per transform: whether the batch
execution engine (:mod:`repro.batch`) can run buckets of this transform
as stacked sweeps — under every configuration, only some, or none.  The
verdict comes from :func:`repro.batch.stacked.batch_eligibility`, the
same predicate the engine's bucket planner applies, so the diagnostic
can never disagree with runtime stacking behavior.

All three codes are INFO severity: rejection is not a defect (the
closure path / per-request fallback still applies), and eligibility is
an optimization opportunity.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, INFO
from repro.analysis.races import vector_leaf_status


def check_leaf_paths(compiled, budget=None, path: str = "") -> List[Diagnostic]:
    """PB501/PB502 eligibility diagnostics for one compiled transform.

    ``budget`` is accepted for driver uniformity but unused: eligibility
    is a static property of the rule body and dependency directions, not
    of any concrete size environment.
    """
    ir = compiled.ir
    diagnostics: List[Diagnostic] = []
    seen: Set[Tuple] = set()
    for segment in compiled.grid.all_segments():
        for option in segment.options:
            rule = ir.rules[option.primary]
            if rule.native_body is not None or not rule.is_instance_rule:
                continue
            if not rule.body:
                continue
            has_fallback = option.fallback is not None
            qualifies, reason = vector_leaf_status(
                compiled, segment, rule, has_fallback
            )
            key = (rule.rule_id, qualifies, reason)
            if key in seen:
                continue
            seen.add(key)
            if qualifies:
                free_vars = _free_vars(compiled, segment, rule)
                over = (
                    f" over ({', '.join(free_vars)})" if free_vars else ""
                )
                diagnostics.append(
                    Diagnostic(
                        code="PB501",
                        severity=INFO,
                        message=(
                            f"qualifies for vectorized leaf execution"
                            f"{over} (segment {segment.key})"
                        ),
                        transform=ir.name,
                        rule=rule.label,
                        line=rule.line,
                        column=rule.column,
                        hint=(
                            f"set tunable {ir.name}.__leaf_path__ = 2 (or "
                            "let the autotuner pick it) to run whole "
                            "data-parallel steps as NumPy slice arithmetic"
                        ),
                        path=path,
                    )
                )
            else:
                diagnostics.append(
                    Diagnostic(
                        code="PB502",
                        severity=INFO,
                        message=f"not vectorizable: {reason}",
                        transform=ir.name,
                        rule=rule.label,
                        line=rule.line,
                        column=rule.column,
                        hint=(
                            "the rule still runs through the compiled "
                            "closure path (__leaf_path__ = 1, the default)"
                        ),
                        path=path,
                    )
                )
    diagnostics.append(_batch_diagnostic(compiled, path))
    return diagnostics


def _batch_diagnostic(compiled, path: str) -> Diagnostic:
    """The per-transform PB503 stacking verdict."""
    # Local import: repro.batch sits on top of the analysis layer.
    from repro.batch.stacked import batch_eligibility

    status, detail = batch_eligibility(compiled)
    if status == "full":
        message = "batch-stackable under every configuration"
        hint = (
            "repro.batch runs whole buckets of this transform as "
            "stacked sweeps along a leading request axis"
        )
    elif status == "partial":
        message = f"batch-stackable under some configurations ({detail})"
        hint = (
            "buckets whose configuration selects a blocked option fall "
            "back to per-request execution (identical results)"
        )
    else:
        message = f"not batch-stackable: {detail}"
        hint = (
            "buckets of this transform run per-request through the "
            "serial engine (identical results, lower throughput)"
        )
    return Diagnostic(
        code="PB503",
        severity=INFO,
        message=message,
        transform=compiled.ir.name,
        line=compiled.ir.line,
        column=compiled.ir.column,
        hint=hint,
        path=path,
    )


def _free_vars(compiled, segment, rule) -> Tuple[str, ...]:
    try:
        directions, var_order = compiled._var_directions_cached(segment, rule)
    except Exception:
        return ()
    return tuple(v for v in var_order if directions.get(v, 0) == 0)
