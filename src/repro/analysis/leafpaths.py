"""Leaf-path eligibility report (pass family 5: PB501, PB502).

Informational pass over the choice grid: for every (segment, option)
site with a DSL instance rule, report whether the engine's vectorized
leaf path (:mod:`repro.engine_fast.vectorize`) is legal there — and when
it is not, the exact reason the planner rejected it.  The verdicts come
from the same cached planner the executor consults, so ``repro check``
describes precisely what ``__leaf_path__ = 2`` would do at run time.

Both codes are INFO severity: rejection is not a defect (the closure
path still applies), and eligibility is an optimization opportunity.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, INFO
from repro.analysis.races import vector_leaf_status


def check_leaf_paths(compiled, budget=None, path: str = "") -> List[Diagnostic]:
    """PB501/PB502 eligibility diagnostics for one compiled transform.

    ``budget`` is accepted for driver uniformity but unused: eligibility
    is a static property of the rule body and dependency directions, not
    of any concrete size environment.
    """
    ir = compiled.ir
    diagnostics: List[Diagnostic] = []
    seen: Set[Tuple] = set()
    for segment in compiled.grid.all_segments():
        for option in segment.options:
            rule = ir.rules[option.primary]
            if rule.native_body is not None or not rule.is_instance_rule:
                continue
            if not rule.body:
                continue
            has_fallback = option.fallback is not None
            qualifies, reason = vector_leaf_status(
                compiled, segment, rule, has_fallback
            )
            key = (rule.rule_id, qualifies, reason)
            if key in seen:
                continue
            seen.add(key)
            if qualifies:
                free_vars = _free_vars(compiled, segment, rule)
                over = (
                    f" over ({', '.join(free_vars)})" if free_vars else ""
                )
                diagnostics.append(
                    Diagnostic(
                        code="PB501",
                        severity=INFO,
                        message=(
                            f"qualifies for vectorized leaf execution"
                            f"{over} (segment {segment.key})"
                        ),
                        transform=ir.name,
                        rule=rule.label,
                        line=rule.line,
                        column=rule.column,
                        hint=(
                            f"set tunable {ir.name}.__leaf_path__ = 2 (or "
                            "let the autotuner pick it) to run whole "
                            "data-parallel steps as NumPy slice arithmetic"
                        ),
                        path=path,
                    )
                )
            else:
                diagnostics.append(
                    Diagnostic(
                        code="PB502",
                        severity=INFO,
                        message=f"not vectorizable: {reason}",
                        transform=ir.name,
                        rule=rule.label,
                        line=rule.line,
                        column=rule.column,
                        hint=(
                            "the rule still runs through the compiled "
                            "closure path (__leaf_path__ = 1, the default)"
                        ),
                        path=path,
                    )
                )
    return diagnostics


def _free_vars(compiled, segment, rule) -> Tuple[str, ...]:
    try:
        directions, var_order = compiled._var_directions_cached(segment, rule)
    except Exception:
        return ()
    return tuple(v for v in var_order if directions.get(v, 0) == 0)
