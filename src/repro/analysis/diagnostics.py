"""Structured diagnostics for the static verifier suite.

Every finding of the analysis passes is a :class:`Diagnostic`: a stable
code (``PB1xx`` bounds, ``PB2xx`` races/deadlocks, ``PB3xx`` coverage,
``PB4xx`` hygiene, ``PB5xx`` leaf execution paths, ``PB6xx``
dependence/rewrite legality), a severity, the
offending transform/rule/region, a
source position when the program came from the parser, a one-line fix
hint, and — for the witness-based checks — the concrete size/instance
assignment that exhibits the problem.  Error-severity diagnostics are
always backed by such a witness, so an error is never a false positive:
it names sizes at which the program would corrupt memory, race, or fail.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITY_RANK = {ERROR: 0, WARNING: 1, INFO: 2}

#: The diagnostic code registry: code -> (severity, pass family, summary).
#: DESIGN.md renders this table; tests assert it matches emitted codes.
CODE_TABLE: Dict[str, Tuple[str, str, str]] = {
    "PB001": (ERROR, "general", "compile error (uncategorized)"),
    "PB101": (ERROR, "bounds", "region access provably out of bounds"),
    "PB102": (ERROR, "bounds", "rule variable has an unbounded instance space"),
    "PB103": (INFO, "bounds", "in-bounds only under runtime size guards"),
    "PB201": (ERROR, "races", "two instances of one rule write the same cell"),
    "PB202": (ERROR, "races", "one application's to-bindings overlap"),
    "PB203": (ERROR, "races", "concurrent writers overlap (rules or segments)"),
    "PB204": (ERROR, "races", "dependency cycle would deadlock (§3.6)"),
    "PB205": (ERROR, "races", "self-dependency has no schedulable iteration order"),
    "PB301": (ERROR, "coverage", "region of an output matrix is uncovered"),
    "PB302": (INFO, "coverage", "segment has multiple interchangeable options"),
    "PB401": (WARNING, "hygiene", "where-clause is unsatisfiable"),
    "PB402": (WARNING, "hygiene", "tunable is never used"),
    "PB403": (WARNING, "hygiene", "matrix is never used"),
    "PB404": (WARNING, "hygiene", "rule is never selectable in any segment"),
    "PB405": (WARNING, "hygiene", "rule is priority-shadowed everywhere"),
    "PB501": (INFO, "leafpaths", "rule qualifies for vectorized leaf execution"),
    "PB502": (INFO, "leafpaths", "rule is not vectorizable (closure path applies)"),
    "PB503": (INFO, "leafpaths", "transform batch-axis (stacking) eligibility"),
    "PB601": (INFO, "depend", "producer→consumer fusion is legal (proven distance)"),
    "PB602": (INFO, "depend", "fusion blocked by a cross-instance flow dependence"),
    "PB603": (INFO, "depend", "rewrite audit: dependence and fusion summary"),
    "PB604": (INFO, "depend", "tiling/interchange of a rule's schedule is legal"),
    "PB605": (INFO, "depend", "tiling/interchange blocked by a tile-crossing dependence"),
}


def default_severity(code: str) -> str:
    """The registered severity of ``code`` (errors for unknown codes)."""
    return CODE_TABLE.get(code, (ERROR, "general", ""))[0]


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static-analysis pass."""

    code: str
    severity: str
    message: str
    transform: str = ""
    rule: str = ""
    region: str = ""
    line: int = 0
    column: int = 0
    hint: str = ""
    witness: str = ""
    path: str = ""

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITY_RANK:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def is_error(self) -> bool:
        return self.severity == ERROR

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dict (stable key order, empty fields included)."""
        return {key: value for key, value in sorted(asdict(self).items())}

    def format(self) -> str:
        """One human-readable line, lint style."""
        location = self.path or "<source>"
        if self.line:
            location += f":{self.line}:{self.column}"
        subject = ".".join(p for p in (self.transform, self.rule) if p)
        parts = [f"{location}: {self.severity}[{self.code}]"]
        if subject:
            parts.append(f"{subject}:")
        parts.append(self.message)
        text = " ".join(parts)
        if self.witness:
            text += f"\n    witness: {self.witness}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def sort_key(self) -> Tuple:
        return (
            self.path,
            _SEVERITY_RANK[self.severity],
            self.transform,
            self.line,
            self.code,
            self.rule,
            self.region,
            self.message,
        )


class AnalysisReport:
    """An ordered collection of diagnostics with lint-style summaries."""

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()) -> None:
        self.diagnostics: List[Diagnostic] = list(diagnostics)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def sorted(self) -> List[Diagnostic]:
        return sorted(self.diagnostics, key=Diagnostic.sort_key)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.sorted())

    def __len__(self) -> int:
        return len(self.diagnostics)

    def with_severity(self, severity: str) -> List[Diagnostic]:
        return [d for d in self.sorted() if d.severity == severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.with_severity(ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.with_severity(WARNING)

    @property
    def infos(self) -> List[Diagnostic]:
        return self.with_severity(INFO)

    @property
    def clean(self) -> bool:
        """No errors and no warnings (info is always allowed)."""
        return not self.errors and not self.warnings

    def counts_by_code(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for diag in self.diagnostics:
            counts[diag.code] = counts.get(diag.code, 0) + 1
        return dict(sorted(counts.items()))

    def exit_code(self, strict: bool = False) -> int:
        """Lint-style: 1 for errors (or warnings under --strict), else 0."""
        if self.errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0

    def summary_line(self) -> str:
        return (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.infos)} info"
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        payload = {
            "diagnostics": [d.to_dict() for d in self.sorted()],
            "counts": self.counts_by_code(),
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "infos": len(self.infos),
        }
        return json.dumps(payload, indent=indent, sort_keys=True)
