"""Static verifier suite over compiled transform IR.

Six pass families — symbolic/witness bounds checking, write-write race
detection, coverage auditing, hygiene lints, the leaf-path
eligibility report, and the dependence/fusion-legality analysis that
gates the rewrite layer — emitting structured
:class:`~repro.analysis.diagnostics.Diagnostic` records with stable
``PBxxx`` codes, source positions, fix hints, and concrete witnesses.
Exposed through the ``repro check`` CLI subcommand and the
``compile_program(..., analyze=True)`` pipeline hook.
"""

from repro.analysis.diagnostics import (
    AnalysisReport,
    CODE_TABLE,
    Diagnostic,
    ERROR,
    INFO,
    WARNING,
    default_severity,
)
from repro.analysis.witness import WitnessBudget, DEFAULT_BUDGET
from repro.analysis.bounds import check_bounds
from repro.analysis.races import check_races
from repro.analysis.coverage import check_coverage
from repro.analysis.lints import check_lints
from repro.analysis.leafpaths import check_leaf_paths
from repro.analysis.depend import (
    ConflictWitness,
    Dependence,
    FusionCandidate,
    check_depend,
    fusion_candidates,
    rule_dependences,
    validate_conflict,
)
from repro.analysis.check import (
    analyze_program,
    analyze_transform,
    check_file,
    check_source,
    diagnostic_from_error,
    record_report,
    run_check,
)

__all__ = [
    "AnalysisReport",
    "CODE_TABLE",
    "Diagnostic",
    "ERROR",
    "INFO",
    "WARNING",
    "WitnessBudget",
    "DEFAULT_BUDGET",
    "ConflictWitness",
    "Dependence",
    "FusionCandidate",
    "analyze_program",
    "analyze_transform",
    "check_bounds",
    "check_coverage",
    "check_depend",
    "check_file",
    "check_leaf_paths",
    "check_lints",
    "check_races",
    "check_source",
    "default_severity",
    "diagnostic_from_error",
    "fusion_candidates",
    "record_report",
    "rule_dependences",
    "run_check",
    "validate_conflict",
]
