"""Coverage auditor (pass family 3: PB301, PB302).

Every cell of every computed matrix must be written no matter which
option the selector picks: per (segment, option, size env) the cells
written by the option's applications must include every cell of the
segment, and per matrix the segment boxes must add up to the whole
matrix.  Uncovered cells are PB301 errors with a concrete witness —
the engine would leave them at their initial value, silently.

PB301 is also raised during compilation (by `repro.compiler.choicegrid`)
when a matrix has no rules at all or a segment has no applicable rule;
this pass catches the finer-grained failures segmentation cannot see,
e.g. an instance rule whose stride skips cells inside its applicable
region.

PB302 is informational: a segment with several interchangeable options
is the paper's *algorithmic choice* (the autotuner's search space), and
is reported only so `repro check` output shows where choices live.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, ERROR, INFO
from repro.analysis.races import _applications
from repro.analysis.witness import (
    Cell,
    WitnessBudget,
    DEFAULT_BUDGET,
    describe_bounds,
    describe_env,
    region_cells,
    size_envs,
)
from repro.compiler.ir import ROLE_INPUT


def check_coverage(
    compiled, budget: WitnessBudget = DEFAULT_BUDGET, path: str = ""
) -> List[Diagnostic]:
    ir = compiled.ir
    envs = size_envs(compiled, budget)
    diagnostics: List[Diagnostic] = []
    seen: Set[Tuple] = set()

    for segment in compiled.grid.all_segments():
        for option in segment.options:
            for env in envs:
                diag = _check_segment_option(
                    compiled, segment, option, env, budget
                )
                if diag is None:
                    continue
                key = (diag.code, segment.matrix, segment.index, diag.rule)
                if key not in seen:
                    seen.add(key)
                    diagnostics.append(
                        Diagnostic(**{**diag.to_dict(), "path": path})
                    )
        if len(segment.options) > 1:
            mat = ir.matrices[segment.matrix]
            diagnostics.append(
                Diagnostic(
                    code="PB302",
                    severity=INFO,
                    message=(
                        f"segment {segment.key} has "
                        f"{len(segment.options)} interchangeable options: "
                        + ", ".join(
                            opt.describe(ir) for opt in segment.options
                        )
                    ),
                    transform=ir.name,
                    region=f"{segment.matrix}[{segment.box}]",
                    line=mat.line or ir.line,
                    column=mat.column or ir.column,
                    hint="the autotuner selects among these",
                    path=path,
                )
            )

    diagnostics.extend(_matrix_partition(compiled, envs, budget, path))
    return diagnostics


def _check_segment_option(compiled, segment, option, env, budget):
    """One PB301 (or None) for this segment/option at these sizes."""
    ir = compiled.ir
    seg_bounds = segment.box.concrete(env)
    target = region_cells(seg_bounds, budget)
    if target is None or not target:
        return None
    apps = _applications(compiled, segment, option, env, budget)
    if apps is None:
        return None
    written: Set[Cell] = set()
    for chosen, instance_env, _assignment in apps:
        for region in chosen.to_regions:
            if region.matrix != segment.matrix:
                continue
            cells = region_cells(region.box.concrete(instance_env), budget)
            if cells is None:
                return None
            written.update(cells)
    missing = [cell for cell in target if cell not in written]
    if not missing:
        return None
    rule = ir.rules[option.primary]
    cell = missing[0]
    return Diagnostic(
        code="PB301",
        severity=ERROR,
        message=(
            f"option {option.describe(ir)} leaves "
            f"{len(missing)} cell(s) of segment {segment.key} "
            f"{describe_bounds(segment.matrix, seg_bounds)} unwritten, "
            f"first {describe_bounds(segment.matrix, [(c, c + 1) for c in cell])}"
        ),
        transform=ir.name,
        rule=rule.label,
        region=f"{segment.matrix}[{segment.box}]",
        line=rule.line,
        column=rule.column,
        hint=(
            "widen the rule's to-region or add a rule covering the "
            "skipped cells"
        ),
        witness=describe_env(env),
    )


def _matrix_partition(compiled, envs, budget, path: str) -> List[Diagnostic]:
    """PB301 when a matrix's segments do not add up to its whole box."""
    ir = compiled.ir
    diagnostics: List[Diagnostic] = []
    for name, segments in compiled.grid.segments.items():
        mat = ir.matrices[name]
        if mat.role == ROLE_INPUT:
            continue
        for env in envs:
            whole = region_cells(mat.whole_box().concrete(env), budget)
            if whole is None:
                continue
            covered: Set[Cell] = set()
            over_budget = False
            for segment in segments:
                cells = region_cells(segment.box.concrete(env), budget)
                if cells is None:
                    over_budget = True
                    break
                covered.update(cells)
            if over_budget:
                continue
            missing = [cell for cell in whole if cell not in covered]
            if missing:
                cell = missing[0]
                diagnostics.append(
                    Diagnostic(
                        code="PB301",
                        severity=ERROR,
                        message=(
                            f"choice grid of {name!r} misses "
                            f"{len(missing)} cell(s), first "
                            f"{describe_bounds(name, [(c, c + 1) for c in cell])}"
                        ),
                        transform=ir.name,
                        line=mat.line or ir.line,
                        column=mat.column or ir.column,
                        hint=(
                            "a rule's applicable region excludes these "
                            "cells and no other rule covers them"
                        ),
                        witness=describe_env(env),
                        path=path,
                    )
                )
                break  # one witness per matrix is enough
    return diagnostics
