"""Symbolic bounds checker (pass family 1: PB101, PB103).

For every rule selectable in any choice-grid segment, verify that every
region it reads or writes stays inside its matrix for all admitted input
sizes.  The admitted sizes come from the symbolic layer (assumptions +
folded order guards + per-rule size guards); within them the checker
replays the engine's exact instance geometry — including the meta-rule
fallback taken when a residual where-clause rejects an instance — and
compares each concrete region box against the matrix extents, the same
check :class:`repro.runtime.matrix.MatrixView` enforces with
``IndexError`` at run time.  A PB101 therefore always carries a witness
``(sizes, instance)`` at which execution would crash.

Rules guarded by runtime size guards get an informational PB103: the
engine refuses the sizes the guard excludes, so in-bounds execution is
conditional on the guard, not proven for all sizes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, ERROR, INFO
from repro.analysis.witness import (
    WitnessBudget,
    DEFAULT_BUDGET,
    describe_bounds,
    describe_env,
    instance_assignments,
    matrix_shape,
    residual_ok,
    size_envs,
    size_guards_hold,
)


def check_bounds(
    compiled, budget: WitnessBudget = DEFAULT_BUDGET, path: str = ""
) -> List[Diagnostic]:
    ir = compiled.ir
    envs = size_envs(compiled, budget)
    diagnostics: List[Diagnostic] = []
    seen: Set[Tuple[int, str, int]] = set()

    def report_violation(
        rule, region, region_index: int, env, assignment, bounds, shape
    ) -> None:
        key = (rule.rule_id, region.matrix, region_index)
        if key in seen:
            return
        seen.add(key)
        access = "writes" if region in rule.to_regions else "reads"
        diagnostics.append(
            Diagnostic(
                code="PB101",
                severity=ERROR,
                message=(
                    f"{access} {describe_bounds(region.matrix, bounds)} "
                    f"outside matrix extent "
                    f"{describe_bounds(region.matrix, [(0, s) for s in shape])}"
                ),
                transform=ir.name,
                rule=rule.label,
                region=f"{region.matrix}.{region.view_kind}({region.box})",
                line=region.line or rule.line,
                column=region.column or rule.column,
                hint=(
                    "tighten the rule's region bounds or add a where-clause "
                    "excluding the out-of-range instances"
                ),
                witness=describe_env(env, assignment),
                path=path,
            )
        )

    for segment, option in _segment_rule_pairs(compiled):
        rule = ir.rules[option.primary]
        fallback = (
            ir.rules[option.fallback] if option.fallback is not None else None
        )
        for env in envs:
            if not size_guards_hold(rule, env):
                continue
            assignments = instance_assignments(
                compiled, segment, rule, env, budget
            )
            if assignments is None:
                continue
            for assignment in assignments:
                instance_env = dict(env)
                instance_env.update(assignment)
                chosen = rule
                if rule.residual_where and not residual_ok(rule, instance_env):
                    if fallback is None:
                        continue  # engine raises; not a bounds violation
                    chosen = fallback
                    if not size_guards_hold(chosen, env):
                        continue
                for index, region in enumerate(
                    chosen.to_regions + chosen.from_regions
                ):
                    shape = matrix_shape(compiled, region.matrix, env)
                    bounds = region.box.concrete(instance_env)
                    if _out_of_bounds(bounds, shape):
                        report_violation(
                            chosen, region, index, env, assignment, bounds, shape
                        )

    diagnostics.extend(_guard_notes(compiled, path))
    return diagnostics


def _out_of_bounds(
    bounds: Tuple[Tuple[int, int], ...], shape: Tuple[int, ...]
) -> bool:
    """Mirror of MatrixView's constructor check: 0 <= lo <= hi <= extent
    per axis (a cell box [c, c+1) needs 0 <= c < extent, same predicate)."""
    for (lo, hi), extent in zip(bounds, shape):
        if not (0 <= lo <= hi <= extent):
            return True
    return False


def _segment_rule_pairs(compiled):
    for segment in compiled.grid.all_segments():
        for option in segment.options:
            yield segment, option


def _guard_notes(compiled, path: str) -> List[Diagnostic]:
    """PB103: in-bounds execution relies on runtime-checked guards."""
    ir = compiled.ir
    notes: List[Diagnostic] = []
    for rule in ir.rules:
        if rule.size_guards:
            guards = ", ".join(f"{g} >= 0" for g in rule.size_guards)
            notes.append(
                Diagnostic(
                    code="PB103",
                    severity=INFO,
                    message=(
                        f"in-bounds only under runtime size guard(s): {guards}"
                    ),
                    transform=ir.name,
                    rule=rule.label,
                    line=rule.line,
                    column=rule.column,
                    hint="the engine rejects sizes violating these guards",
                    path=path,
                )
            )
    if compiled.grid.order_guards:
        guards = ", ".join(f"{g} >= 0" for g in compiled.grid.order_guards)
        notes.append(
            Diagnostic(
                code="PB103",
                severity=INFO,
                message=(
                    f"choice-grid segmentation assumes runtime ordering "
                    f"guard(s): {guards}"
                ),
                transform=ir.name,
                line=ir.line,
                column=ir.column,
                hint="inputs violating the ordering are rejected at run time",
                path=path,
            )
        )
    return notes
