"""Static dependence analysis and fusion legality (pass family 6).

For every pair of rules sharing a matrix the pass classifies the
potential dependences Bernstein-style — *flow* (writer feeds reader),
*anti* (reader precedes a writer of the same cells), *output* (two
writers) — and computes the symbolic dependence distance per dimension
from the affine read/write regions: when both accesses sweep a
dimension unit-stride in one instance variable, instances pair up
positionally and the distance is the exact constant gap (see
:func:`repro.symbolic.solve.unit_stride_offset`); anything else is
reported as ``*`` (unknown).

On top of the classification sits the legality gate for the first
verified rewrite, producer→consumer fusion of adjacent elementwise
rules (:mod:`repro.rewrite.fuse`).  A ``through`` matrix is a *fusion
candidate* when exactly one rule writes it and exactly one other rule
reads it; the candidate is

* ``legal`` (PB601) when the producer is a pure elementwise step — an
  identity-mapped single-cell write, a one-statement body over its cell
  reads with only vector-stable calls — so substituting its expression
  into the consumer preserves every per-element operation sequence
  bit-for-bit;
* ``blocked`` (PB602) when a writer of the matrix also reads it and a
  concrete conflicting application pair exists: a (sizes, writer rule +
  instance, reader rule + instance, cell) witness, replay-validated by
  :func:`validate_conflict` against the engine's exact region geometry,
  proving the matrix's cells depend on its own cells (a carried flow
  dependence — rolling sums, wavefront stencils) so no substitution can
  eliminate it;
* ``ineligible`` otherwise, with the structural reason.

PB602 follows the verifier-wide witness contract: it is only emitted
with a concrete, replayed witness — a suspected-but-unproven chain is
reported as ineligible instead.  PB603 is the per-transform rewrite
audit (always emitted, like PB503): dependence counts plus the status
of every candidate, so ``repro check`` documents why a transform did or
did not gain a fused variant.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic, INFO
from repro.analysis.witness import (
    DEFAULT_BUDGET,
    WitnessBudget,
    describe_bounds,
    describe_env,
    region_cells,
    size_envs,
)
from repro.compiler.ir import ROLE_INPUT, RegionIR, RuleIR, TransformIR
from repro.language import ast_nodes as ast
from repro.symbolic.solve import unit_stride_offset

#: Per-dimension dependence distance; ``None`` renders as ``*``.
Distance = Tuple[Optional[Fraction], ...]


@dataclass(frozen=True)
class Dependence:
    """One classified dependence between two rules over one matrix."""

    kind: str  # "flow" | "anti" | "output"
    matrix: str
    src_rule: str
    dst_rule: str
    distance: Distance

    def distance_text(self) -> str:
        inner = ", ".join("*" if d is None else str(d) for d in self.distance)
        return f"({inner})"


@dataclass(frozen=True)
class ConflictWitness:
    """A replayable cross-instance flow conflict carried by ``matrix``:
    one application writes ``cell`` and a *different* application — of a
    rule that also writes the matrix — reads it, so the matrix's cells
    depend on its own cells and substitution cannot eliminate it."""

    sizes: Tuple[Tuple[str, int], ...]
    writer_rule: str
    writer_rule_id: int
    writer: Tuple[Tuple[str, int], ...]
    reader_rule: str
    reader_rule_id: int
    reader: Tuple[Tuple[str, int], ...]
    cell: Tuple[int, ...]
    matrix: str

    def describe(self) -> str:
        cellbox = describe_bounds(
            self.matrix, [(c, c + 1) for c in self.cell]
        )

        def instance(assignment) -> str:
            if not assignment:
                return "(sole instance)"
            return f"({describe_env({}, dict(assignment))})"

        return (
            f"{describe_env(dict(self.sizes))}: {self.writer_rule} instance "
            f"{instance(self.writer)} writes {cellbox}; "
            f"{self.reader_rule} instance {instance(self.reader)} reads it"
        )


@dataclass(frozen=True)
class FusionCandidate:
    """The fusion verdict for one ``through`` matrix."""

    transform: str
    matrix: str
    producer: str
    consumer: str
    producer_id: int
    consumer_id: int
    status: str  # "legal" | "blocked" | "ineligible"
    reason: str
    distances: Tuple[Distance, ...] = ()
    conflict: Optional[ConflictWitness] = None
    line: int = 0
    column: int = 0

    def distance_text(self) -> str:
        if not self.distances:
            return "(none)"
        parts = []
        for vec in self.distances:
            inner = ", ".join("*" if d is None else str(d) for d in vec)
            parts.append(f"({inner})")
        return " ".join(parts)


def _region_distance(
    src_region: RegionIR,
    dst_region: RegionIR,
    src_vars,
    dst_vars,
) -> Distance:
    if src_region.view_kind != "cell" or dst_region.view_kind != "cell":
        return tuple(None for _ in src_region.box.intervals)
    return tuple(
        unit_stride_offset(s.lo, d.lo, src_vars, dst_vars)
        for s, d in zip(src_region.box.intervals, dst_region.box.intervals)
    )


def rule_dependences(ir: TransformIR) -> List[Dependence]:
    """Every classified dependence pair over every computed matrix."""
    deps: List[Dependence] = []
    seen = set()

    def emit(kind, matrix, src, dst, src_region, dst_region):
        distance = _region_distance(
            src_region, dst_region, src.rule_vars, dst.rule_vars
        )
        key = (kind, matrix, src.rule_id, dst.rule_id, distance)
        if key in seen:
            return
        seen.add(key)
        deps.append(Dependence(kind, matrix, src.label, dst.label, distance))

    for name in sorted(ir.matrices):
        if ir.matrices[name].role == ROLE_INPUT:
            continue
        writers = [
            (rule, reg)
            for rule in ir.rules
            for reg in rule.to_regions
            if reg.matrix == name
        ]
        readers = [
            (rule, reg)
            for rule in ir.rules
            for reg in rule.from_regions
            if reg.matrix == name
        ]
        for writer, wreg in writers:
            for reader, rreg in readers:
                emit("flow", name, writer, reader, wreg, rreg)
                emit("anti", name, reader, writer, rreg, wreg)
        for i, (w1, reg1) in enumerate(writers):
            for w2, reg2 in writers[i + 1 :]:
                if w1.rule_id == w2.rule_id:
                    continue
                emit("output", name, w1, w2, reg1, reg2)
    return deps


def _tunable_names(ir: TransformIR):
    return {t.name for t in ir.tunables}


def _structural_block(
    ir: TransformIR, producer: RuleIR, consumer: RuleIR, name: str
) -> str:
    """Why substituting the producer's expression into the consumer is
    not obviously exact; empty string when fusion is legal."""
    from repro.engine_fast.vectorize import VECTOR_STABLE_CALLS

    p, c = producer, consumer
    if not p.is_instance_rule:
        return f"producer {p.label} is a whole-region rule"
    if p.native_body is not None:
        return f"producer {p.label} has a native body"
    if p.where or p.residual_where:
        return f"producer {p.label} has a where-clause"
    if len(p.to_regions) != 1:
        return f"producer {p.label} writes {len(p.to_regions)} regions"
    to = p.to_regions[0]
    if to.view_kind != "cell":
        return f"producer {p.label} writes a non-cell view"
    coords = []
    for interval in to.box.intervals:
        lo = interval.lo
        names = lo.variables()
        if (
            len(names) != 1
            or lo.coefficient(names[0]) != 1
            or lo.constant != 0
        ):
            return (
                f"producer {p.label} write coordinates are not an "
                f"identity map over its instance variables"
            )
        coords.append(names[0])
    if len(set(coords)) != len(coords) or set(coords) != set(p.rule_vars):
        return (
            f"producer {p.label} write coordinates are not an "
            f"identity map over its instance variables"
        )
    for reg in p.from_regions:
        if reg.view_kind != "cell":
            return f"producer {p.label} reads a non-cell view of {reg.matrix}"
    if len(p.body) != 1:
        return f"producer {p.label} body has {len(p.body)} statements"
    stmt = p.body[0]
    if (
        not isinstance(stmt, ast.Assign)
        or stmt.op != "="
        or not isinstance(stmt.target, ast.Var)
        or stmt.target.name != to.bind_name
    ):
        return (
            f"producer {p.label} body is not a single '=' assignment "
            f"to its output cell"
        )
    banned = set(p.rule_vars)
    allowed = (
        {reg.bind_name for reg in p.from_regions}
        | set(ir.size_vars)
        | _tunable_names(ir)
    )

    def walk(node) -> str:
        if isinstance(node, ast.Num):
            return ""
        if isinstance(node, ast.Var):
            if node.name in banned:
                return (
                    f"producer {p.label} body references instance "
                    f"variable {node.name!r}"
                )
            if node.name not in allowed:
                return f"producer {p.label} body references {node.name!r}"
            return ""
        if isinstance(node, ast.BinOp):
            return walk(node.left) or walk(node.right)
        if isinstance(node, ast.UnaryOp):
            return walk(node.operand)
        if isinstance(node, ast.Call):
            if node.name not in VECTOR_STABLE_CALLS:
                return f"producer {p.label} body calls {node.name!r}"
            for arg in node.args:
                err = walk(arg)
                if err:
                    return err
            return ""
        return f"producer {p.label} body uses {type(node).__name__}"

    err = walk(stmt.value)
    if err:
        return err

    if not c.is_instance_rule:
        return f"consumer {c.label} is a whole-region rule"
    if c.native_body is not None:
        return f"consumer {c.label} has a native body"
    intermediate_binds = set()
    for reg in c.from_regions:
        if reg.matrix == name:
            if reg.view_kind != "cell":
                return (
                    f"consumer {c.label} reads {name} through a "
                    f"{reg.view_kind} view"
                )
            intermediate_binds.add(reg.bind_name)
    for stmt in c.body:
        target = stmt.target
        tname = None
        if isinstance(target, ast.Var):
            tname = target.name
        elif isinstance(target, ast.CellAccess):
            base = target.base
            tname = base if isinstance(base, str) else getattr(base, "name", None)
        if tname in intermediate_binds:
            return (
                f"consumer {c.label} body assigns to intermediate "
                f"binding {tname!r}"
            )
    return ""


def _carried_conflict(
    compiled, matrix: str, budget: WitnessBudget
) -> Optional[ConflictWitness]:
    """Hunt a concrete flow conflict carried by ``matrix``: under the
    engine's default option selection, one application writes a cell
    that a different application of a *writer rule* reads.  Enumeration
    reuses the races pass's application model (size guards, residual
    fallbacks), so every returned witness describes applications the
    engine really runs."""
    from repro.analysis.races import _applications

    segments = compiled.grid.segments.get(matrix, ())
    for env in size_envs(compiled, budget):
        apps = []
        for segment in segments:
            if not segment.options:
                continue
            segment_apps = _applications(
                compiled, segment, segment.options[0], env, budget
            )
            if segment_apps is None:
                apps = None
                break
            apps.extend(segment_apps)
        if not apps:
            continue
        writes: Dict[Tuple[int, ...], Tuple[RuleIR, Dict[str, int]]] = {}
        for chosen, instance_env, assignment in apps:
            for reg in chosen.to_regions:
                if reg.matrix != matrix:
                    continue
                cells = region_cells(reg.box.concrete(instance_env), budget)
                for cell in cells or ():
                    writes.setdefault(cell, (chosen, assignment))
        for chosen, instance_env, assignment in apps:
            for reg in chosen.from_regions:
                if reg.matrix != matrix:
                    continue
                cells = region_cells(reg.box.concrete(instance_env), budget)
                for cell in cells or ():
                    hit = writes.get(cell)
                    if hit is None:
                        continue
                    writer_rule, writer_assignment = hit
                    if (
                        writer_rule.rule_id == chosen.rule_id
                        and writer_assignment == assignment
                    ):
                        continue
                    witness = ConflictWitness(
                        sizes=tuple(sorted(env.items())),
                        writer_rule=writer_rule.label,
                        writer_rule_id=writer_rule.rule_id,
                        writer=tuple(sorted(writer_assignment.items())),
                        reader_rule=chosen.label,
                        reader_rule_id=chosen.rule_id,
                        reader=tuple(sorted(assignment.items())),
                        cell=cell,
                        matrix=matrix,
                    )
                    if validate_conflict(compiled, witness):
                        return witness
    return None


def validate_conflict(compiled, witness: ConflictWitness) -> bool:
    """Replay a conflict witness against the engine's exact geometry:
    the writer application's to-region must contain the cell, a
    *different* application's from-region must read it."""
    rules = compiled.ir.rules
    if not (
        0 <= witness.writer_rule_id < len(rules)
        and 0 <= witness.reader_rule_id < len(rules)
    ):
        return False
    writer = dict(witness.writer)
    reader = dict(witness.reader)
    if witness.writer_rule_id == witness.reader_rule_id and writer == reader:
        return False
    env = dict(witness.sizes)

    def hits(regions, instance) -> bool:
        instance_env = {**env, **instance}
        for reg in regions:
            if reg.matrix != witness.matrix:
                continue
            bounds = reg.box.concrete(instance_env)
            if len(bounds) == len(witness.cell) and all(
                lo <= coord < hi
                for coord, (lo, hi) in zip(witness.cell, bounds)
            ):
                return True
        return False

    return hits(rules[witness.writer_rule_id].to_regions, writer) and hits(
        rules[witness.reader_rule_id].from_regions, reader
    )


def _candidate_for(compiled, mat, budget: WitnessBudget) -> Optional[FusionCandidate]:
    ir = compiled.ir
    name = mat.name
    writers = [r for r in ir.rules if name in r.writes_matrices()]
    readers = [r for r in ir.rules if name in r.reads_matrices()]
    if not writers or not readers:
        return None  # dead matrix: hygiene's PB403 territory

    def cand(status, reason="", producer=None, consumer=None, distances=(), conflict=None):
        return FusionCandidate(
            transform=ir.name,
            matrix=name,
            producer=producer.label if producer else "",
            consumer=consumer.label if consumer else "",
            producer_id=producer.rule_id if producer else -1,
            consumer_id=consumer.rule_id if consumer else -1,
            status=status,
            reason=reason,
            distances=tuple(distances),
            conflict=conflict,
            line=mat.line or ir.line,
            column=mat.column or ir.column,
        )

    writer_ids = {r.rule_id for r in writers}
    external_readers = [r for r in readers if r.rule_id not in writer_ids]
    if any(name in w.reads_matrices() for w in writers):
        # A writer reads the matrix it helps compute: cells of `name`
        # may depend on other cells of `name`, which substitution cannot
        # express.  Blocked only with a concrete, replayed conflict.
        conflict = _carried_conflict(compiled, name, budget)
        if conflict is not None:
            producer = ir.rules[conflict.writer_rule_id]
            consumer = external_readers[0] if external_readers else None
            return cand(
                "blocked",
                f"cells of {name} depend on other {name} cells "
                f"({conflict.reader_rule} reads what {conflict.writer_rule} "
                f"writes; flow dependence carried by {name})",
                producer=producer,
                consumer=consumer,
                conflict=conflict,
            )
    if len(writers) > 1:
        return cand(
            "ineligible",
            f"{len(writers)} rules write {name}; fusion needs a single producer",
        )
    producer = writers[0]
    if len(external_readers) != 1:
        return cand(
            "ineligible",
            f"{name} feeds {len(external_readers)} consumer rules; "
            f"fusion needs exactly one",
            producer=producer,
        )
    consumer = external_readers[0]
    distances = []
    if len(producer.to_regions) == 1:
        write_region = producer.to_regions[0]
        for reg in consumer.from_regions:
            if reg.matrix == name:
                distances.append(
                    _region_distance(
                        write_region,
                        reg,
                        producer.rule_vars,
                        consumer.rule_vars,
                    )
                )
    if name in producer.reads_matrices():
        return cand(
            "ineligible",
            f"producer {producer.label} reads {name}; no concrete "
            f"conflicting instance found within budget",
            producer=producer,
            consumer=consumer,
            distances=distances,
        )
    reason = _structural_block(ir, producer, consumer, name)
    if reason:
        return cand(
            "ineligible",
            reason,
            producer=producer,
            consumer=consumer,
            distances=distances,
        )
    return cand(
        "legal",
        producer=producer,
        consumer=consumer,
        distances=distances,
    )


def fusion_candidates(
    compiled, budget: WitnessBudget = DEFAULT_BUDGET
) -> List[FusionCandidate]:
    """The fusion verdict of every ``through`` matrix, name order."""
    ir = compiled.ir
    out = []
    for mat in sorted(ir.throughs, key=lambda m: m.name):
        candidate = _candidate_for(compiled, mat, budget)
        if candidate is not None:
            out.append(candidate)
    return out


def check_depend(
    compiled, budget: WitnessBudget = DEFAULT_BUDGET, path: str = ""
) -> List[Diagnostic]:
    """PB601/PB602 per fusion candidate plus the PB603 audit."""
    ir = compiled.ir
    deps = rule_dependences(ir)
    candidates = fusion_candidates(compiled, budget)
    diagnostics: List[Diagnostic] = []
    for cand in candidates:
        if cand.status == "legal":
            diagnostics.append(
                Diagnostic(
                    code="PB601",
                    severity=INFO,
                    message=(
                        f"fusing {cand.producer} into {cand.consumer} over "
                        f"{cand.matrix} is legal; distance vector(s) "
                        f"{cand.distance_text()}"
                    ),
                    transform=ir.name,
                    rule=cand.consumer,
                    region=cand.matrix,
                    line=cand.line,
                    column=cand.column,
                    hint=(
                        f"apply with `repro rewrite --apply` or set "
                        f"tunable {ir.name}.__fuse__ = 1"
                    ),
                    path=path,
                )
            )
        elif cand.status == "blocked":
            diagnostics.append(
                Diagnostic(
                    code="PB602",
                    severity=INFO,
                    message=(
                        f"fusion over {cand.matrix} is blocked: {cand.reason}"
                    ),
                    transform=ir.name,
                    rule=cand.producer,
                    region=cand.matrix,
                    line=cand.line,
                    column=cand.column,
                    witness=cand.conflict.describe() if cand.conflict else "",
                    hint=(
                        "fusion would read the producer's expression instead "
                        "of the cell another instance wrote"
                    ),
                    path=path,
                )
            )
    kinds = {"flow": 0, "anti": 0, "output": 0}
    for dep in deps:
        kinds[dep.kind] += 1
    clauses = []
    for cand in candidates:
        if cand.status == "ineligible":
            clauses.append(f"{cand.matrix} ineligible ({cand.reason})")
        else:
            clauses.append(f"{cand.matrix} {cand.status}")
    detail = "; ".join(clauses) if clauses else "no fusion candidates"
    diagnostics.append(
        Diagnostic(
            code="PB603",
            severity=INFO,
            message=(
                f"rewrite audit: {len(deps)} dependence(s) "
                f"({kinds['flow']} flow, {kinds['anti']} anti, "
                f"{kinds['output']} output); {detail}"
            ),
            transform=ir.name,
            line=ir.line,
            column=ir.column,
            path=path,
        )
    )
    return diagnostics


__all__ = [
    "Dependence",
    "ConflictWitness",
    "FusionCandidate",
    "rule_dependences",
    "fusion_candidates",
    "validate_conflict",
    "check_depend",
]
