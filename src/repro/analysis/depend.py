"""Static dependence analysis and fusion legality (pass family 6).

For every pair of rules sharing a matrix the pass classifies the
potential dependences Bernstein-style — *flow* (writer feeds reader),
*anti* (reader precedes a writer of the same cells), *output* (two
writers) — and computes the symbolic dependence distance per dimension
from the affine read/write regions: when both accesses sweep a
dimension unit-stride in one instance variable, instances pair up
positionally and the distance is the exact constant gap (see
:func:`repro.symbolic.solve.unit_stride_offset`); anything else is
reported as ``*`` (unknown).

On top of the classification sits the legality gate for the first
verified rewrite, producer→consumer fusion of adjacent elementwise
rules (:mod:`repro.rewrite.fuse`).  A ``through`` matrix is a *fusion
candidate* when exactly one rule writes it and exactly one other rule
reads it; the candidate is

* ``legal`` (PB601) when the producer is a pure elementwise step — an
  identity-mapped single-cell write, a one-statement body over its cell
  reads with only vector-stable calls — so substituting its expression
  into the consumer preserves every per-element operation sequence
  bit-for-bit;
* ``blocked`` (PB602) when a writer of the matrix also reads it and a
  concrete conflicting application pair exists: a (sizes, writer rule +
  instance, reader rule + instance, cell) witness, replay-validated by
  :func:`validate_conflict` against the engine's exact region geometry,
  proving the matrix's cells depend on its own cells (a carried flow
  dependence — rolling sums, wavefront stencils) so no substitution can
  eliminate it;
* ``ineligible`` otherwise, with the structural reason.

PB602 follows the verifier-wide witness contract: it is only emitted
with a concrete, replayed witness — a suspected-but-unproven chain is
reported as ineligible instead.  PB603 is the per-transform rewrite
audit (always emitted, like PB503): dependence counts plus the status
of every candidate, so ``repro check`` documents why a transform did or
did not gain a fused variant.

The second rewrite family is *schedule* legality (PB604/PB605): may the
engine block a rule's data-parallel (free) instance variables into
cache-sized tiles, and run the sequential chain dimension tile-by-tile
(loop interchange) instead of sweeping the whole free space at every
chain step?  Tiles execute in ascending lexicographic order over the
free space, so the transformation is exact when every self-dependence
the rule carries either stays inside one tile (all free-variable gaps
zero) or points the same way as both orders: a flow dependence (later
chain step) must never reach a lexicographically earlier tile, an anti
dependence never a later one.  :func:`schedule_candidates` derives the
per-variable gaps from the same unit-stride offsets as the distance
vectors; a refusal is only reported as ``blocked`` (PB605) with a
replay-validated :class:`ScheduleWitness` — a concrete pair of
applications of the rule that a tiled interchange would run in the
wrong order — mirroring the PB602 contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic, INFO
from repro.analysis.witness import (
    DEFAULT_BUDGET,
    WitnessBudget,
    describe_bounds,
    describe_env,
    region_cells,
    size_envs,
)
from repro.compiler.ir import ROLE_INPUT, RegionIR, RuleIR, TransformIR
from repro.language import ast_nodes as ast
from repro.symbolic.solve import unit_stride_offset

#: Per-dimension dependence distance; ``None`` renders as ``*``.
Distance = Tuple[Optional[Fraction], ...]


@dataclass(frozen=True)
class Dependence:
    """One classified dependence between two rules over one matrix."""

    kind: str  # "flow" | "anti" | "output"
    matrix: str
    src_rule: str
    dst_rule: str
    distance: Distance

    def distance_text(self) -> str:
        inner = ", ".join("*" if d is None else str(d) for d in self.distance)
        return f"({inner})"


@dataclass(frozen=True)
class ConflictWitness:
    """A replayable cross-instance flow conflict carried by ``matrix``:
    one application writes ``cell`` and a *different* application — of a
    rule that also writes the matrix — reads it, so the matrix's cells
    depend on its own cells and substitution cannot eliminate it."""

    sizes: Tuple[Tuple[str, int], ...]
    writer_rule: str
    writer_rule_id: int
    writer: Tuple[Tuple[str, int], ...]
    reader_rule: str
    reader_rule_id: int
    reader: Tuple[Tuple[str, int], ...]
    cell: Tuple[int, ...]
    matrix: str

    def describe(self) -> str:
        cellbox = describe_bounds(
            self.matrix, [(c, c + 1) for c in self.cell]
        )

        def instance(assignment) -> str:
            if not assignment:
                return "(sole instance)"
            return f"({describe_env({}, dict(assignment))})"

        return (
            f"{describe_env(dict(self.sizes))}: {self.writer_rule} instance "
            f"{instance(self.writer)} writes {cellbox}; "
            f"{self.reader_rule} instance {instance(self.reader)} reads it"
        )


@dataclass(frozen=True)
class FusionCandidate:
    """The fusion verdict for one ``through`` matrix."""

    transform: str
    matrix: str
    producer: str
    consumer: str
    producer_id: int
    consumer_id: int
    status: str  # "legal" | "blocked" | "ineligible"
    reason: str
    distances: Tuple[Distance, ...] = ()
    conflict: Optional[ConflictWitness] = None
    line: int = 0
    column: int = 0

    def distance_text(self) -> str:
        if not self.distances:
            return "(none)"
        parts = []
        for vec in self.distances:
            inner = ", ".join("*" if d is None else str(d) for d in vec)
            parts.append(f"({inner})")
        return " ".join(parts)


def _region_distance(
    src_region: RegionIR,
    dst_region: RegionIR,
    src_vars,
    dst_vars,
) -> Distance:
    if src_region.view_kind != "cell" or dst_region.view_kind != "cell":
        return tuple(None for _ in src_region.box.intervals)
    return tuple(
        unit_stride_offset(s.lo, d.lo, src_vars, dst_vars)
        for s, d in zip(src_region.box.intervals, dst_region.box.intervals)
    )


def rule_dependences(ir: TransformIR) -> List[Dependence]:
    """Every classified dependence pair over every computed matrix."""
    deps: List[Dependence] = []
    seen = set()

    def emit(kind, matrix, src, dst, src_region, dst_region):
        distance = _region_distance(
            src_region, dst_region, src.rule_vars, dst.rule_vars
        )
        key = (kind, matrix, src.rule_id, dst.rule_id, distance)
        if key in seen:
            return
        seen.add(key)
        deps.append(Dependence(kind, matrix, src.label, dst.label, distance))

    for name in sorted(ir.matrices):
        if ir.matrices[name].role == ROLE_INPUT:
            continue
        writers = [
            (rule, reg)
            for rule in ir.rules
            for reg in rule.to_regions
            if reg.matrix == name
        ]
        readers = [
            (rule, reg)
            for rule in ir.rules
            for reg in rule.from_regions
            if reg.matrix == name
        ]
        for writer, wreg in writers:
            for reader, rreg in readers:
                emit("flow", name, writer, reader, wreg, rreg)
                emit("anti", name, reader, writer, rreg, wreg)
        for i, (w1, reg1) in enumerate(writers):
            for w2, reg2 in writers[i + 1 :]:
                if w1.rule_id == w2.rule_id:
                    continue
                emit("output", name, w1, w2, reg1, reg2)
    return deps


def _tunable_names(ir: TransformIR):
    return {t.name for t in ir.tunables}


def _structural_block(
    ir: TransformIR, producer: RuleIR, consumer: RuleIR, name: str
) -> str:
    """Why substituting the producer's expression into the consumer is
    not obviously exact; empty string when fusion is legal."""
    from repro.engine_fast.vectorize import VECTOR_STABLE_CALLS

    p, c = producer, consumer
    if not p.is_instance_rule:
        return f"producer {p.label} is a whole-region rule"
    if p.native_body is not None:
        return f"producer {p.label} has a native body"
    if p.where or p.residual_where:
        return f"producer {p.label} has a where-clause"
    if len(p.to_regions) != 1:
        return f"producer {p.label} writes {len(p.to_regions)} regions"
    to = p.to_regions[0]
    if to.view_kind != "cell":
        return f"producer {p.label} writes a non-cell view"
    coords = []
    for interval in to.box.intervals:
        lo = interval.lo
        names = lo.variables()
        if (
            len(names) != 1
            or lo.coefficient(names[0]) != 1
            or lo.constant != 0
        ):
            return (
                f"producer {p.label} write coordinates are not an "
                f"identity map over its instance variables"
            )
        coords.append(names[0])
    if len(set(coords)) != len(coords) or set(coords) != set(p.rule_vars):
        return (
            f"producer {p.label} write coordinates are not an "
            f"identity map over its instance variables"
        )
    for reg in p.from_regions:
        if reg.view_kind != "cell":
            return f"producer {p.label} reads a non-cell view of {reg.matrix}"
    if len(p.body) != 1:
        return f"producer {p.label} body has {len(p.body)} statements"
    stmt = p.body[0]
    if (
        not isinstance(stmt, ast.Assign)
        or stmt.op != "="
        or not isinstance(stmt.target, ast.Var)
        or stmt.target.name != to.bind_name
    ):
        return (
            f"producer {p.label} body is not a single '=' assignment "
            f"to its output cell"
        )
    banned = set(p.rule_vars)
    allowed = (
        {reg.bind_name for reg in p.from_regions}
        | set(ir.size_vars)
        | _tunable_names(ir)
    )

    def walk(node) -> str:
        if isinstance(node, ast.Num):
            return ""
        if isinstance(node, ast.Var):
            if node.name in banned:
                return (
                    f"producer {p.label} body references instance "
                    f"variable {node.name!r}"
                )
            if node.name not in allowed:
                return f"producer {p.label} body references {node.name!r}"
            return ""
        if isinstance(node, ast.BinOp):
            return walk(node.left) or walk(node.right)
        if isinstance(node, ast.UnaryOp):
            return walk(node.operand)
        if isinstance(node, ast.Call):
            if node.name not in VECTOR_STABLE_CALLS:
                return f"producer {p.label} body calls {node.name!r}"
            for arg in node.args:
                err = walk(arg)
                if err:
                    return err
            return ""
        return f"producer {p.label} body uses {type(node).__name__}"

    err = walk(stmt.value)
    if err:
        return err

    if not c.is_instance_rule:
        return f"consumer {c.label} is a whole-region rule"
    if c.native_body is not None:
        return f"consumer {c.label} has a native body"
    intermediate_binds = set()
    for reg in c.from_regions:
        if reg.matrix == name:
            if reg.view_kind != "cell":
                return (
                    f"consumer {c.label} reads {name} through a "
                    f"{reg.view_kind} view"
                )
            intermediate_binds.add(reg.bind_name)
    for stmt in c.body:
        target = stmt.target
        tname = None
        if isinstance(target, ast.Var):
            tname = target.name
        elif isinstance(target, ast.CellAccess):
            base = target.base
            tname = base if isinstance(base, str) else getattr(base, "name", None)
        if tname in intermediate_binds:
            return (
                f"consumer {c.label} body assigns to intermediate "
                f"binding {tname!r}"
            )
    return ""


def _carried_conflict(
    compiled, matrix: str, budget: WitnessBudget
) -> Optional[ConflictWitness]:
    """Hunt a concrete flow conflict carried by ``matrix``: under the
    engine's default option selection, one application writes a cell
    that a different application of a *writer rule* reads.  Enumeration
    reuses the races pass's application model (size guards, residual
    fallbacks), so every returned witness describes applications the
    engine really runs."""
    from repro.analysis.races import _applications

    segments = compiled.grid.segments.get(matrix, ())
    for env in size_envs(compiled, budget):
        apps = []
        for segment in segments:
            if not segment.options:
                continue
            segment_apps = _applications(
                compiled, segment, segment.options[0], env, budget
            )
            if segment_apps is None:
                apps = None
                break
            apps.extend(segment_apps)
        if not apps:
            continue
        writes: Dict[Tuple[int, ...], Tuple[RuleIR, Dict[str, int]]] = {}
        for chosen, instance_env, assignment in apps:
            for reg in chosen.to_regions:
                if reg.matrix != matrix:
                    continue
                cells = region_cells(reg.box.concrete(instance_env), budget)
                for cell in cells or ():
                    writes.setdefault(cell, (chosen, assignment))
        for chosen, instance_env, assignment in apps:
            for reg in chosen.from_regions:
                if reg.matrix != matrix:
                    continue
                cells = region_cells(reg.box.concrete(instance_env), budget)
                for cell in cells or ():
                    hit = writes.get(cell)
                    if hit is None:
                        continue
                    writer_rule, writer_assignment = hit
                    if (
                        writer_rule.rule_id == chosen.rule_id
                        and writer_assignment == assignment
                    ):
                        continue
                    witness = ConflictWitness(
                        sizes=tuple(sorted(env.items())),
                        writer_rule=writer_rule.label,
                        writer_rule_id=writer_rule.rule_id,
                        writer=tuple(sorted(writer_assignment.items())),
                        reader_rule=chosen.label,
                        reader_rule_id=chosen.rule_id,
                        reader=tuple(sorted(assignment.items())),
                        cell=cell,
                        matrix=matrix,
                    )
                    if validate_conflict(compiled, witness):
                        return witness
    return None


def validate_conflict(compiled, witness: ConflictWitness) -> bool:
    """Replay a conflict witness against the engine's exact geometry:
    the writer application's to-region must contain the cell, a
    *different* application's from-region must read it."""
    rules = compiled.ir.rules
    if not (
        0 <= witness.writer_rule_id < len(rules)
        and 0 <= witness.reader_rule_id < len(rules)
    ):
        return False
    writer = dict(witness.writer)
    reader = dict(witness.reader)
    if witness.writer_rule_id == witness.reader_rule_id and writer == reader:
        return False
    env = dict(witness.sizes)

    def hits(regions, instance) -> bool:
        instance_env = {**env, **instance}
        for reg in regions:
            if reg.matrix != witness.matrix:
                continue
            bounds = reg.box.concrete(instance_env)
            if len(bounds) == len(witness.cell) and all(
                lo <= coord < hi
                for coord, (lo, hi) in zip(witness.cell, bounds)
            ):
                return True
        return False

    return hits(rules[witness.writer_rule_id].to_regions, writer) and hits(
        rules[witness.reader_rule_id].from_regions, reader
    )


# -- schedule legality: tiling and interchange (PB604/PB605) ----------------


@dataclass(frozen=True)
class ScheduleWitness:
    """A replayable pair of applications of one rule proving that
    running its free (data-parallel) variables tile-by-tile, chain
    inside each tile, would execute the reader's tile on the wrong side
    of the writer's: the writer produces ``cell`` of ``matrix`` and a
    *different* application of the same rule consumes it from a tile
    the interchanged order visits too early (or, for an anti
    dependence, too late)."""

    sizes: Tuple[Tuple[str, int], ...]
    segment: str
    rule: str
    rule_id: int
    writer: Tuple[Tuple[str, int], ...]
    reader: Tuple[Tuple[str, int], ...]
    cell: Tuple[int, ...]
    matrix: str

    def describe(self) -> str:
        cellbox = describe_bounds(self.matrix, [(c, c + 1) for c in self.cell])
        return (
            f"{describe_env(dict(self.sizes))}: {self.rule} instance "
            f"({describe_env({}, dict(self.writer))}) writes {cellbox}; "
            f"instance ({describe_env({}, dict(self.reader))}) reads it "
            f"from a tile the blocked order runs on the wrong side of "
            f"the write"
        )


@dataclass(frozen=True)
class ScheduleCandidate:
    """The tiling/interchange verdict for one (segment, rule) site.

    Only sites with both a sequential chain variable and at least one
    data-parallel free variable are candidates — with no chain there is
    nothing to interchange and plain blocking is a no-op partition; with
    no free variable there is nothing to tile."""

    transform: str
    segment: str
    matrix: str
    rule: str
    rule_id: int
    chain_vars: Tuple[str, ...]
    free_vars: Tuple[str, ...]
    status: str  # "legal" | "blocked" | "ineligible"
    reason: str
    witness: Optional[ScheduleWitness] = None
    line: int = 0
    column: int = 0


def _schedule_deltas(
    rule: RuleIR, wreg: RegionIR, rreg: RegionIR
) -> Tuple[Optional[Dict[str, Fraction]], str]:
    """Per-variable instance gap (reader − writer) implied by one
    application writing a cell through ``wreg`` that another reads
    through ``rreg``.

    Returns ``(deltas, reason)``: a non-empty ``reason`` means some
    dimension cannot be related exactly (the conservative answer);
    ``deltas is None`` with an empty reason means the two accesses
    provably never touch the same cell, so the pair carries no
    dependence at all."""
    var_set = set(rule.rule_vars)
    if wreg.view_kind != "cell" or rreg.view_kind != "cell":
        return {}, (
            f"{rule.label} accesses {wreg.matrix} through a non-cell view"
        )
    deltas: Dict[str, Fraction] = {}
    for dim, (wiv, riv) in enumerate(
        zip(wreg.box.intervals, rreg.box.intervals)
    ):
        write_coord, read_coord = wiv.lo, riv.lo
        wvars = [v for v in write_coord.variables() if v in var_set]
        rvars = [v for v in read_coord.variables() if v in var_set]
        offset = unit_stride_offset(
            write_coord, read_coord, rule.rule_vars, rule.rule_vars
        )
        if not wvars and not rvars:
            # Both coordinates fixed per application: the accesses alias
            # only if the (size-symbolic) coordinates coincide.
            if offset is not None and offset != 0:
                return None, ""
            if offset == 0:
                continue
            return {}, (
                f"{rule.label}: {wreg.matrix} dim {dim} write/read "
                f"coordinates cannot be compared"
            )
        if offset is None or wvars != rvars:
            return {}, (
                f"{rule.label}: {wreg.matrix} dim {dim} does not pair "
                f"write and read instances one-to-one"
            )
        var = wvars[0]
        delta = -offset  # same cell ⇒ reader instance = writer + delta
        if var in deltas and deltas[var] != delta:
            # Two dimensions pin the same variable to different gaps:
            # the accesses can never alias.
            return None, ""
        deltas[var] = delta
    return deltas, ""


def _pair_block_reason(
    rule: RuleIR,
    matrix: str,
    deltas: Dict[str, Fraction],
    chain_vars: Tuple[str, ...],
    free_vars: Tuple[str, ...],
    directions: Dict[str, int],
) -> str:
    """Why tiling the free variables (chain run per tile, tiles in
    ascending lexicographic order) could reorder this self-dependence;
    empty when the pair is provably schedule-safe."""
    free_d = []
    for var in free_vars:
        if var not in deltas:
            return (
                f"{rule.label}: the {matrix} self-dependence does not "
                f"relate instances of {var!r}"
            )
        free_d.append(deltas[var])
    if all(d == 0 for d in free_d):
        return ""  # the dependence never leaves its tile
    chain_gap = 0
    for var in chain_vars:
        if var not in deltas:
            return (
                f"{rule.label}: the {matrix} self-dependence does not "
                f"relate chain steps of {var!r}"
            )
        adjusted = deltas[var] * directions.get(var, 1)
        if adjusted != 0:
            chain_gap = 1 if adjusted > 0 else -1
            break
    # Tiles run in ascending lex order over the free space, so a
    # dependence into a later chain step (flow) tolerates only
    # never-decreasing free coordinates, and one into an earlier step
    # (anti) only never-increasing ones.
    if chain_gap > 0 and all(d >= 0 for d in free_d):
        return ""
    if chain_gap < 0 and all(d <= 0 for d in free_d):
        return ""
    moved = ", ".join(
        f"Δ{var}={deltas[var]}"
        for var in free_vars
        if deltas[var] != 0
    )
    return (
        f"{rule.label}: a {matrix}-carried dependence crosses tiles "
        f"against the blocked order ({moved}, chain gap "
        f"{'+' if chain_gap > 0 else '-' if chain_gap < 0 else '0'})"
    )


def _schedule_block_reason(
    rule: RuleIR,
    chain_vars: Tuple[str, ...],
    free_vars: Tuple[str, ...],
    directions: Dict[str, int],
) -> str:
    """First reason any self-dependence of ``rule`` makes tiling its
    free variables unsafe; empty when every pair is provably safe."""
    shared = [m for m in rule.writes_matrices() if m in rule.reads_matrices()]
    for name in shared:
        for wreg in rule.to_regions:
            if wreg.matrix != name:
                continue
            for rreg in rule.from_regions:
                if rreg.matrix != name:
                    continue
                deltas, reason = _schedule_deltas(rule, wreg, rreg)
                if reason:
                    return reason
                if deltas is None:
                    continue  # provably never alias
                reason = _pair_block_reason(
                    rule, name, deltas, chain_vars, free_vars, directions
                )
                if reason:
                    return reason
    return ""


def _schedule_conflict(
    compiled,
    segment,
    option,
    rule: RuleIR,
    budget: WitnessBudget,
) -> Optional[ScheduleWitness]:
    """Hunt a concrete application pair of ``rule`` that a tiled
    interchange would run out of order, using the races pass's exact
    application model; every returned witness is replay-validated."""
    from repro.analysis.races import _applications

    shared = [m for m in rule.writes_matrices() if m in rule.reads_matrices()]
    if not shared:
        return None
    for env in size_envs(compiled, budget):
        apps = _applications(compiled, segment, option, env, budget)
        if not apps:
            continue
        apps = [app for app in apps if app[0].rule_id == rule.rule_id]
        for matrix in shared:
            writes: Dict[Tuple[int, ...], List[Dict[str, int]]] = {}
            for chosen, instance_env, assignment in apps:
                for reg in chosen.to_regions:
                    if reg.matrix != matrix:
                        continue
                    cells = region_cells(
                        reg.box.concrete(instance_env), budget
                    )
                    for cell in cells or ():
                        writes.setdefault(cell, []).append(assignment)
            for chosen, instance_env, assignment in apps:
                for reg in chosen.from_regions:
                    if reg.matrix != matrix:
                        continue
                    cells = region_cells(
                        reg.box.concrete(instance_env), budget
                    )
                    for cell in cells or ():
                        for writer_assignment in writes.get(cell, ()):
                            if writer_assignment == assignment:
                                continue
                            witness = ScheduleWitness(
                                sizes=tuple(sorted(env.items())),
                                segment=segment.key,
                                rule=rule.label,
                                rule_id=rule.rule_id,
                                writer=tuple(
                                    sorted(writer_assignment.items())
                                ),
                                reader=tuple(sorted(assignment.items())),
                                cell=cell,
                                matrix=matrix,
                            )
                            if validate_schedule_witness(compiled, witness):
                                return witness
    return None


def validate_schedule_witness(compiled, witness: ScheduleWitness) -> bool:
    """Replay a schedule witness against the engine's exact geometry:
    the writer application's to-region must contain the cell, a
    *different* application's from-region must read it, and the blocked
    order must really visit the pair on the wrong side — the reader's
    tile strictly precedes the writer's while its chain step follows
    (or vice versa), for every tile size that separates them (size-1
    tiles separate any two distinct free coordinates)."""
    rules = compiled.ir.rules
    if not 0 <= witness.rule_id < len(rules):
        return False
    rule = rules[witness.rule_id]
    writer = dict(witness.writer)
    reader = dict(witness.reader)
    if writer == reader:
        return False
    segment = compiled._segments.get(witness.segment)
    if segment is None:
        return False
    try:
        directions, var_order = compiled._var_directions_cached(segment, rule)
    except Exception:
        return False
    chain_vars = tuple(v for v in var_order if directions.get(v, 0) != 0)
    free_vars = tuple(v for v in var_order if directions.get(v, 0) == 0)
    if not chain_vars or not free_vars:
        return False
    needed = chain_vars + free_vars
    if any(v not in writer or v not in reader for v in needed):
        return False
    env = dict(witness.sizes)

    def hits(regions, instance) -> bool:
        instance_env = {**env, **instance}
        for reg in regions:
            if reg.matrix != witness.matrix:
                continue
            bounds = reg.box.concrete(instance_env)
            if len(bounds) == len(witness.cell) and all(
                lo <= coord < hi
                for coord, (lo, hi) in zip(witness.cell, bounds)
            ):
                return True
        return False

    if not (hits(rule.to_regions, writer) and hits(rule.from_regions, reader)):
        return False
    chain_w = tuple(directions[v] * writer[v] for v in chain_vars)
    chain_r = tuple(directions[v] * reader[v] for v in chain_vars)
    free_w = tuple(writer[v] for v in free_vars)
    free_r = tuple(reader[v] for v in free_vars)
    return (chain_r > chain_w and free_r < free_w) or (
        chain_r < chain_w and free_r > free_w
    )


def schedule_candidates(
    compiled, budget: WitnessBudget = DEFAULT_BUDGET
) -> List[ScheduleCandidate]:
    """The tiling/interchange verdict of every (segment, rule) site
    that has both a chain and a free instance variable."""
    ir = compiled.ir
    out: List[ScheduleCandidate] = []
    seen = set()
    for segment in compiled.grid.all_segments():
        for option in segment.options:
            rule = ir.rules[option.primary]
            key = (segment.key, rule.rule_id)
            if key in seen:
                continue
            seen.add(key)
            if not rule.is_instance_rule or rule.native_body is not None:
                continue
            try:
                directions, var_order = compiled._var_directions_cached(
                    segment, rule
                )
            except Exception:
                continue
            chain_vars = tuple(
                v for v in var_order if directions.get(v, 0) != 0
            )
            free_vars = tuple(
                v for v in var_order if directions.get(v, 0) == 0
            )
            if not chain_vars or not free_vars:
                continue

            def cand(status, reason="", witness=None):
                return ScheduleCandidate(
                    transform=ir.name,
                    segment=segment.key,
                    matrix=segment.matrix,
                    rule=rule.label,
                    rule_id=rule.rule_id,
                    chain_vars=chain_vars,
                    free_vars=free_vars,
                    status=status,
                    reason=reason,
                    witness=witness,
                    line=rule.line or ir.line,
                    column=rule.column or ir.column,
                )

            if rule.where or rule.residual_where:
                out.append(
                    cand(
                        "ineligible",
                        f"{rule.label} has a where-clause; per-instance "
                        f"fallbacks do not tile",
                    )
                )
                continue
            reason = _schedule_block_reason(
                rule, chain_vars, free_vars, directions
            )
            if not reason:
                out.append(cand("legal"))
                continue
            witness = _schedule_conflict(
                compiled, segment, option, rule, budget
            )
            if witness is not None:
                out.append(cand("blocked", reason, witness))
            else:
                out.append(
                    cand(
                        "ineligible",
                        f"{reason}; no concrete out-of-order instance "
                        f"pair found within budget",
                    )
                )
    out.sort(key=lambda c: (c.segment, c.rule_id))
    return out


def _candidate_for(compiled, mat, budget: WitnessBudget) -> Optional[FusionCandidate]:
    ir = compiled.ir
    name = mat.name
    writers = [r for r in ir.rules if name in r.writes_matrices()]
    readers = [r for r in ir.rules if name in r.reads_matrices()]
    if not writers or not readers:
        return None  # dead matrix: hygiene's PB403 territory

    def cand(status, reason="", producer=None, consumer=None, distances=(), conflict=None):
        return FusionCandidate(
            transform=ir.name,
            matrix=name,
            producer=producer.label if producer else "",
            consumer=consumer.label if consumer else "",
            producer_id=producer.rule_id if producer else -1,
            consumer_id=consumer.rule_id if consumer else -1,
            status=status,
            reason=reason,
            distances=tuple(distances),
            conflict=conflict,
            line=mat.line or ir.line,
            column=mat.column or ir.column,
        )

    writer_ids = {r.rule_id for r in writers}
    external_readers = [r for r in readers if r.rule_id not in writer_ids]
    if any(name in w.reads_matrices() for w in writers):
        # A writer reads the matrix it helps compute: cells of `name`
        # may depend on other cells of `name`, which substitution cannot
        # express.  Blocked only with a concrete, replayed conflict.
        conflict = _carried_conflict(compiled, name, budget)
        if conflict is not None:
            producer = ir.rules[conflict.writer_rule_id]
            consumer = external_readers[0] if external_readers else None
            return cand(
                "blocked",
                f"cells of {name} depend on other {name} cells "
                f"({conflict.reader_rule} reads what {conflict.writer_rule} "
                f"writes; flow dependence carried by {name})",
                producer=producer,
                consumer=consumer,
                conflict=conflict,
            )
    if len(writers) > 1:
        return cand(
            "ineligible",
            f"{len(writers)} rules write {name}; fusion needs a single producer",
        )
    producer = writers[0]
    if len(external_readers) != 1:
        return cand(
            "ineligible",
            f"{name} feeds {len(external_readers)} consumer rules; "
            f"fusion needs exactly one",
            producer=producer,
        )
    consumer = external_readers[0]
    distances = []
    if len(producer.to_regions) == 1:
        write_region = producer.to_regions[0]
        for reg in consumer.from_regions:
            if reg.matrix == name:
                distances.append(
                    _region_distance(
                        write_region,
                        reg,
                        producer.rule_vars,
                        consumer.rule_vars,
                    )
                )
    if name in producer.reads_matrices():
        return cand(
            "ineligible",
            f"producer {producer.label} reads {name}; no concrete "
            f"conflicting instance found within budget",
            producer=producer,
            consumer=consumer,
            distances=distances,
        )
    reason = _structural_block(ir, producer, consumer, name)
    if reason:
        return cand(
            "ineligible",
            reason,
            producer=producer,
            consumer=consumer,
            distances=distances,
        )
    return cand(
        "legal",
        producer=producer,
        consumer=consumer,
        distances=distances,
    )


def fusion_candidates(
    compiled, budget: WitnessBudget = DEFAULT_BUDGET
) -> List[FusionCandidate]:
    """The fusion verdict of every ``through`` matrix, name order."""
    ir = compiled.ir
    out = []
    for mat in sorted(ir.throughs, key=lambda m: m.name):
        candidate = _candidate_for(compiled, mat, budget)
        if candidate is not None:
            out.append(candidate)
    return out


def check_depend(
    compiled, budget: WitnessBudget = DEFAULT_BUDGET, path: str = ""
) -> List[Diagnostic]:
    """PB601/PB602 per fusion candidate, PB604/PB605 per schedule
    candidate, plus the PB603 audit."""
    ir = compiled.ir
    deps = rule_dependences(ir)
    candidates = fusion_candidates(compiled, budget)
    sched = schedule_candidates(compiled, budget)
    diagnostics: List[Diagnostic] = []
    for cand in candidates:
        if cand.status == "legal":
            diagnostics.append(
                Diagnostic(
                    code="PB601",
                    severity=INFO,
                    message=(
                        f"fusing {cand.producer} into {cand.consumer} over "
                        f"{cand.matrix} is legal; distance vector(s) "
                        f"{cand.distance_text()}"
                    ),
                    transform=ir.name,
                    rule=cand.consumer,
                    region=cand.matrix,
                    line=cand.line,
                    column=cand.column,
                    hint=(
                        f"apply with `repro rewrite --apply` or set "
                        f"tunable {ir.name}.__fuse__ = 1"
                    ),
                    path=path,
                )
            )
        elif cand.status == "blocked":
            diagnostics.append(
                Diagnostic(
                    code="PB602",
                    severity=INFO,
                    message=(
                        f"fusion over {cand.matrix} is blocked: {cand.reason}"
                    ),
                    transform=ir.name,
                    rule=cand.producer,
                    region=cand.matrix,
                    line=cand.line,
                    column=cand.column,
                    witness=cand.conflict.describe() if cand.conflict else "",
                    hint=(
                        "fusion would read the producer's expression instead "
                        "of the cell another instance wrote"
                    ),
                    path=path,
                )
            )
    for site in sched:
        if site.status == "legal":
            diagnostics.append(
                Diagnostic(
                    code="PB604",
                    severity=INFO,
                    message=(
                        f"tiling/interchange of {site.rule} over "
                        f"{site.segment} is legal: every "
                        f"{site.matrix}-carried dependence stays within "
                        f"or ahead of its tile (chain "
                        f"({', '.join(site.chain_vars)}), free "
                        f"({', '.join(site.free_vars)}))"
                    ),
                    transform=ir.name,
                    rule=site.rule,
                    region=site.matrix,
                    line=site.line,
                    column=site.column,
                    hint=(
                        f"set tunables {ir.name}.__tile_i__ / "
                        f"{ir.name}.__tile_j__ (and "
                        f"{ir.name}.__interchange__ = 1) or let "
                        f"`repro tune` search them"
                    ),
                    path=path,
                )
            )
        elif site.status == "blocked":
            diagnostics.append(
                Diagnostic(
                    code="PB605",
                    severity=INFO,
                    message=(
                        f"tiling/interchange of {site.rule} over "
                        f"{site.segment} is blocked: {site.reason}"
                    ),
                    transform=ir.name,
                    rule=site.rule,
                    region=site.matrix,
                    line=site.line,
                    column=site.column,
                    witness=site.witness.describe() if site.witness else "",
                    hint=(
                        "a blocked order would visit the reading tile "
                        "on the wrong side of the writing one"
                    ),
                    path=path,
                )
            )
    kinds = {"flow": 0, "anti": 0, "output": 0}
    for dep in deps:
        kinds[dep.kind] += 1
    clauses = []
    for cand in candidates:
        if cand.status == "ineligible":
            clauses.append(f"{cand.matrix} ineligible ({cand.reason})")
        else:
            clauses.append(f"{cand.matrix} {cand.status}")
    for site in sched:
        if site.status == "ineligible":
            clauses.append(
                f"schedule {site.segment}/{site.rule} ineligible "
                f"({site.reason})"
            )
        else:
            clauses.append(f"schedule {site.segment}/{site.rule} {site.status}")
    detail = "; ".join(clauses) if clauses else "no fusion candidates"
    diagnostics.append(
        Diagnostic(
            code="PB603",
            severity=INFO,
            message=(
                f"rewrite audit: {len(deps)} dependence(s) "
                f"({kinds['flow']} flow, {kinds['anti']} anti, "
                f"{kinds['output']} output); {detail}"
            ),
            transform=ir.name,
            line=ir.line,
            column=ir.column,
            path=path,
        )
    )
    return diagnostics


__all__ = [
    "Dependence",
    "ConflictWitness",
    "FusionCandidate",
    "ScheduleCandidate",
    "ScheduleWitness",
    "rule_dependences",
    "fusion_candidates",
    "schedule_candidates",
    "validate_conflict",
    "validate_schedule_witness",
    "check_depend",
]
