"""Hygiene lints (pass family 4: PB401–PB405).

Warnings about suspicious-but-executable programs: where-clauses that
can never hold, declared tunables and input matrices nothing reads,
rules the choice grid can never select, and rules that are applicable
somewhere but lose the priority filter in every segment.  All are
warnings — the program runs, but part of its text is inert — except
that `repro check --strict` promotes them to a failing exit code.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, WARNING
from repro.analysis.witness import (
    WitnessBudget,
    DEFAULT_BUDGET,
    describe_env,
    instance_assignments,
    residual_ok,
    size_envs,
    size_guards_hold,
)
from repro.compiler.ir import ROLE_INPUT


def check_lints(
    compiled, budget: WitnessBudget = DEFAULT_BUDGET, path: str = ""
) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    diagnostics.extend(_unsatisfiable_wheres(compiled, budget, path))
    diagnostics.extend(_unused_tunables(compiled, path))
    diagnostics.extend(_unused_matrices(compiled, path))
    diagnostics.extend(_dead_and_shadowed_rules(compiled, path))
    return diagnostics


def _rule_used_names(rule) -> Set[str]:
    """Every identifier a rule's text references: region boxes, where
    clauses, and body expressions."""
    names: Set[str] = set()
    for region in rule.to_regions + rule.from_regions:
        for interval in region.box.intervals:
            names.update(interval.lo.variables())
            names.update(interval.hi.variables())
    for cond in rule.where:
        names.update(cond.free_names())
    for stmt in rule.body:
        names.update(stmt.target.free_names())
        names.update(stmt.value.free_names())
    return names


def _unsatisfiable_wheres(compiled, budget, path: str) -> List[Diagnostic]:
    """PB401: a residual where-predicate that is false at every instance
    of every admitted size (the rule's body can never run as primary).

    Only reported when the instance space was enumerated exhaustively at
    at least one admitted size — a budget-truncated sweep stays silent.
    """
    ir = compiled.ir
    envs = size_envs(compiled, budget)
    diagnostics: List[Diagnostic] = []
    for segment in compiled.grid.all_segments():
        for option in segment.options:
            rule = ir.rules[option.primary]
            if not rule.residual_where:
                continue
            satisfiable = False
            probed = 0
            for env in envs:
                if not size_guards_hold(rule, env):
                    continue
                assignments = instance_assignments(
                    compiled, segment, rule, env, budget
                )
                if assignments is None:
                    probed = 0  # incomplete evidence: stay silent
                    satisfiable = True
                    break
                for assignment in assignments:
                    instance_env = dict(env)
                    instance_env.update(assignment)
                    probed += 1
                    if residual_ok(rule, instance_env):
                        satisfiable = True
                        break
                if satisfiable:
                    break
            if satisfiable or probed == 0:
                continue
            line, column = rule.line, rule.column
            if rule.residual_where and rule.where:
                try:
                    index = list(rule.where).index(rule.residual_where[0])
                except ValueError:
                    index = -1
                if index >= 0:
                    pos = rule.where_position(index)
                    if pos:
                        line, column = pos
            diagnostics.append(
                Diagnostic(
                    code="PB401",
                    severity=WARNING,
                    message=(
                        f"where-clause is false at every admitted instance "
                        f"({probed} probed); the rule never fires as primary"
                    ),
                    transform=ir.name,
                    rule=rule.label,
                    line=line,
                    column=column,
                    hint="loosen the predicate or delete the rule",
                    witness=describe_env(envs[-1]) if envs else "",
                    path=path,
                )
            )
    # Dedup per rule (the same meta-rule option can recur across segments).
    unique: Dict[Tuple[str, str], Diagnostic] = {}
    for diag in diagnostics:
        unique.setdefault((diag.code, diag.rule), diag)
    return list(unique.values())


def _unused_tunables(compiled, path: str) -> List[Diagnostic]:
    """PB402: declared tunable no rule text references.

    Skipped when any rule has a native (Python) body — native bodies may
    read tunables through the execution context, invisibly to this pass.
    """
    ir = compiled.ir
    if any(rule.native_body is not None for rule in ir.rules):
        return []
    used: Set[str] = set()
    for rule in ir.rules:
        used.update(_rule_used_names(rule))
    diagnostics = []
    for tunable in ir.tunables:
        if tunable.name in used:
            continue
        diagnostics.append(
            Diagnostic(
                code="PB402",
                severity=WARNING,
                message=f"tunable {tunable.name!r} is never used by any rule",
                transform=ir.name,
                line=tunable.line or ir.line,
                column=tunable.column or ir.column,
                hint="delete the tunable or reference it in a rule",
                path=path,
            )
        )
    return diagnostics


def _unused_matrices(compiled, path: str) -> List[Diagnostic]:
    """PB403: an input matrix never bound by any rule region and never
    named in any rule expression (outputs are covered by PB301)."""
    ir = compiled.ir
    referenced: Set[str] = set()
    for rule in ir.rules:
        for region in rule.to_regions + rule.from_regions:
            referenced.add(region.matrix)
        referenced.update(_rule_used_names(rule))
    diagnostics = []
    for matrix in ir.matrices.values():
        if matrix.role != ROLE_INPUT or matrix.name in referenced:
            continue
        diagnostics.append(
            Diagnostic(
                code="PB403",
                severity=WARNING,
                message=f"input matrix {matrix.name!r} is never read",
                transform=ir.name,
                line=matrix.line or ir.line,
                column=matrix.column or ir.column,
                hint="drop the matrix from the from(...) header",
                path=path,
            )
        )
    return diagnostics


def _dead_and_shadowed_rules(compiled, path: str) -> List[Diagnostic]:
    """PB404 (rule in no segment's option set) and PB405 (rule applicable
    in one or more segments but priority-filtered in all of them).

    PB405 requires shadowing in *every* applicable segment: a secondary
    rule that wins boundary segments while an interior rule wins the
    bulk — the paper's priority idiom — is not flagged.
    """
    ir = compiled.ir
    assumptions = ir.assumptions
    selected: Set[int] = set()
    for segment in compiled.grid.all_segments():
        for option in segment.options:
            selected.add(option.primary)
            if option.fallback is not None:
                selected.add(option.fallback)

    applicable_in: Dict[int, int] = {}
    shadowed_in: Dict[int, int] = {}
    for segment in compiled.grid.all_segments():
        candidates = []
        for rule in ir.rules:
            box = rule.applicable.get(segment.matrix)
            if box is None:
                continue
            if rule.is_instance_rule:
                fits = box.contains(segment.box, assumptions)
            else:
                fits = box.contains(segment.box, assumptions) and (
                    segment.box.contains(box, assumptions)
                )
            if fits:
                candidates.append(rule)
        if not candidates:
            continue
        min_priority = min(rule.priority for rule in candidates)
        for rule in candidates:
            applicable_in[rule.rule_id] = applicable_in.get(rule.rule_id, 0) + 1
            if rule.priority > min_priority:
                shadowed_in[rule.rule_id] = shadowed_in.get(rule.rule_id, 0) + 1

    diagnostics = []
    for rule in ir.rules:
        if rule.rule_id in selected:
            continue
        segments_seen = applicable_in.get(rule.rule_id, 0)
        if segments_seen and shadowed_in.get(rule.rule_id, 0) == segments_seen:
            diagnostics.append(
                Diagnostic(
                    code="PB405",
                    severity=WARNING,
                    message=(
                        f"rule is shadowed by higher-priority rules in all "
                        f"{segments_seen} segment(s) where it applies"
                    ),
                    transform=ir.name,
                    rule=rule.label,
                    line=rule.line,
                    column=rule.column,
                    hint=(
                        "lower the rule's priority value or remove it; it "
                        "can never be chosen"
                    ),
                    path=path,
                )
            )
        else:
            diagnostics.append(
                Diagnostic(
                    code="PB404",
                    severity=WARNING,
                    message="rule is never selectable in any segment",
                    transform=ir.name,
                    rule=rule.label,
                    line=rule.line,
                    column=rule.column,
                    hint=(
                        "its applicable region matches no segment (or it "
                        "needs an unrestricted fallback); adjust regions "
                        "or priorities"
                    ),
                    path=path,
                )
            )
    return diagnostics
