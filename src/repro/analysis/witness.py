"""Witness enumeration shared by the verifier passes.

The error-severity checks (bounds, races, coverage) are *witness-based*:
instead of proving properties over all sizes symbolically — where any
over-approximation would flag correct programs — they enumerate the
small size environments admitted by the transform's assumptions and
runtime guards, replay the engine's exact geometry (segment boxes,
instance ranges, residual-predicate fallbacks, region views) at each,
and report only violations that come with a concrete (sizes, instance)
witness.  Soundness follows by construction: every error names an input
size at which the runtime itself would fault or double-write; a
transform whose executions are well-behaved at the probed sizes is
never flagged.  The symbolic layer still does the admitting: assumption
ranges, choice-grid order guards, and per-rule size guards decide which
environments count, so guarded programs are not blamed for sizes they
already reject.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.language.interp import Scope, evaluate

SizeEnv = Dict[str, int]
Cell = Tuple[int, ...]


@dataclass(frozen=True)
class WitnessBudget:
    """How much concrete probing each pass may do per transform.

    ``max_size`` is the number of values probed per size variable above
    its assumed minimum; caps keep the sweep polynomial on multi-variable
    transforms.  Anything skipped for budget reasons is skipped silently
    only in the sense of "not checked" — budgets never produce findings.
    """

    max_size: int = 5
    max_envs: int = 48
    max_instances: int = 2048
    max_cells: int = 4096

    def per_var_span(self, num_vars: int) -> int:
        if num_vars <= 1:
            return self.max_size
        # Keep the env grid near max_envs: span^vars <= ~max_envs.
        span = int(self.max_envs ** (1.0 / num_vars))
        return max(1, min(self.max_size, span))


#: Default budget used by `repro check` and the pipeline hook.
DEFAULT_BUDGET = WitnessBudget()


def size_envs(compiled, budget: WitnessBudget = DEFAULT_BUDGET) -> List[SizeEnv]:
    """Admitted size environments, smallest total size first.

    Starts each variable at its assumed minimum (transform assumptions
    already include the choice grid's folded order guards) and filters
    out environments the engine would reject at run time via the grid's
    remaining order guards.
    """
    ir = compiled.ir
    variables = list(ir.size_vars)
    if not variables:
        return [{}]
    span = budget.per_var_span(len(variables))
    ranges: List[List[int]] = []
    for var in variables:
        lo, hi = ir.assumptions.range_of(var)
        start = 0 if lo is None else max(0, math.ceil(lo))
        stop = start + span
        if hi is not None:
            stop = min(stop, math.floor(hi))
        ranges.append(list(range(start, stop + 1)))
    combos = sorted(
        itertools.product(*ranges), key=lambda combo: (sum(combo), combo)
    )
    envs: List[SizeEnv] = []
    for combo in combos:
        env = dict(zip(variables, combo))
        if not order_guards_hold(compiled, env):
            continue
        envs.append(env)
        if len(envs) >= budget.max_envs:
            break
    return envs


def order_guards_hold(compiled, env: SizeEnv) -> bool:
    """Would the engine accept these sizes? (mirrors `_execute`)."""
    return all(
        guard.evaluate(env) >= 0 for guard in compiled.grid.order_guards
    )


def size_guards_hold(rule, env: SizeEnv) -> bool:
    """Would `_check_size_guards` accept this rule at these sizes?"""
    return all(guard.evaluate(env) >= 0 for guard in rule.size_guards)


def matrix_shape(compiled, matrix_name: str, env: SizeEnv) -> Tuple[int, ...]:
    """Concrete extents, exactly as the engine allocates them."""
    mat = compiled.ir.matrices[matrix_name]
    return tuple(dim.eval_floor(env) for dim in mat.dims)


def residual_ok(rule, env: Dict[str, int]) -> bool:
    """The engine's residual-where predicate (see `_residual_ok`)."""
    scope = Scope(dict(env))
    return all(
        float(evaluate(cond, scope)) != 0 for cond in rule.residual_where
    )


def instance_assignments(
    compiled,
    segment,
    rule,
    env: SizeEnv,
    budget: WitnessBudget = DEFAULT_BUDGET,
) -> Optional[List[Dict[str, int]]]:
    """Every instance assignment the engine would run for ``rule`` in
    ``segment`` at sizes ``env``; ``None`` when the space exceeds the
    budget or cannot be solved (skip, never report).

    Whole-region rules apply once: the result is ``[{}]``.
    """
    if not rule.is_instance_rule:
        return [{}]
    seg_bounds = segment.box.concrete(env)
    if any(hi <= lo for lo, hi in seg_bounds):
        return []
    try:
        ranges = compiled._instance_ranges(segment, rule, env, seg_bounds)
    except Exception:
        # Coupled output coordinates / undecidable clips: the engine would
        # fail the same way at run time; not a bounds/coverage finding.
        return None
    volume = 1
    for var in rule.rule_vars:
        lo, hi = ranges[var]
        volume *= max(0, hi - lo)
        if volume > budget.max_instances:
            return None
    assignments = []
    for values in itertools.product(
        *(range(*ranges[var]) for var in rule.rule_vars)
    ):
        assignments.append(dict(zip(rule.rule_vars, values)))
    return assignments


def region_cells(
    bounds: Sequence[Tuple[int, int]],
    budget: WitnessBudget = DEFAULT_BUDGET,
) -> Optional[List[Cell]]:
    """All cells of a concrete box; ``None`` when over budget."""
    volume = 1
    for lo, hi in bounds:
        volume *= max(0, hi - lo)
        if volume > budget.max_cells:
            return None
    return list(itertools.product(*(range(lo, hi) for lo, hi in bounds)))


def describe_env(env: SizeEnv, assignment: Optional[Dict[str, int]] = None) -> str:
    """Human-readable witness: ``n=4, i=2``."""
    parts = [f"{var}={value}" for var, value in sorted(env.items())]
    if assignment:
        parts.extend(f"{var}={value}" for var, value in sorted(assignment.items()))
    return ", ".join(parts) if parts else "(no sizes)"


def describe_bounds(name: str, bounds: Sequence[Tuple[int, int]]) -> str:
    """Human-readable concrete box: ``A[2:4, 0:1]``."""
    if not bounds:
        return f"{name}[scalar]"
    inner = ", ".join(f"{lo}:{hi}" for lo, hi in bounds)
    return f"{name}[{inner}]"


def iter_segment_options(compiled) -> Iterator[Tuple[object, object]]:
    """(segment, option) pairs across all grids of a compiled transform."""
    for segment in compiled.grid.all_segments():
        for option in segment.options:
            yield segment, option
