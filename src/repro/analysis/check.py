"""Verifier driver: run every pass, collect one report, serve the CLI.

Entry points, lowest to highest level:

* :func:`analyze_transform` — the four pass families over one compiled
  transform.
* :func:`analyze_program` — every transform of a compiled program.
* :func:`check_source` — compile DSL text (pipeline analysis disabled —
  this driver *is* the analysis) and analyze; compile failures become
  error diagnostics instead of exceptions.
* :func:`check_file` — dispatch on extension: DSL files are checked as
  source; ``.py`` files are imported and their ``build_program()``
  and/or module-level DSL string constants are checked.
* :func:`run_check` — the ``repro check`` subcommand body.

Diagnostic counts are mirrored into a :class:`repro.observe.TraceSink`
when one is passed: ``analysis.diagnostics.<CODE>`` per code plus the
``analysis.errors`` / ``analysis.warnings`` / ``analysis.infos`` totals.
"""

from __future__ import annotations

import importlib.util
import re
import sys
from typing import List, Optional

from repro.analysis.bounds import check_bounds
from repro.analysis.coverage import check_coverage
from repro.analysis.depend import check_depend
from repro.analysis.diagnostics import (
    AnalysisReport,
    Diagnostic,
    default_severity,
)
from repro.analysis.leafpaths import check_leaf_paths
from repro.analysis.lints import check_lints
from repro.analysis.races import check_races
from repro.analysis.witness import WitnessBudget, DEFAULT_BUDGET
from repro.language.errors import PetaBricksError


def analyze_transform(
    compiled,
    budget: WitnessBudget = DEFAULT_BUDGET,
    path: str = "",
    errors_only: bool = False,
) -> List[Diagnostic]:
    """All four pass families over one compiled transform."""
    diagnostics = []
    diagnostics.extend(check_bounds(compiled, budget, path))
    diagnostics.extend(check_races(compiled, budget, path))
    diagnostics.extend(check_coverage(compiled, budget, path))
    if not errors_only:
        diagnostics.extend(check_lints(compiled, budget, path))
        diagnostics.extend(check_leaf_paths(compiled, budget, path))
        diagnostics.extend(check_depend(compiled, budget, path))
    if errors_only:
        diagnostics = [d for d in diagnostics if d.is_error]
    return diagnostics


def analyze_program(
    program,
    budget: WitnessBudget = DEFAULT_BUDGET,
    path: str = "",
    errors_only: bool = False,
) -> AnalysisReport:
    report = AnalysisReport()
    for name in sorted(program.transforms):
        report.extend(
            analyze_transform(
                program.transforms[name], budget, path, errors_only
            )
        )
    return report


def diagnostic_from_error(exc: PetaBricksError, path: str = "") -> Diagnostic:
    """A compile failure as a diagnostic (code PB001 when untagged)."""
    code = exc.code or "PB001"
    return Diagnostic(
        code=code,
        severity=default_severity(code),
        message=exc.message,
        line=exc.line,
        column=exc.column,
        hint=exc.hint or "",
        path=path,
    )


def check_source(
    source: str,
    path: str = "",
    budget: WitnessBudget = DEFAULT_BUDGET,
) -> AnalysisReport:
    """Compile DSL text and run every pass; never raises on bad input."""
    from repro.compiler.codegen import compile_program

    try:
        program = compile_program(source, analyze=False)
    except PetaBricksError as exc:
        return AnalysisReport([diagnostic_from_error(exc, path)])
    return analyze_program(program, budget, path)


#: A module-level string constant is treated as DSL when it opens with a
#: transform declaration.
_DSL_RE = re.compile(r"^\s*transform\s+\w+", re.MULTILINE)


def check_python_module(
    path: str, budget: WitnessBudget = DEFAULT_BUDGET
) -> AnalysisReport:
    """Import a ``.py`` file and check the transforms it defines.

    Checks ``build_program()`` when the module exports one, and any
    module-level string constant that parses as transform source (e.g.
    ``rollingsum.SOURCE``).  Bundled apps and examples all guard their
    entry points with ``__main__``, so importing them is side-effect
    free.
    """
    report = AnalysisReport()
    spec = importlib.util.spec_from_file_location(
        f"_repro_check_{abs(hash(path))}", path
    )
    if spec is None or spec.loader is None:
        report.add(
            Diagnostic(
                code="PB001",
                severity="error",
                message=f"cannot import {path}",
                path=path,
            )
        )
        return report
    module = importlib.util.module_from_spec(spec)
    try:
        spec.loader.exec_module(module)
    except Exception as exc:  # import errors are check failures, not crashes
        report.add(
            Diagnostic(
                code="PB001",
                severity="error",
                message=f"import failed: {exc}",
                path=path,
            )
        )
        return report

    checked_sources = set()
    builder = getattr(module, "build_program", None)
    if callable(builder):
        try:
            program = builder()
        except PetaBricksError as exc:
            report.add(diagnostic_from_error(exc, path))
            program = None
        if program is not None:
            report.extend(analyze_program(program, budget, path))
    for name in sorted(vars(module)):
        value = getattr(module, name)
        if (
            isinstance(value, str)
            and _DSL_RE.search(value)
            and value not in checked_sources
        ):
            checked_sources.add(value)
            report.extend(check_source(value, path, budget))
    if builder is not None and checked_sources:
        # build_program() modules usually compile the same constant; drop
        # exact duplicate findings from the double-check.
        unique = {}
        for diag in report.diagnostics:
            unique.setdefault(diag, diag)
        report.diagnostics = list(unique.values())
    return report


def check_file(path: str, budget: WitnessBudget = DEFAULT_BUDGET) -> AnalysisReport:
    if path.endswith(".py"):
        return check_python_module(path, budget)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        return AnalysisReport(
            [
                Diagnostic(
                    code="PB001",
                    severity="error",
                    message=str(exc),
                    path=path,
                )
            ]
        )
    return check_source(source, path, budget)


def record_report(report: AnalysisReport, sink) -> None:
    """Mirror diagnostic counts into a TraceSink's counters."""
    if sink is None:
        return
    for code, count in report.counts_by_code().items():
        sink.count(f"analysis.diagnostics.{code}", count)
    sink.count("analysis.errors", len(report.errors))
    sink.count("analysis.warnings", len(report.warnings))
    sink.count("analysis.infos", len(report.infos))


def run_check(
    paths: List[str],
    fmt: str = "text",
    strict: bool = False,
    budget: WitnessBudget = DEFAULT_BUDGET,
    sink=None,
    out=None,
) -> int:
    """The ``repro check`` subcommand: check files, print, exit-code."""
    out = out if out is not None else sys.stdout
    report = AnalysisReport()
    seen = set()
    for path in paths:
        for diag in check_file(path, budget).diagnostics:
            # Multi-file runs can visit one file twice (repeated argument,
            # module re-export): identical findings collapse to one, and
            # the report order is the diagnostics' stable sort regardless
            # of the argument order.
            if diag in seen:
                continue
            seen.add(diag)
            report.add(diag)
    record_report(report, sink)
    if fmt == "json":
        print(report.to_json(), file=out)
    else:
        for diag in report:
            print(diag.format(), file=out)
        print(f"repro check: {report.summary_line()}", file=out)
    return report.exit_code(strict=strict)
