"""Write-write race detector (pass family 2: PB201, PB202, PB203).

The §3.6 scheduler may run every instance of a segment's chosen option
concurrently, so within one (segment, option) the instance applications
must write pairwise-disjoint cells; different segments of one matrix are
likewise independently schedulable and must not overlap.  The detector
replays the engine's geometry per admitted size environment and records
the first writer of every cell:

* PB201 — two *instances* of the same rule write one cell (the rule's
  to-region strides/offsets collide across the instance space).
* PB202 — two to-bindings of a *single application* overlap (the rule
  hands the body two aliased writable views).
* PB203 — two *different* writers overlap: primary vs fallback of a
  meta-rule at different instances, or two segments of the same matrix
  whose concrete boxes intersect.

PB204 (deadlock cycle) and PB205 (no iteration order) belong to this
family but are raised during compilation by `repro.compiler.depgraph`;
the check driver converts those CompileErrors into diagnostics.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, ERROR
from repro.analysis.witness import (
    Cell,
    WitnessBudget,
    DEFAULT_BUDGET,
    describe_bounds,
    describe_env,
    instance_assignments,
    region_cells,
    residual_ok,
    size_envs,
    size_guards_hold,
)


def check_races(
    compiled, budget: WitnessBudget = DEFAULT_BUDGET, path: str = ""
) -> List[Diagnostic]:
    ir = compiled.ir
    envs = size_envs(compiled, budget)
    diagnostics: List[Diagnostic] = []
    seen: Set[Tuple] = set()

    def emit(code: str, key: Tuple, message: str, rule, hint: str, witness: str) -> None:
        if key in seen:
            return
        seen.add(key)
        diagnostics.append(
            Diagnostic(
                code=code,
                severity=ERROR,
                message=message,
                transform=ir.name,
                rule=rule.label,
                line=rule.line,
                column=rule.column,
                hint=hint,
                witness=witness,
                path=path,
            )
        )

    for segment in compiled.grid.all_segments():
        for option in segment.options:
            for env in envs:
                _check_option_writes(
                    compiled, segment, option, env, budget, emit
                )

    diagnostics.extend(_cross_segment_overlaps(compiled, envs, path, seen))
    return diagnostics


def _applications(compiled, segment, option, env, budget):
    """(rule, instance_env, assignment) triples the engine would run for
    this option, or None when the instance space exceeds the budget."""
    ir = compiled.ir
    rule = ir.rules[option.primary]
    fallback = ir.rules[option.fallback] if option.fallback is not None else None
    if not size_guards_hold(rule, env):
        return []
    assignments = instance_assignments(compiled, segment, rule, env, budget)
    if assignments is None:
        return None
    apps = []
    for assignment in assignments:
        instance_env = dict(env)
        instance_env.update(assignment)
        chosen = rule
        if rule.residual_where and not residual_ok(rule, instance_env):
            if fallback is None or not size_guards_hold(fallback, env):
                continue
            chosen = fallback
        apps.append((chosen, instance_env, assignment))
    return apps


def _check_option_writes(compiled, segment, option, env, budget, emit) -> None:
    apps = _applications(compiled, segment, option, env, budget)
    if not apps:
        return
    # cell -> (rule, assignment) of its first writer, per matrix
    writers: Dict[str, Dict[Cell, Tuple]] = {}
    for chosen, instance_env, assignment in apps:
        app_cells: Dict[str, Set[Cell]] = {}
        for region in chosen.to_regions:
            bounds = region.box.concrete(instance_env)
            cells = region_cells(bounds, budget)
            if cells is None:
                return  # over budget: skip this option/env entirely
            mine = app_cells.setdefault(region.matrix, set())
            for cell in cells:
                if cell in mine:
                    emit(
                        "PB202",
                        ("PB202", chosen.rule_id, region.matrix),
                        f"to-bindings of one application alias cell "
                        f"{describe_bounds(region.matrix, [(c, c + 1) for c in cell])}",
                        chosen,
                        "split the rule so each application writes each "
                        "cell through a single binding",
                        describe_env(env, assignment),
                    )
                    break
                mine.add(cell)
        for matrix, cells in app_cells.items():
            first = writers.setdefault(matrix, {})
            for cell in cells:
                prior = first.get(cell)
                if prior is None:
                    first[cell] = (chosen, assignment)
                    continue
                prior_rule, prior_assignment = prior
                where = describe_bounds(
                    matrix, [(c, c + 1) for c in cell]
                )
                if prior_rule.rule_id == chosen.rule_id:
                    emit(
                        "PB201",
                        ("PB201", chosen.rule_id, matrix),
                        f"instances {describe_env({}, prior_assignment)} and "
                        f"{describe_env({}, assignment)} both write {where}",
                        chosen,
                        "make the to-region stride cover each cell exactly "
                        "once per instance",
                        describe_env(env, assignment),
                    )
                else:
                    emit(
                        "PB203",
                        ("PB203", prior_rule.rule_id, chosen.rule_id, matrix),
                        f"concurrent writers {prior_rule.label} and "
                        f"{chosen.label} both write {where}",
                        chosen,
                        "restrict one writer's region or give the rules "
                        "different priorities",
                        describe_env(env, assignment),
                    )


def _cross_segment_overlaps(
    compiled, envs, path: str, seen: Set[Tuple]
) -> List[Diagnostic]:
    """PB203 for two segments of one matrix whose concrete boxes overlap
    (the grid should partition each matrix; overlap means two segment
    schedules would write the same cells)."""
    ir = compiled.ir
    diagnostics: List[Diagnostic] = []
    for matrix, segments in compiled.grid.segments.items():
        for env in envs:
            boxes = [
                (seg, seg.box.concrete(env)) for seg in segments
            ]
            for i, (seg_a, box_a) in enumerate(boxes):
                for seg_b, box_b in boxes[i + 1 :]:
                    if _boxes_overlap(box_a, box_b):
                        key = ("PB203-seg", matrix, seg_a.index, seg_b.index)
                        if key in seen:
                            continue
                        seen.add(key)
                        mat = ir.matrices[matrix]
                        diagnostics.append(
                            Diagnostic(
                                code="PB203",
                                severity=ERROR,
                                message=(
                                    f"segments {seg_a.key} "
                                    f"{describe_bounds(matrix, box_a)} and "
                                    f"{seg_b.key} "
                                    f"{describe_bounds(matrix, box_b)} overlap"
                                ),
                                transform=ir.name,
                                line=mat.line or ir.line,
                                column=mat.column or ir.column,
                                hint=(
                                    "segment boundaries are mis-ordered at "
                                    "these sizes; an ordering guard is missing"
                                ),
                                witness=describe_env(env),
                                path=path,
                            )
                        )
    return diagnostics


def _boxes_overlap(
    box_a: Tuple[Tuple[int, int], ...], box_b: Tuple[Tuple[int, int], ...]
) -> bool:
    if not box_a or not box_b:
        return False  # 0-D scalar segments never coexist in one matrix
    for (lo_a, hi_a), (lo_b, hi_b) in zip(box_a, box_b):
        if min(hi_a, hi_b) <= max(lo_a, lo_b):
            return False
    return True


def vector_leaf_status(
    compiled, segment, rule, has_fallback: bool = False
) -> Tuple[bool, str]:
    """Whether the engine may run ``rule`` at ``segment`` through the
    vectorized leaf path, and the rejection reason when it may not.

    The legality argument is this pass's own: the dependency analysis
    assigns direction 0 exactly to the instance variables whose instances
    carry no cross-instance dependence (and the race passes above check
    their writes are disjoint), so a whole data-parallel step may execute
    as one slice expression.  Wraps the engine's cached planner — the
    same decision the executor makes at run time, so the PB501/PB502
    diagnostics can never disagree with actual behavior.
    """
    try:
        plan, reason = compiled._vector_plan(segment, rule, has_fallback)
    except Exception as error:  # direction analysis may itself fail
        return False, str(error)
    if plan is not None:
        return True, ""
    return False, reason
