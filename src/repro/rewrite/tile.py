"""Legality-gated loop tiling (the scheduling layer's second axis).

Fusion (:mod:`repro.rewrite.fuse`) changes *what* the rules compute
over; tiling changes *how their iteration space is walked*.  A
PB604-legal site — an instance rule with at least one sequential chain
variable and one data-parallel free variable whose cross-instance
dependences never point against the blocked order — may have its free
variables blocked into fixed-size tiles without changing any value the
program produces.  The rewrite is purely an annotation: it attaches a
:class:`~repro.compiler.ir.ScheduleIR` to the rule, which the engine's
vector leaf path lowers to cache-blocked NumPy execution and which the
``__tile_i__``/``__tile_j__`` tunables can override at run time.

Like every rewrite in this package the gate is the static dependence
analyzer: :func:`apply_tiling` refuses candidates the analyzer did not
prove (PB605 sites carry a replay-validated witness showing a concrete
instance pair the blocked order would reorder).
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Mapping, Tuple, Union

from repro.analysis.depend import ScheduleCandidate, schedule_candidates
from repro.analysis.witness import WitnessBudget
from repro.compiler.ir import ScheduleIR, TransformIR
from repro.rewrite.fuse import REWRITE_BUDGET

__all__ = [
    "ScheduleError",
    "annotate_schedule",
    "apply_tiling",
    "tile_transform",
]

#: Default tile edge when the caller does not pick one: big enough to
#: amortize per-tile step cost, small enough that a 2D float64 tile
#: (32 * 32 * 8 = 8 KiB) stays deep inside L1.
DEFAULT_TILE = 32

Sizes = Union[int, Mapping[str, int]]


class ScheduleError(Exception):
    """A schedule rewrite was attempted on a candidate the analyzer
    did not prove (or with unusable tile sizes)."""


def _tile_pairs(
    candidate: ScheduleCandidate, sizes: Sizes
) -> Tuple[Tuple[str, int], ...]:
    """``(var, size)`` pairs in free-variable order, validated."""
    pairs: List[Tuple[str, int]] = []
    for var in candidate.free_vars:
        if isinstance(sizes, int):
            size = sizes
        elif var in sizes:
            size = int(sizes[var])
        else:
            continue
        if size < 1:
            raise ScheduleError(
                f"tile size for {var} must be >= 1, got {size}"
            )
        pairs.append((var, size))
    if not pairs:
        raise ScheduleError(
            f"no tile sizes for any free variable of {candidate.rule} "
            f"(free: {', '.join(candidate.free_vars)})"
        )
    return tuple(pairs)


def annotate_schedule(
    ir: TransformIR,
    rule_id: int,
    *,
    tile: Tuple[Tuple[str, int], ...] = None,
    interchange: bool = None,
) -> TransformIR:
    """``ir`` with the schedule annotation of one rule merged in.

    ``None`` fields keep whatever the rule already declares, so tiling
    and interchange compose in either order.  Every rule is rebuilt
    with cleared analysis fields (the applicable-regions pass re-runs
    when the new IR is compiled), mirroring :func:`apply_fusion`.
    """
    new_rules = []
    for rule in ir.rules:
        if rule.rule_id == rule_id:
            old = rule.schedule
            merged = ScheduleIR(
                tile=(
                    tile
                    if tile is not None
                    else (old.tile if old is not None else ())
                ),
                interchange=(
                    interchange
                    if interchange is not None
                    else (old.interchange if old is not None else False)
                ),
            )
            rule = replace(rule, schedule=merged)
        new_rules.append(
            replace(
                rule,
                applicable={},
                var_bounds={},
                residual_where=(),
                size_guards=(),
            )
        )
    return replace(ir, rules=new_rules)


def apply_tiling(
    ir: TransformIR,
    candidate: ScheduleCandidate,
    sizes: Sizes = DEFAULT_TILE,
) -> TransformIR:
    """The tiled transform IR for one PB604-legal candidate.

    ``sizes`` is either one edge length for every free variable or a
    ``{var: size}`` mapping (variables it omits stay untiled).  Purely
    structural — callers re-verify through the compile pipeline before
    executing the result.
    """
    if candidate.status != "legal":
        raise ScheduleError(
            f"schedule candidate {candidate.segment}/{candidate.rule} is "
            f"{candidate.status}, not legal"
            + (f": {candidate.reason}" if candidate.reason else "")
        )
    return annotate_schedule(
        ir, candidate.rule_id, tile=_tile_pairs(candidate, sizes)
    )


def tile_transform(
    compiled,
    sizes: Sizes = DEFAULT_TILE,
    budget: WitnessBudget = REWRITE_BUDGET,
) -> Tuple[object, List[ScheduleCandidate]]:
    """Tile every PB604-legal site of a compiled transform.

    Returns the recompiled transform (the input itself when no site is
    legal) and the candidates that were applied.
    """
    from repro.compiler.codegen import CompiledTransform

    legal = [
        cand
        for cand in schedule_candidates(compiled, budget)
        if cand.status == "legal"
    ]
    applied: List[ScheduleCandidate] = []
    seen_rules = set()
    ir = compiled.ir
    for cand in legal:
        if cand.rule_id in seen_rules:
            continue
        seen_rules.add(cand.rule_id)
        ir = apply_tiling(ir, cand, sizes)
        applied.append(cand)
    if not applied:
        return compiled, []
    return CompiledTransform(ir, compiled.program), applied
