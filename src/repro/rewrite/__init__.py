"""Legality-gated IR-to-IR rewrites (the scheduling layer's first axis).

Every rewrite here is *verified*: it may only be applied when the
static dependence analyzer (:mod:`repro.analysis.depend`) proves it
legal (PB601 for fusion, PB604 for tiling/interchange), and the
rewritten IR is re-checked by the full error-severity verifier before
the engine will run it.  The rewrites compose — fuse-then-tile blocks
the fused rule's iteration space — and each is exposed to the genetic
tuner as a reserved tunable (``__fuse__``, ``__tile_i__``/
``__tile_j__``, ``__interchange__``) and to the CLI as
``repro rewrite``.
"""

from repro.rewrite.fuse import (
    FusionError,
    REWRITE_BUDGET,
    apply_fusion,
    build_fused_variant,
    fuse_transform,
)
from repro.rewrite.interchange import (
    apply_interchange,
    interchange_transform,
)
from repro.rewrite.tile import (
    DEFAULT_TILE,
    ScheduleError,
    annotate_schedule,
    apply_tiling,
    tile_transform,
)
from repro.rewrite.unparse import (
    UnparseError,
    affine_src,
    expr_src,
    program_src,
    region_src,
    rule_src,
    transform_src,
)

__all__ = [
    "DEFAULT_TILE",
    "FusionError",
    "REWRITE_BUDGET",
    "ScheduleError",
    "UnparseError",
    "affine_src",
    "annotate_schedule",
    "apply_fusion",
    "apply_interchange",
    "apply_tiling",
    "build_fused_variant",
    "expr_src",
    "fuse_transform",
    "interchange_transform",
    "program_src",
    "region_src",
    "rule_src",
    "tile_transform",
    "transform_src",
]
