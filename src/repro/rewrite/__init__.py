"""Legality-gated IR-to-IR rewrites (the scheduling layer's first axis).

Every rewrite here is *verified*: it may only be applied when the
static dependence analyzer (:mod:`repro.analysis.depend`) proves it
legal (PB601), and the rewritten IR is re-checked by the full
error-severity verifier before the engine will run it.  The first
rewrite is producer→consumer fusion of adjacent elementwise rules
(:mod:`repro.rewrite.fuse`), exposed to the genetic tuner as the
reserved ``__fuse__`` tunable and to the CLI as ``repro rewrite``.
"""

from repro.rewrite.fuse import (
    FusionError,
    REWRITE_BUDGET,
    apply_fusion,
    build_fused_variant,
    fuse_transform,
)
from repro.rewrite.unparse import (
    UnparseError,
    affine_src,
    expr_src,
    program_src,
    region_src,
    rule_src,
    transform_src,
)

__all__ = [
    "FusionError",
    "REWRITE_BUDGET",
    "UnparseError",
    "affine_src",
    "apply_fusion",
    "build_fused_variant",
    "expr_src",
    "fuse_transform",
    "program_src",
    "region_src",
    "rule_src",
    "transform_src",
]
