"""Legality-gated loop interchange (the scheduling layer's third axis).

A PB604-legal site iterates a sequential chain (time steps, pipeline
stages, reduction depth) over a data-parallel tile space.  The default
order walks the chain outermost — every tile is touched at every chain
step, so a working set larger than cache is streamed through it once
per step.  Interchange flips the nest: each tile runs the *entire*
chain while it is cache-hot, which is exactly the permutation the
paper's generated code would pick for a cache-blocked schedule.

Legality is the same PB604 condition as tiling — with every
tile-crossing dependence component pointing along the blocked order,
any consistent product order over (chain, tile) coordinates preserves
every dependence, so the two factors commute.  :func:`apply_interchange`
therefore shares the analyzer gate (and the annotation plumbing) with
:mod:`repro.rewrite.tile`; the engine honors the annotation only on
sites it independently re-proves, and the ``__interchange__`` tunable
can override it either way at run time.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.analysis.depend import ScheduleCandidate, schedule_candidates
from repro.analysis.witness import WitnessBudget
from repro.compiler.ir import TransformIR
from repro.rewrite.fuse import REWRITE_BUDGET
from repro.rewrite.tile import ScheduleError, annotate_schedule

__all__ = [
    "apply_interchange",
    "interchange_transform",
]


def apply_interchange(
    ir: TransformIR, candidate: ScheduleCandidate
) -> TransformIR:
    """The interchanged transform IR for one PB604-legal candidate.

    Purely structural — callers re-verify through the compile pipeline
    before executing the result.
    """
    if candidate.status != "legal":
        raise ScheduleError(
            f"schedule candidate {candidate.segment}/{candidate.rule} is "
            f"{candidate.status}, not legal"
            + (f": {candidate.reason}" if candidate.reason else "")
        )
    return annotate_schedule(ir, candidate.rule_id, interchange=True)


def interchange_transform(
    compiled, budget: WitnessBudget = REWRITE_BUDGET
) -> Tuple[object, List[ScheduleCandidate]]:
    """Interchange every PB604-legal site of a compiled transform.

    Returns the recompiled transform (the input itself when no site is
    legal) and the candidates that were applied.  Interchange without
    tiles is inert at run time (there is nothing to hoist), so this is
    typically composed after :func:`repro.rewrite.tile.tile_transform`
    — annotations merge, they do not overwrite.
    """
    from repro.compiler.codegen import CompiledTransform

    legal = [
        cand
        for cand in schedule_candidates(compiled, budget)
        if cand.status == "legal"
    ]
    applied: List[ScheduleCandidate] = []
    seen_rules = set()
    ir = compiled.ir
    for cand in legal:
        if cand.rule_id in seen_rules:
            continue
        seen_rules.add(cand.rule_id)
        ir = apply_interchange(ir, cand)
        applied.append(cand)
    if not applied:
        return compiled, []
    return CompiledTransform(ir, compiled.program), applied
