"""Producer→consumer fusion: the first verified IR-to-IR rewrite.

The rewrite eliminates a ``through`` matrix the dependence analyzer
(:mod:`repro.analysis.depend`) proved fusion-legal (PB601): the
producer is a pure elementwise step writing ``T.cell(v1, .., vk)``
identity-mapped over its instance variables, so for every consumer read
``T.cell(e1, .., ek)`` the value is exactly the producer's body
expression under the substitution ``σ = {v_d ↦ e_d}``.  Fusion inlines
that expression into the consumer's body, re-binds the producer's
from-regions at the σ-shifted coordinates, and drops the producer rule
and the intermediate matrix — one traversal instead of two, no
intermediate allocation, and directly one vector step when the fused
rule stays vector-eligible.

Bit-exactness argument: the fused body performs the producer's exact
operation sequence on the producer's exact operands (cell reads at the
same matrix coordinates the unfused run used, per σ), feeding the
consumer's exact operation sequence; float64 store/load through the
eliminated intermediate is an identity, so every output cell sees the
same IEEE operations in the same order.  The legality gate already
rules out everything that could perturb this (where-clauses, rule-var
arithmetic in the body, calls outside the vector-stable set, region
views).  Defense in depth: :func:`build_fused_variant` re-runs the
error-severity verifier passes (bounds, races, coverage) on the fused
IR and refuses the variant on any finding, and the hypothesis
differential suite (``tests/test_rewrite_diff.py``) asserts fused ≡
unfused bit-for-bit across all three leaf paths.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.depend import FusionCandidate, fusion_candidates
from repro.analysis.witness import WitnessBudget
from repro.compiler.ir import TransformIR
from repro.language import ast_nodes as ast

__all__ = [
    "FusionError",
    "REWRITE_BUDGET",
    "apply_fusion",
    "fuse_transform",
    "build_fused_variant",
]

#: Probing budget for fusion planning and post-rewrite verification —
#: deeper than the compile-time hook (more sizes per variable) because a
#: rewrite only happens once per transform and must not slip through on
#: a witness the default grid would miss.
REWRITE_BUDGET = WitnessBudget(
    max_size=3, max_envs=8, max_instances=512, max_cells=1024
)


class FusionError(Exception):
    """Fusion was attempted on a candidate the analyzer did not prove."""


def _map_expr(node: ast.ExprNode, fn: Callable) -> ast.ExprNode:
    """Structurally rebuild ``node`` with every Var passed through ``fn``."""
    if isinstance(node, ast.Var):
        return fn(node)
    if isinstance(node, ast.BinOp):
        return replace(
            node,
            left=_map_expr(node.left, fn),
            right=_map_expr(node.right, fn),
        )
    if isinstance(node, ast.UnaryOp):
        return replace(node, operand=_map_expr(node.operand, fn))
    if isinstance(node, ast.Call):
        return replace(
            node, args=tuple(_map_expr(arg, fn) for arg in node.args)
        )
    if isinstance(node, ast.CellAccess):
        return replace(
            node, args=tuple(_map_expr(arg, fn) for arg in node.args)
        )
    if isinstance(node, ast.Ternary):
        return replace(
            node,
            cond=_map_expr(node.cond, fn),
            if_true=_map_expr(node.if_true, fn),
            if_false=_map_expr(node.if_false, fn),
        )
    return node


def _body_names(body) -> set:
    names: List[str] = []
    for stmt in body:
        stmt.target._collect_names(names)
        stmt.value._collect_names(names)
    return set(names)


def _fresh_name(base: str, used) -> str:
    if base not in used:
        return base
    suffix = 2
    while f"{base}_{suffix}" in used:
        suffix += 1
    return f"{base}_{suffix}"


def apply_fusion(ir: TransformIR, candidate: FusionCandidate) -> TransformIR:
    """The fused transform IR for one PB601-legal candidate.

    Purely structural — no verification here; callers go through
    :func:`build_fused_variant` (or re-verify themselves) before
    executing the result.
    """
    if candidate.status != "legal":
        raise FusionError(
            f"candidate over {candidate.matrix} is {candidate.status}, "
            f"not legal"
        )
    producer = ir.rules[candidate.producer_id]
    consumer = ir.rules[candidate.consumer_id]
    name = candidate.matrix

    # Identity write map: producer's d-th instance variable indexes the
    # d-th dimension (the legality gate proved this).
    axis_vars = [
        interval.lo.variables()[0]
        for interval in producer.to_regions[0].box.intervals
    ]

    used = {reg.bind_name for reg in consumer.to_regions}
    used |= {
        reg.bind_name
        for reg in consumer.from_regions
        if reg.matrix != name
    }
    used |= _body_names(consumer.body)

    new_from = []
    inline: Dict[str, ast.ExprNode] = {}
    for region in consumer.from_regions:
        if region.matrix != name:
            new_from.append(region)
            continue
        # σ maps the producer's instance variables to this read's
        # coordinates (affine over the consumer's variables and sizes).
        sigma = {
            var: interval.lo
            for var, interval in zip(axis_vars, region.box.intervals)
        }
        rename: Dict[str, str] = {}
        for pregion in producer.from_regions:
            fresh = _fresh_name(pregion.bind_name, used)
            used.add(fresh)
            rename[pregion.bind_name] = fresh
            new_from.append(
                replace(
                    pregion,
                    box=pregion.box.subs(sigma),
                    bind_name=fresh,
                )
            )
        inline[region.bind_name] = _map_expr(
            producer.body[0].value,
            lambda var, rename=rename: (
                replace(var, name=rename[var.name])
                if var.name in rename
                else var
            ),
        )

    new_body = tuple(
        replace(
            stmt,
            value=_map_expr(
                stmt.value, lambda var: inline.get(var.name, var)
            ),
        )
        for stmt in consumer.body
    )

    fused = replace(
        consumer,
        label=f"{consumer.label}+{producer.label}",
        from_regions=tuple(new_from),
        body=new_body,
        base_work=consumer.base_work + producer.base_work,
    )

    new_rules = []
    for rule in ir.rules:
        if rule.rule_id == producer.rule_id:
            continue
        chosen = fused if rule.rule_id == consumer.rule_id else rule
        # Fresh copies with renumbered ids and cleared analysis fields:
        # compiling the fused IR re-runs the applicable-regions pass.
        new_rules.append(
            replace(
                chosen,
                rule_id=len(new_rules),
                applicable={},
                var_bounds={},
                residual_where=(),
                size_guards=(),
            )
        )
    new_matrices = {
        mat_name: mat
        for mat_name, mat in ir.matrices.items()
        if mat_name != name
    }
    return replace(ir, matrices=new_matrices, rules=new_rules)


def fuse_transform(
    compiled, budget: WitnessBudget = REWRITE_BUDGET
) -> Tuple[object, List[FusionCandidate]]:
    """Apply every legal fusion, re-planning after each (chains of
    intermediates fuse end-to-end).  Returns the final compiled
    transform (the input itself when nothing fused) and the applied
    candidates in order."""
    from repro.compiler.codegen import CompiledTransform

    current = compiled
    applied: List[FusionCandidate] = []
    for _ in range(max(1, len(compiled.ir.matrices))):
        legal = [
            cand
            for cand in fusion_candidates(current, budget)
            if cand.status == "legal"
        ]
        if not legal:
            break
        new_ir = apply_fusion(current.ir, legal[0])
        current = CompiledTransform(new_ir, compiled.program)
        applied.append(legal[0])
    return current, applied


def build_fused_variant(
    compiled, budget: WitnessBudget = REWRITE_BUDGET
) -> Optional[object]:
    """The verified fused variant of a compiled transform, or ``None``.

    ``None`` means "run unfused": no legal candidate, a compile failure
    on the fused IR, or — defense in depth — any error-severity finding
    when the full bounds/races/coverage verifier re-runs on the
    rewritten IR.  Never raises."""
    from repro.analysis.check import analyze_transform
    from repro.language.errors import PetaBricksError

    try:
        variant, applied = fuse_transform(compiled, budget)
        if not applied:
            return None
        if analyze_transform(variant, budget, errors_only=True):
            return None
    except (PetaBricksError, FusionError):
        return None
    # A fused variant never re-fuses (or re-plans) itself.
    variant._fused = None
    return variant
