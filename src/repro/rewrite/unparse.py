"""Emit DSL source from transform IR.

``repro rewrite --apply`` hands back a *program*, not an opaque blob:
the fused IR is rendered as PetaBricks DSL text that round-trips
through the parser into an equivalent transform, so the rewritten
source can be checked, tuned, and served like any hand-written one.

Only parser-built transforms unparse: rules with native (Python)
bodies have no source form and raise :class:`UnparseError`.  Versioned
matrices (``U<0..k>[n]``) were desugared to a leading dimension during
IR building and are emitted in that desugared form — the rules already
index the leading dimension directly, so the program is unchanged.
"""

from __future__ import annotations

from typing import Sequence

from repro.compiler.ir import MatrixIR, RegionIR, RuleIR, TransformIR
from repro.language import ast_nodes as ast
from repro.symbolic.expr import Affine, AffineLike

__all__ = [
    "UnparseError",
    "affine_src",
    "expr_src",
    "region_src",
    "rule_src",
    "transform_src",
    "program_src",
]


class UnparseError(Exception):
    """The IR has no DSL source form (native body, unknown node)."""


def affine_src(expr: AffineLike) -> str:
    """An affine expression as DSL/parser source, e.g. ``2 * i - n + 1``."""
    expr = Affine.coerce(expr)
    parts = []
    for var in sorted(expr.coefficients):
        coeff = expr.coefficients[var]
        if coeff == 0:
            continue
        if coeff == 1:
            parts.append(var)
        elif coeff == -1:
            parts.append(f"-{var}")
        elif coeff.denominator == 1:
            parts.append(f"{coeff.numerator} * {var}")
        else:
            parts.append(f"{coeff.numerator} * {var} / {coeff.denominator}")
    const = expr.constant
    if const != 0 or not parts:
        if const.denominator == 1:
            parts.append(str(const.numerator))
        else:
            parts.append(f"{const.numerator} / {const.denominator}")
    return " + ".join(parts).replace("+ -", "- ")


def expr_src(node: ast.ExprNode) -> str:
    """A rule-body expression as source (fully parenthesized)."""
    if isinstance(node, ast.Num):
        return repr(node.value)
    if isinstance(node, ast.Var):
        return node.name
    if isinstance(node, ast.BinOp):
        return f"({expr_src(node.left)} {node.op} {expr_src(node.right)})"
    if isinstance(node, ast.UnaryOp):
        return f"({node.op}{expr_src(node.operand)})"
    if isinstance(node, ast.Call):
        args = ", ".join(expr_src(arg) for arg in node.args)
        return f"{node.name}({args})"
    if isinstance(node, ast.CellAccess):
        args = ", ".join(expr_src(arg) for arg in node.args)
        return f"{node.base}.cell({args})"
    if isinstance(node, ast.Ternary):
        return (
            f"({expr_src(node.cond)} ? {expr_src(node.if_true)} : "
            f"{expr_src(node.if_false)})"
        )
    raise UnparseError(f"cannot unparse {type(node).__name__}")


def region_src(region: RegionIR) -> str:
    """One region binding: ``A.cell(i, j) a`` / ``B.region(0, n, 0, m) b``."""
    intervals = region.box.intervals
    if region.view_kind == "all":
        return f"{region.matrix} {region.bind_name}"
    if region.view_kind == "cell":
        args = [affine_src(iv.lo) for iv in intervals]
    elif region.view_kind == "region":
        args = [affine_src(iv.lo) for iv in intervals]
        args += [affine_src(iv.hi) for iv in intervals]
    elif region.view_kind == "row":
        args = [affine_src(intervals[1].lo)]
    elif region.view_kind == "column":
        args = [affine_src(intervals[0].lo)]
    else:
        raise UnparseError(f"unknown view kind {region.view_kind!r}")
    return f"{region.matrix}.{region.view_kind}({', '.join(args)}) {region.bind_name}"


def _target_src(target: ast.ExprNode) -> str:
    if isinstance(target, ast.Var):
        return target.name
    if isinstance(target, ast.CellAccess):
        args = ", ".join(expr_src(arg) for arg in target.args)
        return f"{target.base}.cell({args})"
    raise UnparseError(f"cannot unparse lvalue {type(target).__name__}")


def rule_src(rule: RuleIR, indent: str = "  ") -> str:
    """One rule block."""
    if rule.native_body is not None:
        raise UnparseError(f"rule {rule.label} has a native body")
    if rule.priority == 0:
        prefix = "primary "
    elif rule.priority == 2:
        prefix = "secondary "
    elif rule.priority == 1:
        prefix = ""
    else:
        prefix = f"priority({rule.priority}) "
    to = ", ".join(region_src(reg) for reg in rule.to_regions)
    frm = ", ".join(region_src(reg) for reg in rule.from_regions)
    header = f"{prefix}to ({to}) from ({frm})"
    if rule.schedule is not None:
        if rule.schedule.tile:
            inner = ", ".join(
                f"{var}: {size}" for var, size in rule.schedule.tile
            )
            header += f" tile({inner})"
        if rule.schedule.interchange:
            header += " interchange"
    if rule.where:
        header += " where " + ", ".join(expr_src(w) for w in rule.where)
    lines = [f"{indent}{header} {{"]
    for stmt in rule.body:
        lines.append(
            f"{indent}  {_target_src(stmt.target)} {stmt.op} "
            f"{expr_src(stmt.value)};"
        )
    lines.append(f"{indent}}}")
    return "\n".join(lines)


def _matrix_src(mat: MatrixIR) -> str:
    if not mat.dims:
        return mat.name
    return f"{mat.name}[{', '.join(affine_src(dim) for dim in mat.dims)}]"


def transform_src(ir: TransformIR) -> str:
    """The whole transform as parseable DSL source."""
    lines = [f"transform {ir.name}"]
    if ir.inputs:
        lines.append("from " + ", ".join(_matrix_src(m) for m in ir.inputs))
    if ir.throughs:
        lines.append("through " + ", ".join(_matrix_src(m) for m in ir.throughs))
    if ir.outputs:
        lines.append("to " + ", ".join(_matrix_src(m) for m in ir.outputs))
    for tun in ir.tunables:
        if tun.default is not None:
            lines.append(f"tunable {tun.name}({tun.lo}, {tun.hi}, {tun.default});")
        else:
            lines.append(f"tunable {tun.name}({tun.lo}, {tun.hi});")
    if ir.generator:
        lines.append(f"generator {ir.generator}")
    lines.append("{")
    for rule in ir.rules:
        lines.append(rule_src(rule))
    lines.append("}")
    return "\n".join(lines)


def program_src(transforms: Sequence[TransformIR]) -> str:
    """Several transforms, blank-line separated."""
    return "\n\n".join(transform_src(ir) for ir in transforms) + "\n"
