"""The PetaBricks language frontend.

This package implements the textual DSL from the paper: ``transform``
declarations with ``from``/``to``/``through`` matrix headers, multiple
``to (...) from (...) { ... }`` rules per transform, ``where`` clauses,
rule priorities, ``tunable`` and ``generator`` declarations, and matrix
versions (``A<0..n>``).

Rule bodies use a small C-like statement language (assignments, arithmetic,
calls to builtins and to other transforms) in place of the original's raw
C++ — see :mod:`repro.language.interp`.

* :mod:`repro.language.lexer` — tokenizer.
* :mod:`repro.language.parser` — recursive-descent parser producing the
  AST in :mod:`repro.language.ast_nodes`.
* :func:`parse_program` / :func:`parse_transform` — convenience entry
  points.
"""

from repro.language.ast_nodes import (
    Assign,
    BinOp,
    Call,
    CellAccess,
    ExprNode,
    MatrixDecl,
    Num,
    Program,
    RegionBind,
    RuleDecl,
    TransformDecl,
    TunableDecl,
    UnaryOp,
    Var,
)
from repro.language.errors import LexError, ParseError, PetaBricksError
from repro.language.parser import parse_program, parse_transform

__all__ = [
    "Assign",
    "BinOp",
    "Call",
    "CellAccess",
    "ExprNode",
    "LexError",
    "MatrixDecl",
    "Num",
    "ParseError",
    "PetaBricksError",
    "Program",
    "RegionBind",
    "RuleDecl",
    "TransformDecl",
    "TunableDecl",
    "UnaryOp",
    "Var",
    "parse_program",
    "parse_transform",
]
