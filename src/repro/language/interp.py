"""Interpreter for rule bodies.

Rule bodies in this reproduction are written in a small C-like statement
language (the original embedded raw C++; see DESIGN.md for why the body
language is orthogonal to every compiler pass).  The interpreter evaluates
a rule body against a :class:`Scope` holding:

* the region views bound by the rule header (``out``, ``a``, ``b1``...),
* the rule's free variables (``i``, ``x``...) and the transform's size
  variables, as numbers,
* tunable values, and
* a ``call_transform`` callback supplied by the execution engine so that
  bodies can invoke other transforms (``ab1 = MatrixMultiply(a, b1);``).

Value model: expressions evaluate to Python floats or
:class:`~repro.runtime.matrix.MatrixView` objects; 0-D views auto-deref to
their scalar value in arithmetic, mirroring how PetaBricks cell references
behave like C++ references.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Sequence, Union

import numpy as np

from repro.language.ast_nodes import (
    Assign,
    BinOp,
    Call,
    CellAccess,
    ExprNode,
    Num,
    Statement,
    Ternary,
    UnaryOp,
    Var,
)
from repro.language.errors import PetaBricksError
from repro.runtime.matrix import MatrixView

Value = Union[float, int, MatrixView]
TransformCall = Callable[[str, Sequence[MatrixView]], MatrixView]


class EvalError(PetaBricksError):
    """Runtime error while interpreting a rule body."""


def _builtin_sum(view: Value) -> float:
    return float(np.sum(_as_array(view)))


def _builtin_dot(a: Value, b: Value) -> float:
    return float(np.dot(_as_array(a).ravel(), _as_array(b).ravel()))


def _builtin_prod(view: Value) -> float:
    return float(np.prod(_as_array(view)))


#: deterministic RNG behind the ``rand()`` builtin (generator transforms
#: use it to synthesize training inputs; reseed via ``seed_rand``).
_RAND = np.random.default_rng(0x5EED)


def seed_rand(seed: int) -> None:
    """Reseed the ``rand()`` builtin (used per training round)."""
    global _RAND
    _RAND = np.random.default_rng(seed)


BUILTINS: Dict[str, Callable[..., float]] = {
    "rand": lambda: float(_RAND.random()),
    "sum": _builtin_sum,
    "dot": _builtin_dot,
    "prod": _builtin_prod,
    "min": lambda *a: float(min(_as_scalar(v) for v in a)),
    "max": lambda *a: float(max(_as_scalar(v) for v in a)),
    "abs": lambda v: abs(_as_scalar(v)),
    "sqrt": lambda v: math.sqrt(_as_scalar(v)),
    "floor": lambda v: float(math.floor(_as_scalar(v))),
    "ceil": lambda v: float(math.ceil(_as_scalar(v))),
    "pow": lambda a, b: float(_as_scalar(a) ** _as_scalar(b)),
    "exp": lambda v: math.exp(_as_scalar(v)),
    "log": lambda v: math.log(_as_scalar(v)),
}


def _as_scalar(value: Value) -> float:
    if isinstance(value, MatrixView):
        return value.value  # raises for non-0-D views
    return float(value)


def _as_array(value: Value) -> np.ndarray:
    if isinstance(value, MatrixView):
        return value.to_numpy()
    return np.asarray(value)


def _as_index(value: Value) -> int:
    scalar = _as_scalar(value)
    rounded = int(math.floor(scalar))
    return rounded


# Public aliases: the lowered execution paths (repro.engine_fast) reuse
# these coercions so scalar/index/array semantics stay defined in exactly
# one place.
as_scalar = _as_scalar
as_array = _as_array
as_index = _as_index


class Scope:
    """Evaluation environment for one rule application."""

    def __init__(
        self,
        bindings: Dict[str, Value],
        call_transform: Optional[TransformCall] = None,
    ) -> None:
        self.bindings = bindings
        self.call_transform = call_transform
        self.ops = 0  # arithmetic operation counter for work accounting

    def lookup(self, name: str) -> Value:
        if name in self.bindings:
            return self.bindings[name]
        raise EvalError(f"unbound name {name!r} in rule body")


def evaluate(expr: ExprNode, scope: Scope) -> Value:
    """Evaluate an expression to a float or a MatrixView."""
    if isinstance(expr, Num):
        return expr.value
    if isinstance(expr, Var):
        return scope.lookup(expr.name)
    if isinstance(expr, UnaryOp):
        operand = evaluate(expr.operand, scope)
        scope.ops += 1
        if expr.op == "-":
            return -_as_scalar(operand)
        if expr.op == "!":
            return 0.0 if _as_scalar(operand) != 0 else 1.0
        raise EvalError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, BinOp):
        return _eval_binop(expr, scope)
    if isinstance(expr, Ternary):
        cond = _as_scalar(evaluate(expr.cond, scope))
        branch = expr.if_true if cond != 0 else expr.if_false
        return evaluate(branch, scope)
    if isinstance(expr, CellAccess):
        base = scope.lookup(expr.base)
        if not isinstance(base, MatrixView):
            raise EvalError(f"{expr.base!r} is not a region; cannot .cell()")
        coords = [_as_index(evaluate(arg, scope)) for arg in expr.args]
        return base.cell(*coords)
    if isinstance(expr, Call):
        return _eval_call(expr, scope)
    raise EvalError(f"cannot evaluate {type(expr).__name__}")


def _eval_binop(expr: BinOp, scope: Scope) -> Value:
    # Short-circuit logical operators.
    if expr.op == "&&":
        left = _as_scalar(evaluate(expr.left, scope))
        if left == 0:
            return 0.0
        return 1.0 if _as_scalar(evaluate(expr.right, scope)) != 0 else 0.0
    if expr.op == "||":
        left = _as_scalar(evaluate(expr.left, scope))
        if left != 0:
            return 1.0
        return 1.0 if _as_scalar(evaluate(expr.right, scope)) != 0 else 0.0

    left = _as_scalar(evaluate(expr.left, scope))
    right = _as_scalar(evaluate(expr.right, scope))
    scope.ops += 1
    if expr.op == "+":
        return left + right
    if expr.op == "-":
        return left - right
    if expr.op == "*":
        return left * right
    if expr.op == "/":
        if right == 0:
            raise EvalError("division by zero in rule body")
        return left / right
    if expr.op == "%":
        return math.fmod(left, right)
    if expr.op == "==":
        return 1.0 if left == right else 0.0
    if expr.op == "!=":
        return 1.0 if left != right else 0.0
    if expr.op == "<":
        return 1.0 if left < right else 0.0
    if expr.op == "<=":
        return 1.0 if left <= right else 0.0
    if expr.op == ">":
        return 1.0 if left > right else 0.0
    if expr.op == ">=":
        return 1.0 if left >= right else 0.0
    raise EvalError(f"unknown operator {expr.op!r}")


def _eval_call(expr: Call, scope: Scope) -> Value:
    args = [evaluate(arg, scope) for arg in expr.args]
    builtin = BUILTINS.get(expr.name)
    if builtin is not None:
        size = sum(
            a.size if isinstance(a, MatrixView) else 1 for a in args
        )
        scope.ops += size
        return builtin(*args)
    if scope.call_transform is None:
        raise EvalError(
            f"call to {expr.name!r} but no transform resolver in scope"
        )
    views = [a for a in args if isinstance(a, MatrixView)]
    if len(views) != len(args):
        raise EvalError(
            f"transform call {expr.name!r} takes region arguments only"
        )
    return scope.call_transform(expr.name, views)


def _write(target: Value, value: Value) -> None:
    if not isinstance(target, MatrixView):
        raise EvalError("assignment target is not a region")
    if target.ndim == 0:
        target.set(_as_scalar(value))
    else:
        target.assign(_as_array(value))


def execute(statements: Sequence[Statement], scope: Scope) -> None:
    """Execute a rule body."""
    for stmt in statements:
        if not isinstance(stmt, Assign):
            raise EvalError(f"unsupported statement {type(stmt).__name__}")
        value = evaluate(stmt.value, scope)
        if isinstance(stmt.target, Var):
            target = scope.lookup(stmt.target.name)
        elif isinstance(stmt.target, CellAccess):
            target = evaluate(stmt.target, scope)
        else:
            raise EvalError("invalid assignment target")
        if stmt.op == "=":
            _write(target, value)
            continue
        # Compound assignment: read-modify-write on scalars/arrays.
        if not isinstance(target, MatrixView):
            raise EvalError("assignment target is not a region")
        current = target.value if target.ndim == 0 else target.to_numpy()
        operand = _as_scalar(value) if target.ndim == 0 else _as_array(value)
        if stmt.op == "+=":
            result = current + operand
        elif stmt.op == "-=":
            result = current - operand
        elif stmt.op == "*=":
            result = current * operand
        elif stmt.op == "/=":
            result = current / operand
        else:
            raise EvalError(f"unknown assignment operator {stmt.op!r}")
        scope.ops += target.size
        _write(target, result)
