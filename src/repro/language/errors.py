"""Error hierarchy for the PetaBricks frontend and compiler.

Every error keeps its bare ``message`` accessible separately from the
formatted string (``str(err)`` prepends ``line L:C:`` when a position is
known), so the static analyzer in :mod:`repro.analysis` can re-wrap a
``CompileError`` as a structured :class:`~repro.analysis.Diagnostic`
without re-parsing the text.  Errors raised by passes that know their
diagnostic code carry it in ``code`` (e.g. ``PB204`` for a dependency
deadlock) along with an optional one-line fix ``hint``.
"""

from __future__ import annotations

from typing import Optional


class PetaBricksError(Exception):
    """Base class for all language/compiler diagnostics."""

    def __init__(
        self,
        message: str,
        line: int = 0,
        column: int = 0,
        code: Optional[str] = None,
        hint: Optional[str] = None,
    ) -> None:
        self.message = message
        self.line = line
        self.column = column
        self.code = code
        self.hint = hint
        formatted = message
        if line:
            formatted = f"line {line}:{column}: {formatted}"
        super().__init__(formatted)


class LexError(PetaBricksError):
    """Invalid character or token in the source text."""


class ParseError(PetaBricksError):
    """Source text does not match the grammar."""


class CompileError(PetaBricksError):
    """Semantic error detected by a compiler pass (unknown matrix,
    uncoverable region, dependency deadlock, ...)."""
