"""Error hierarchy for the PetaBricks frontend and compiler."""

from __future__ import annotations


class PetaBricksError(Exception):
    """Base class for all language/compiler diagnostics."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"line {line}:{column}: {message}"
        super().__init__(message)


class LexError(PetaBricksError):
    """Invalid character or token in the source text."""


class ParseError(PetaBricksError):
    """Source text does not match the grammar."""


class CompileError(PetaBricksError):
    """Semantic error detected by a compiler pass (unknown matrix,
    uncoverable region, dependency deadlock, ...)."""
