"""Abstract syntax tree for the PetaBricks DSL.

Two expression contexts share one node family (:class:`ExprNode`):

* *region coordinates* (``A.region(0, c/2, w, c)``) must be affine in the
  transform's free variables — :meth:`ExprNode.to_affine` converts them to
  :class:`repro.symbolic.Affine`, rejecting anything non-affine, exactly
  where the original compiler invoked Maxima;
* *rule bodies* are evaluated by the interpreter in
  :mod:`repro.language.interp` against bound region views.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from repro.symbolic import Affine

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class ExprNode:
    """Base class for expression nodes."""

    def to_affine(self) -> Affine:
        """Convert to an affine symbolic expression; raises ValueError for
        non-affine constructs (calls, comparisons, cell access...)."""
        raise ValueError(f"{type(self).__name__} is not an affine expression")

    def free_names(self) -> Tuple[str, ...]:
        """All identifier names referenced, in first-seen order."""
        seen: List[str] = []
        self._collect_names(seen)
        return tuple(seen)

    def _collect_names(self, out: List[str]) -> None:
        pass


@dataclass(frozen=True)
class Num(ExprNode):
    """Integer or floating literal (ints stay exact)."""

    value: object  # int or float

    def to_affine(self) -> Affine:
        if isinstance(self.value, int):
            return Affine.const(self.value)
        raise ValueError("floating literal in region coordinate")


@dataclass(frozen=True)
class Var(ExprNode):
    """An identifier: a free variable, a bound region, or a tunable."""

    name: str

    def to_affine(self) -> Affine:
        return Affine.var(self.name)

    def _collect_names(self, out: List[str]) -> None:
        if self.name not in out:
            out.append(self.name)


@dataclass(frozen=True)
class BinOp(ExprNode):
    """Binary operation; op is one of + - * / % == != < <= > >= && ||."""

    op: str
    left: ExprNode
    right: ExprNode

    def to_affine(self) -> Affine:
        lhs = self.left.to_affine()
        rhs = self.right.to_affine()
        if self.op == "+":
            return lhs + rhs
        if self.op == "-":
            return lhs - rhs
        if self.op == "*":
            return lhs * rhs
        if self.op == "/":
            return lhs / rhs
        raise ValueError(f"operator {self.op!r} in region coordinate")

    def _collect_names(self, out: List[str]) -> None:
        self.left._collect_names(out)
        self.right._collect_names(out)


@dataclass(frozen=True)
class UnaryOp(ExprNode):
    """Unary minus or logical not."""

    op: str
    operand: ExprNode

    def to_affine(self) -> Affine:
        if self.op == "-":
            return -self.operand.to_affine()
        raise ValueError(f"unary {self.op!r} in region coordinate")

    def _collect_names(self, out: List[str]) -> None:
        self.operand._collect_names(out)


@dataclass(frozen=True)
class Call(ExprNode):
    """Function or transform call ``name(arg, ...)``."""

    name: str
    args: Tuple[ExprNode, ...]

    def _collect_names(self, out: List[str]) -> None:
        for arg in self.args:
            arg._collect_names(out)


@dataclass(frozen=True)
class CellAccess(ExprNode):
    """Element access ``region.cell(i, j)`` inside a rule body."""

    base: str
    args: Tuple[ExprNode, ...]

    def _collect_names(self, out: List[str]) -> None:
        if self.base not in out:
            out.append(self.base)
        for arg in self.args:
            arg._collect_names(out)


@dataclass(frozen=True)
class Ternary(ExprNode):
    """C-style conditional ``cond ? a : b``."""

    cond: ExprNode
    if_true: ExprNode
    if_false: ExprNode

    def _collect_names(self, out: List[str]) -> None:
        self.cond._collect_names(out)
        self.if_true._collect_names(out)
        self.if_false._collect_names(out)


# ---------------------------------------------------------------------------
# Statements (rule bodies)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Assign:
    """Assignment ``lvalue op expr;`` where op is = += -= *= /= and the
    lvalue is a bound region name or a ``name.cell(...)`` access."""

    target: ExprNode  # Var or CellAccess
    op: str
    value: ExprNode


Statement = Assign  # rule bodies are sequences of assignments


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MatrixDecl:
    """A matrix in a transform header: ``A[c, h]`` or versioned
    ``A<0..n>[m]`` (the version range becomes a leading dimension).

    ``line``/``column`` locate the declaration in the source text (0 when
    built programmatically); they are excluded from equality so decls
    still compare structurally.
    """

    name: str
    dims: Tuple[ExprNode, ...]
    version: Optional[Tuple[ExprNode, ExprNode]] = None
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)

    @property
    def ndim(self) -> int:
        return len(self.dims) + (1 if self.version is not None else 0)


@dataclass(frozen=True)
class RegionBind:
    """One binding in a rule header: ``A.region(0, 0, w, c/2) b1`` binds
    the view to local name ``b1``.  ``accessor`` is one of ``cell``,
    ``region``, ``row``, ``column``, or ``all`` (bare matrix name)."""

    matrix: str
    accessor: str
    args: Tuple[ExprNode, ...]
    name: str
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)


@dataclass(frozen=True)
class WhereClause:
    """A ``where`` restriction on a rule's applicable region."""

    condition: ExprNode
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)


@dataclass(frozen=True)
class RuleDecl:
    """One rule: ``priority(p) to (...) from (...) where ... { body }``.

    ``priority`` follows the paper: lower value = higher priority; in each
    choice-grid region only rules of minimal priority survive.  The
    default priority is 1; ``primary`` is 0 and ``secondary`` is 2.
    """

    to_bindings: Tuple[RegionBind, ...]
    from_bindings: Tuple[RegionBind, ...]
    body: Tuple[Statement, ...]
    where: Tuple[WhereClause, ...] = ()
    priority: int = 1
    label: str = ""
    escapes: Tuple[str, ...] = ()
    #: Schedule annotation clauses: ``tile(i: 32, j: 32)`` declares
    #: default tile sizes per instance variable; ``interchange`` asks
    #: for tiles-outermost execution.  Both are legality-gated hints.
    tile: Tuple[Tuple[str, int], ...] = ()
    interchange: bool = False
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)


@dataclass(frozen=True)
class TunableDecl:
    """A user-exported tunable parameter: ``tunable name(lo, hi);``."""

    name: str
    lo: int = 1
    hi: int = 2**20
    default: Optional[int] = None
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)


@dataclass(frozen=True)
class TransformDecl:
    """A full transform declaration."""

    name: str
    to_matrices: Tuple[MatrixDecl, ...]
    from_matrices: Tuple[MatrixDecl, ...]
    through_matrices: Tuple[MatrixDecl, ...]
    rules: Tuple[RuleDecl, ...]
    tunables: Tuple[TunableDecl, ...] = ()
    generator: Optional[str] = None
    template_params: Tuple[Tuple[str, int, int], ...] = ()
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)

    def matrix(self, name: str) -> MatrixDecl:
        for decl in self.to_matrices + self.from_matrices + self.through_matrices:
            if decl.name == name:
                return decl
        raise KeyError(f"transform {self.name} has no matrix {name!r}")

    @property
    def size_variables(self) -> Tuple[str, ...]:
        """Free variables appearing in matrix dimension expressions."""
        seen: List[str] = []
        for decl in self.to_matrices + self.from_matrices + self.through_matrices:
            for dim in decl.dims:
                for name in dim.free_names():
                    if name not in seen:
                        seen.append(name)
            if decl.version is not None:
                for expr in decl.version:
                    for name in expr.free_names():
                        if name not in seen:
                            seen.append(name)
        return tuple(seen)


@dataclass(frozen=True)
class Program:
    """A parsed source file: an ordered collection of transforms."""

    transforms: Tuple[TransformDecl, ...]

    def transform(self, name: str) -> TransformDecl:
        for decl in self.transforms:
            if decl.name == name:
                return decl
        raise KeyError(f"no transform named {name!r}")
