"""Recursive-descent parser for the PetaBricks DSL.

Grammar (informally)::

    program     := transform* EOF
    transform   := "transform" NAME header* "{" rule* "}"
    header      := ("from"|"to"|"through") matrixdecl ("," matrixdecl)*
                 | "generator" NAME
                 | "tunable" NAME ["(" INT "," INT ["," INT] ")"] [";"]
                 | "template" "<" NAME "," INT "," INT ">"
    matrixdecl  := NAME ["<" expr ".." expr ">"] ["[" expr ("," expr)* "]"]
    rule        := prio? "to" "(" binds ")" "from" "(" binds? ")"
                   ("where" expr ("," expr)*)? "{" body "}"
    prio        := "primary" | "secondary" | "priority" "(" INT ")"
    bind        := NAME ["." accessor "(" args ")"] NAME
    body        := (assign | ESCAPE)*
    assign      := lvalue ("="|"+="|"-="|"*="|"/=") expr ";"

Expressions support the usual C precedence including ``?:``, comparisons,
``&&``/``||``, and postfix ``.cell(...)`` access and calls.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.language.ast_nodes import (
    Assign,
    BinOp,
    Call,
    CellAccess,
    ExprNode,
    MatrixDecl,
    Num,
    Program,
    RegionBind,
    RuleDecl,
    Ternary,
    TransformDecl,
    TunableDecl,
    UnaryOp,
    Var,
    WhereClause,
)
from repro.language.errors import ParseError
from repro.language.lexer import Token, tokenize

ACCESSORS = ("cell", "region", "row", "column")


class _Parser:
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token helpers -------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def take(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def at(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.at(kind, text):
            return self.take()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.peek()
        if not self.at(kind, text):
            want = text or kind
            raise ParseError(
                f"expected {want!r}, found {tok.text or tok.kind!r}",
                tok.line,
                tok.column,
            )
        return self.take()

    # -- program / transform ---------------------------------------------------

    def parse_program(self) -> Program:
        transforms = []
        while not self.at("eof"):
            transforms.append(self.parse_transform())
        return Program(tuple(transforms))

    def parse_transform(self) -> TransformDecl:
        start = self.expect("keyword", "transform")
        name = self.expect("name").text
        to_mats: List[MatrixDecl] = []
        from_mats: List[MatrixDecl] = []
        through_mats: List[MatrixDecl] = []
        tunables: List[TunableDecl] = []
        generator: Optional[str] = None
        templates: List[Tuple[str, int, int]] = []

        while not self.at("op", "{"):
            tok = self.peek()
            if self.accept("keyword", "from"):
                from_mats.extend(self.parse_matrix_decls())
            elif self.accept("keyword", "to"):
                to_mats.extend(self.parse_matrix_decls())
            elif self.accept("keyword", "through"):
                through_mats.extend(self.parse_matrix_decls())
            elif self.accept("keyword", "generator"):
                generator = self.expect("name").text
            elif self.accept("keyword", "tunable"):
                tunables.append(self.parse_tunable())
            elif self.accept("keyword", "template"):
                templates.append(self.parse_template_param())
            else:
                raise ParseError(
                    f"unexpected {tok.text!r} in transform header",
                    tok.line,
                    tok.column,
                )
        if not to_mats:
            tok = self.peek()
            raise ParseError(
                f"transform {name} declares no outputs", tok.line, tok.column
            )

        self.expect("op", "{")
        rules: List[RuleDecl] = []
        while not self.accept("op", "}"):
            rules.append(self.parse_rule(len(rules)))
        if not rules:
            raise ParseError(f"transform {name} has no rules")
        return TransformDecl(
            name=name,
            to_matrices=tuple(to_mats),
            from_matrices=tuple(from_mats),
            through_matrices=tuple(through_mats),
            rules=tuple(rules),
            tunables=tuple(tunables),
            generator=generator,
            template_params=tuple(templates),
            line=start.line,
            column=start.column,
        )

    def parse_matrix_decls(self) -> List[MatrixDecl]:
        decls = [self.parse_matrix_decl()]
        while self.accept("op", ","):
            decls.append(self.parse_matrix_decl())
        return decls

    def parse_matrix_decl(self) -> MatrixDecl:
        name_tok = self.expect("name")
        name = name_tok.text
        version = None
        if self.accept("op", "<"):
            # Version bounds use additive expressions only, so the closing
            # '>' is not mistaken for a comparison operator.
            lo = self.parse_additive()
            self.expect("op", "..")
            hi = self.parse_additive()
            self.expect("op", ">")
            version = (lo, hi)
        dims: List[ExprNode] = []
        if self.accept("op", "["):
            dims.append(self.parse_expr())
            while self.accept("op", ","):
                dims.append(self.parse_expr())
            self.expect("op", "]")
        return MatrixDecl(
            name=name,
            dims=tuple(dims),
            version=version,
            line=name_tok.line,
            column=name_tok.column,
        )

    def parse_tunable(self) -> TunableDecl:
        name_tok = self.expect("name")
        lo, hi, default = 1, 2**20, None
        if self.accept("op", "("):
            lo = int(self.expect("int").text)
            self.expect("op", ",")
            hi = int(self.expect("int").text)
            if self.accept("op", ","):
                default = int(self.expect("int").text)
            self.expect("op", ")")
        self.accept("op", ";")
        return TunableDecl(
            name=name_tok.text,
            lo=lo,
            hi=hi,
            default=default,
            line=name_tok.line,
            column=name_tok.column,
        )

    def parse_template_param(self) -> Tuple[str, int, int]:
        self.expect("op", "<")
        name = self.expect("name").text
        self.expect("op", ",")
        lo = int(self.expect("int").text)
        self.expect("op", ",")
        hi = int(self.expect("int").text)
        self.expect("op", ">")
        return (name, lo, hi)

    # -- rules ----------------------------------------------------------------

    def parse_rule(self, index: int) -> RuleDecl:
        start = self.peek()
        priority = 1
        if self.accept("keyword", "primary"):
            priority = 0
        elif self.accept("keyword", "secondary"):
            priority = 2
        elif self.accept("keyword", "priority"):
            self.expect("op", "(")
            priority = int(self.expect("int").text)
            self.expect("op", ")")

        to_binds: Tuple[RegionBind, ...] = ()
        from_binds: Tuple[RegionBind, ...] = ()
        saw_to = saw_from = False
        for _ in range(2):
            if self.accept("keyword", "to"):
                self.expect("op", "(")
                to_binds = self.parse_bind_list()
                self.expect("op", ")")
                saw_to = True
            elif self.accept("keyword", "from"):
                self.expect("op", "(")
                if not self.at("op", ")"):
                    from_binds = self.parse_bind_list()
                self.expect("op", ")")
                saw_from = True
            if saw_to and saw_from:
                break
        if not saw_to:
            tok = self.peek()
            raise ParseError("rule missing to(...) clause", tok.line, tok.column)

        # Optional schedule clauses.  `tile` and `interchange` are
        # context-sensitive names, not keywords: a bare name here was
        # previously a parse error, so existing programs are unaffected.
        tile: List[Tuple[str, int]] = []
        interchange = False
        while self.at("name") and self.peek().text in ("tile", "interchange"):
            word = self.take().text
            if word == "interchange":
                interchange = True
                continue
            self.expect("op", "(")
            while True:
                var_tok = self.expect("name")
                self.expect("op", ":")
                size = int(self.expect("int").text)
                tile.append((var_tok.text, size))
                if not self.accept("op", ","):
                    break
            self.expect("op", ")")

        wheres: List[WhereClause] = []
        if self.accept("keyword", "where"):
            cond_tok = self.peek()
            wheres.append(
                WhereClause(
                    self.parse_expr(), line=cond_tok.line, column=cond_tok.column
                )
            )
            while self.accept("op", ","):
                cond_tok = self.peek()
                wheres.append(
                    WhereClause(
                        self.parse_expr(),
                        line=cond_tok.line,
                        column=cond_tok.column,
                    )
                )

        self.expect("op", "{")
        body: List[Assign] = []
        escapes: List[str] = []
        while not self.accept("op", "}"):
            if self.at("escape"):
                escapes.append(self.take().text)
                continue
            body.append(self.parse_assign())
        return RuleDecl(
            to_bindings=to_binds,
            from_bindings=from_binds,
            body=tuple(body),
            where=tuple(wheres),
            priority=priority,
            label=f"rule{index}",
            escapes=tuple(escapes),
            tile=tuple(tile),
            interchange=interchange,
            line=start.line,
            column=start.column,
        )

    def parse_bind_list(self) -> Tuple[RegionBind, ...]:
        binds = [self.parse_bind()]
        while self.accept("op", ","):
            binds.append(self.parse_bind())
        return tuple(binds)

    def parse_bind(self) -> RegionBind:
        matrix_tok = self.expect("name")
        matrix = matrix_tok.text
        accessor = "all"
        args: Tuple[ExprNode, ...] = ()
        if self.accept("op", "."):
            accessor_tok = self.expect("name")
            if accessor_tok.text not in ACCESSORS:
                raise ParseError(
                    f"unknown region accessor {accessor_tok.text!r}",
                    accessor_tok.line,
                    accessor_tok.column,
                )
            accessor = accessor_tok.text
            self.expect("op", "(")
            arg_list: List[ExprNode] = []
            if not self.at("op", ")"):
                arg_list.append(self.parse_expr())
                while self.accept("op", ","):
                    arg_list.append(self.parse_expr())
            self.expect("op", ")")
            args = tuple(arg_list)
        # Optional direction annotation like `out` (the binding name); a
        # bare binding without a name reuses the matrix name.
        if self.at("name"):
            name = self.take().text
        else:
            name = matrix
        return RegionBind(
            matrix=matrix,
            accessor=accessor,
            args=args,
            name=name,
            line=matrix_tok.line,
            column=matrix_tok.column,
        )

    # -- statements -------------------------------------------------------------

    def parse_assign(self) -> Assign:
        target = self.parse_postfix()
        if not isinstance(target, (Var, CellAccess)):
            tok = self.peek()
            raise ParseError("invalid assignment target", tok.line, tok.column)
        op_tok = self.peek()
        if op_tok.kind == "op" and op_tok.text in ("=", "+=", "-=", "*=", "/="):
            self.take()
        else:
            raise ParseError(
                f"expected assignment operator, found {op_tok.text!r}",
                op_tok.line,
                op_tok.column,
            )
        value = self.parse_expr()
        self.expect("op", ";")
        return Assign(target=target, op=op_tok.text, value=value)

    # -- expressions --------------------------------------------------------------

    def parse_expr(self) -> ExprNode:
        return self.parse_ternary()

    def parse_ternary(self) -> ExprNode:
        cond = self.parse_or()
        if self.accept("op", "?"):
            if_true = self.parse_expr()
            self.expect("op", ":")
            if_false = self.parse_expr()
            return Ternary(cond, if_true, if_false)
        return cond

    def parse_or(self) -> ExprNode:
        node = self.parse_and()
        while self.accept("op", "||"):
            node = BinOp("||", node, self.parse_and())
        return node

    def parse_and(self) -> ExprNode:
        node = self.parse_equality()
        while self.accept("op", "&&"):
            node = BinOp("&&", node, self.parse_equality())
        return node

    def parse_equality(self) -> ExprNode:
        node = self.parse_relational()
        while self.peek().kind == "op" and self.peek().text in ("==", "!="):
            op = self.take().text
            node = BinOp(op, node, self.parse_relational())
        return node

    def parse_relational(self) -> ExprNode:
        node = self.parse_additive()
        while self.peek().kind == "op" and self.peek().text in ("<", "<=", ">", ">="):
            op = self.take().text
            node = BinOp(op, node, self.parse_additive())
        return node

    def parse_additive(self) -> ExprNode:
        node = self.parse_multiplicative()
        while self.peek().kind == "op" and self.peek().text in ("+", "-"):
            op = self.take().text
            node = BinOp(op, node, self.parse_multiplicative())
        return node

    def parse_multiplicative(self) -> ExprNode:
        node = self.parse_unary()
        while self.peek().kind == "op" and self.peek().text in ("*", "/", "%"):
            op = self.take().text
            node = BinOp(op, node, self.parse_unary())
        return node

    def parse_unary(self) -> ExprNode:
        if self.accept("op", "-"):
            return UnaryOp("-", self.parse_unary())
        if self.accept("op", "!"):
            return UnaryOp("!", self.parse_unary())
        if self.accept("op", "+"):
            return self.parse_unary()
        return self.parse_postfix()

    def parse_postfix(self) -> ExprNode:
        node = self.parse_atom()
        while self.at("op", "."):
            # name.cell(args) — only cell access is allowed in expressions.
            if not isinstance(node, Var):
                tok = self.peek()
                raise ParseError(
                    "'.' access requires a simple name", tok.line, tok.column
                )
            self.take()
            accessor = self.expect("name")
            if accessor.text != "cell":
                raise ParseError(
                    f"only .cell() may appear in expressions, "
                    f"found .{accessor.text}()",
                    accessor.line,
                    accessor.column,
                )
            self.expect("op", "(")
            args: List[ExprNode] = []
            if not self.at("op", ")"):
                args.append(self.parse_expr())
                while self.accept("op", ","):
                    args.append(self.parse_expr())
            self.expect("op", ")")
            node = CellAccess(base=node.name, args=tuple(args))
        return node

    def parse_atom(self) -> ExprNode:
        tok = self.peek()
        if self.accept("op", "("):
            node = self.parse_expr()
            self.expect("op", ")")
            return node
        if tok.kind == "int":
            self.take()
            return Num(int(tok.text))
        if tok.kind == "float":
            self.take()
            return Num(float(tok.text))
        if tok.kind == "name":
            self.take()
            if self.accept("op", "("):
                args: List[ExprNode] = []
                if not self.at("op", ")"):
                    args.append(self.parse_expr())
                    while self.accept("op", ","):
                        args.append(self.parse_expr())
                self.expect("op", ")")
                return Call(name=tok.text, args=tuple(args))
            return Var(tok.text)
        raise ParseError(
            f"unexpected {tok.text or tok.kind!r} in expression",
            tok.line,
            tok.column,
        )


def parse_rule_body(source: str) -> Tuple[Assign, ...]:
    """Parse a bare rule body (a sequence of assignment statements); used
    by the builder API to attach DSL bodies without full transform text."""
    parser = _Parser(source)
    statements: List[Assign] = []
    while not parser.at("eof"):
        statements.append(parser.parse_assign())
    return tuple(statements)


def parse_expression(source: str) -> ExprNode:
    """Parse a single expression (for builder where-clauses)."""
    parser = _Parser(source)
    expr = parser.parse_expr()
    parser.expect("eof")
    return expr


def parse_program(source: str) -> Program:
    """Parse a source file containing one or more transforms."""
    return _Parser(source).parse_program()


def parse_transform(source: str) -> TransformDecl:
    """Parse a source file expected to contain exactly one transform."""
    program = parse_program(source)
    if len(program.transforms) != 1:
        raise ParseError(
            f"expected exactly one transform, found {len(program.transforms)}"
        )
    return program.transforms[0]
