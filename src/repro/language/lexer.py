"""Tokenizer for the PetaBricks DSL.

Handles identifiers, integer and floating literals, the operator set used
by region headers and rule bodies, ``//`` and ``/* */`` comments, and the
``%{ ... }%`` escape blocks (captured verbatim as single tokens, as the
original language embeds raw foreign code there).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.language.errors import LexError

KEYWORDS = frozenset(
    {
        "transform",
        "from",
        "to",
        "through",
        "where",
        "priority",
        "primary",
        "secondary",
        "tunable",
        "generator",
        "template",
        "accuracy_metric",
        "accuracy_bins",
        "param",
    }
)

# Multi-character operators first so maximal munch works.
OPERATORS = (
    "..",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "+=",
    "-=",
    "*=",
    "/=",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ",",
    ";",
    ".",
    "!",
    "?",
    ":",
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    kind: str  # 'name' | 'keyword' | 'int' | 'float' | 'op' | 'escape' | 'eof'
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r})"


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``; raises :class:`LexError` on bad input."""
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    pos = 0
    line = 1
    col = 1
    length = len(source)

    def advance(count: int) -> None:
        nonlocal pos, line, col
        for _ in range(count):
            if pos < length and source[pos] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            pos += 1

    while pos < length:
        ch = source[pos]
        # whitespace
        if ch in " \t\r\n":
            advance(1)
            continue
        # comments
        if source.startswith("//", pos):
            end = source.find("\n", pos)
            advance((length if end == -1 else end) - pos)
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end == -1:
                raise LexError("unterminated block comment", line, col)
            advance(end + 2 - pos)
            continue
        # %{ ... }% escape block
        if source.startswith("%{", pos):
            end = source.find("}%", pos + 2)
            if end == -1:
                raise LexError("unterminated %{ ... }% escape", line, col)
            text = source[pos + 2 : end]
            tok_line, tok_col = line, col
            advance(end + 2 - pos)
            yield Token("escape", text, tok_line, tok_col)
            continue
        # numbers (int or float; float needs digit after the dot so that
        # the '..' range operator is not swallowed)
        if ch.isdigit():
            start = pos
            tok_line, tok_col = line, col
            scan = pos
            while scan < length and source[scan].isdigit():
                scan += 1
            is_float = False
            if (
                scan + 1 < length
                and source[scan] == "."
                and source[scan + 1].isdigit()
            ):
                is_float = True
                scan += 1
                while scan < length and source[scan].isdigit():
                    scan += 1
            if scan < length and source[scan] in "eE":
                exp = scan + 1
                if exp < length and source[exp] in "+-":
                    exp += 1
                if exp < length and source[exp].isdigit():
                    is_float = True
                    scan = exp
                    while scan < length and source[scan].isdigit():
                        scan += 1
            text = source[start:scan]
            advance(scan - pos)
            yield Token("float" if is_float else "int", text, tok_line, tok_col)
            continue
        # identifiers / keywords
        if ch.isalpha() or ch == "_":
            start = pos
            tok_line, tok_col = line, col
            scan = pos
            while scan < length and (source[scan].isalnum() or source[scan] == "_"):
                scan += 1
            text = source[start:scan]
            advance(scan - pos)
            kind = "keyword" if text in KEYWORDS else "name"
            yield Token(kind, text, tok_line, tok_col)
            continue
        # operators (maximal munch)
        for op in OPERATORS:
            if source.startswith(op, pos):
                tok_line, tok_col = line, col
                advance(len(op))
                yield Token("op", op, tok_line, tok_col)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line, col)

    yield Token("eof", "", line, col)
