"""Closure lowering: compile a rule body to a Python closure once per rule.

The interpreter walks the body AST for every cell instance, rebuilding an
environment dict and eager region views each time — the dominant cost of
every benchmark.  This module walks the AST *once*, at
``compile_program`` time, and emits Python source of the shape::

    def _maker(_env, _tunables, _arrays, _call):
        _e_n = _env['n']              # hoisted size variables
        _m_B = _arrays['B']           # hoisted backing arrays (numpy windows)
        _d_B_0 = _m_B.shape[0]        # hoisted extents for bounds checks
        def _instance(_s_i):          # one parameter per rule variable
            _ops = 0
            _i_b_0 = _s_i             # region bindings, lowered eagerly
            if not (0 <= _i_b_0 < _d_B_0):
                raise IndexError(...)
            ...                       # body statements
            return _ops
        return _instance

which ``exec`` runs into a *maker*; the engine calls the maker once per
segment application and the returned ``_instance`` closure once per cell.

Semantics contract — the closure path must be **bit-for-bit identical** to
the interpreter, including the ``ops`` work accounting the simulated
scheduler charges:

* every scalar read is wrapped in ``float(...)`` so values are true Python
  floats (matching ``_as_scalar``), division by a zero operand raises the
  interpreter's exact ``EvalError``, ``%`` is ``math.fmod``, comparisons
  yield ``1.0``/``0.0``, and ``&&``/``||``/ternaries lower to real ``if``
  statements so short-circuiting (and any side effects guarded by it, e.g.
  ``rand()``) is preserved;
* builtins dispatch to the *same* functions as the interpreter
  (:data:`repro.language.interp.BUILTINS`), so stateful builtins like
  ``rand()`` consume the shared RNG stream in the same per-instance order;
* ops accounting mirrors the interpreter exactly: +1 per non-logical
  binary/unary op, +Σ(argument sizes) per builtin call, +target size per
  compound assignment, with branch-local counts flushed inside their
  branch.

Any construct the lowerer cannot prove equivalent (unknown names, region
arguments to builtins it cannot type, mismatched ternary kinds, ...) makes
:func:`lower_rule` return ``None`` and the engine keeps interpreting that
rule — lowering is an optimization, never a semantics change.

The only tolerated divergence is the *ordering between two failure paths*:
a run that raises aborts identically, but which of two possible errors
fires first may differ from the interpreter.  Successful runs are exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.language import ast_nodes as ast
from repro.language.interp import BUILTINS, EvalError
from repro.symbolic import Affine

if TYPE_CHECKING:  # typing only — keeps engine_fast free of compiler deps
    from repro.compiler.ir import RegionIR, RuleIR, TransformIR

__all__ = ["RuleKernel", "lower_rule"]


class _NotLowerable(Exception):
    """Internal: the rule uses a construct the lowerer does not support."""


# -- runtime helpers injected into every generated namespace ---------------


def _scal(value) -> float:
    """Array-aware scalar coercion matching ``MatrixView.value``."""
    if isinstance(value, np.ndarray):
        if value.ndim != 0:
            raise ValueError(
                f"value on {value.ndim}-D view; use to_numpy()"
            )
        return float(value)
    return float(value)


def _idx(value) -> int:
    """Index coercion matching the interpreter's ``_as_index``."""
    return int(math.floor(_scal(value)))


def _div(left: float, right: float) -> float:
    if right == 0:
        raise EvalError("division by zero in rule body")
    return left / right


def _base_namespace(used_builtins: Set[str]) -> Dict[str, object]:
    namespace: Dict[str, object] = {
        "_scal": _scal,
        "_idx": _idx,
        "_div": _div,
        "_fmod": math.fmod,
        "np": np,
    }
    for name in used_builtins:
        namespace[f"_bi_{name}"] = BUILTINS[name]
    return namespace


@dataclass
class RuleKernel:
    """A lowered rule body: generated source plus the exec'd maker.

    ``maker(env, tunables, arrays, call)`` returns the per-instance
    closure; ``arrays`` maps matrix names to the numpy windows of the
    engine's views (so coordinates stay view-relative).  ``params`` is the
    positional argument order of the closure (the rule's variables).
    ``residual_maker(env)``, when lowered, returns a boolean predicate
    over the same parameters implementing the rule's where-clause.
    """

    params: Tuple[str, ...]
    matrices: Tuple[str, ...]
    maker: Callable
    residual_maker: Optional[Callable]
    uses_call: bool
    source: str
    residual_source: str = ""


class _Val:
    """A compiled expression: scalar ('s') or array ('a') plus its code.

    Codes returned from ``_compile`` are side-effect free (reads only);
    anything that can fail or mutate state is emitted as a statement, so
    textual nesting never reorders observable effects.
    """

    __slots__ = ("kind", "code", "is_float")

    def __init__(self, kind: str, code: str, is_float: bool = False) -> None:
        self.kind = kind
        self.code = code
        self.is_float = is_float


_ARITH = {"+": "+", "-": "-", "*": "*"}
_COMPARE = {"==": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


class _Lowerer:
    """Compiles one rule body (or its residual where-clause) to source."""

    def __init__(
        self, rule: RuleIR, transform: TransformIR, residual: bool = False
    ) -> None:
        self.rule = rule
        self.transform = transform
        self.residual = residual
        self.count_ops = not residual
        self.lines: List[str] = []
        self.maker_lines: List[str] = []
        self.depth = 2
        self.pending = 0
        self.counter = 0
        self.used_env: Set[str] = set()
        self.used_tunables: Set[str] = set()
        self.used_matrices: Set[str] = set()
        self.used_dims: Dict[str, Set[int]] = {}
        self.used_builtins: Set[str] = set()
        self.uses_call = False
        self.params: Tuple[str, ...] = tuple(rule.rule_vars)
        self.param_set = set(rule.rule_vars)
        self.tunable_names = (
            set() if residual else {t.name for t in transform.tunables}
        )
        self.bindings: Dict[str, RegionIR] = {}
        if not residual:
            for region in rule.all_regions:
                self.bindings[region.bind_name] = region

    # -- emission ----------------------------------------------------------

    def line(self, text: str) -> None:
        self.lines.append("    " * self.depth + text)

    def tmp(self) -> str:
        self.counter += 1
        return f"_t{self.counter}"

    def add_ops(self, count: int) -> None:
        if self.count_ops:
            self.pending += count

    def add_ops_code(self, code: str) -> None:
        if self.count_ops:
            self.flush_ops()
            self.line(f"_ops += {code}")

    def flush_ops(self) -> None:
        if self.pending:
            self.line(f"_ops += {self.pending}")
            self.pending = 0

    # -- name resolution ---------------------------------------------------

    def _matrix_ref(self, name: str) -> str:
        self.used_matrices.add(name)
        return f"_m_{name}"

    def _dim_ref(self, matrix: str, dim: int) -> str:
        self.used_matrices.add(matrix)
        self.used_dims.setdefault(matrix, set()).add(dim)
        return f"_d_{matrix}_{dim}"

    def _affine(self, expr: Affine) -> str:
        """Exact integer lowering of ``expr.eval_ceil(env)``.

        With ``L = denominator_lcm``, the scaled numerator is an integer
        expression and ``ceil(num/L) == -((-num) // L)``; for ``L == 1``
        this collapses to plain integer arithmetic.
        """
        lcm = expr.denominator_lcm()
        parts: List[str] = []
        constant = expr.constant * lcm
        if constant.denominator != 1:
            raise _NotLowerable(f"non-integral constant in {expr}")
        if constant or not expr.coefficients:
            parts.append(str(int(constant)))
        for var, coeff in sorted(expr.coefficients.items()):
            scaled = coeff * lcm
            if scaled.denominator != 1:
                raise _NotLowerable(f"non-integral coefficient in {expr}")
            if var in self.param_set:
                name = f"_s_{var}"
            else:
                self.used_env.add(var)
                name = f"_e_{var}"
            parts.append(f"{int(scaled)} * {name}")
        code = " + ".join(parts)
        if lcm == 1:
            return f"({code})"
        return f"(-((-({code})) // {lcm}))"

    def _resolve_var(self, name: str) -> _Val:
        # Resolution order mirrors the interpreter's scope merge:
        # bindings shadow tunables shadow rule/size variables.
        if name in self.bindings:
            return self._binding_value(self.bindings[name])
        if name in self.tunable_names:
            self.used_tunables.add(name)
            return _Val("s", f"_u_{name}")
        if name in self.param_set:
            return _Val("s", f"_s_{name}")
        if name in self.transform.size_vars:
            self.used_env.add(name)
            return _Val("s", f"_e_{name}")
        raise _NotLowerable(f"unknown name {name!r} in rule body")

    def _cell_ref(self, region: RegionIR) -> str:
        indices = ", ".join(
            f"_i_{region.bind_name}_{dim}"
            for dim in range(len(region.box.intervals))
        )
        return f"{self._matrix_ref(region.matrix)}[{indices}]"

    def _binding_value(self, region: RegionIR) -> _Val:
        if region.view_kind == "cell":
            return _Val("s", f"float({self._cell_ref(region)})", True)
        return _Val("a", f"_b_{region.bind_name}")

    # -- scalar / array contexts ------------------------------------------

    def scal(self, val: _Val) -> str:
        if val.kind == "a":
            return f"_scal({val.code})"
        if val.is_float:
            return val.code
        return f"float({val.code})"

    # -- region binding prologue ------------------------------------------

    def emit_bindings(self) -> None:
        """Lower every region binding eagerly, in declaration order
        (to-regions then from-regions, matching the interpreter), with the
        same bounds checks ``MatrixView`` performs."""
        for region in self.rule.all_regions:
            kind = region.view_kind
            name = region.bind_name
            mat = self._matrix_ref(region.matrix)
            intervals = region.box.intervals
            label = f"{self.transform.name}.{self.rule.label}"
            if kind == "cell":
                checks = []
                for dim, interval in enumerate(intervals):
                    self.line(f"_i_{name}_{dim} = {self._affine(interval.lo)}")
                    extent = self._dim_ref(region.matrix, dim)
                    checks.append(f"0 <= _i_{name}_{dim} < {extent}")
                self.line(f"if not ({' and '.join(checks)}):")
                self.line(
                    f"    raise IndexError('{label}: cell binding "
                    f"{name} outside view')"
                )
            elif kind == "region":
                checks = []
                slices = []
                for dim, interval in enumerate(intervals):
                    self.line(
                        f"_lo_{name}_{dim} = {self._affine(interval.lo)}"
                    )
                    self.line(
                        f"_hi_{name}_{dim} = {self._affine(interval.hi)}"
                    )
                    extent = self._dim_ref(region.matrix, dim)
                    checks.append(
                        f"0 <= _lo_{name}_{dim} <= _hi_{name}_{dim} "
                        f"<= {extent}"
                    )
                    slices.append(f"_lo_{name}_{dim}:_hi_{name}_{dim}")
                self.line(f"if not ({' and '.join(checks)}):")
                self.line(
                    f"    raise IndexError('{label}: region binding "
                    f"{name} outside view')"
                )
                self.line(f"_b_{name} = {mat}[{', '.join(slices)}]")
            elif kind == "row":
                if len(intervals) != 2:
                    raise _NotLowerable("row binding on non-2-D region")
                self.line(f"_i_{name}_y = {self._affine(intervals[1].lo)}")
                extent = self._dim_ref(region.matrix, 1)
                self.line(f"if not (0 <= _i_{name}_y < {extent}):")
                self.line(
                    f"    raise IndexError('{label}: row binding "
                    f"{name} outside view')"
                )
                self.line(f"_b_{name} = {mat}[:, _i_{name}_y]")
            elif kind == "column":
                if len(intervals) != 2:
                    raise _NotLowerable("column binding on non-2-D region")
                self.line(f"_i_{name}_x = {self._affine(intervals[0].lo)}")
                extent = self._dim_ref(region.matrix, 0)
                self.line(f"if not (0 <= _i_{name}_x < {extent}):")
                self.line(
                    f"    raise IndexError('{label}: column binding "
                    f"{name} outside view')"
                )
                self.line(f"_b_{name} = {mat}[_i_{name}_x, :]")
            elif kind == "all":
                self.maker_lines.append(f"    _b_{name} = {mat}")
            else:
                raise _NotLowerable(f"unknown view kind {kind!r}")

    # -- expressions -------------------------------------------------------

    def _compile(self, node: ast.ExprNode) -> _Val:
        if isinstance(node, ast.Num):
            return _Val("s", repr(float(node.value)), True)
        if isinstance(node, ast.Var):
            return self._resolve_var(node.name)
        if isinstance(node, ast.UnaryOp):
            operand = self._compile(node.operand)
            self.add_ops(1)
            if node.op == "-":
                return _Val("s", f"(-{self.scal(operand)})", True)
            if node.op == "!":
                return _Val(
                    "s", f"(0.0 if {self.scal(operand)} != 0 else 1.0)", True
                )
            raise _NotLowerable(f"unary operator {node.op!r}")
        if isinstance(node, ast.BinOp):
            return self._compile_binop(node)
        if isinstance(node, ast.Ternary):
            return self._compile_ternary(node)
        if isinstance(node, ast.CellAccess):
            return self._compile_cell_access(node)
        if isinstance(node, ast.Call):
            return self._compile_call(node)
        raise _NotLowerable(f"expression {type(node).__name__}")

    def _compile_binop(self, node: ast.BinOp) -> _Val:
        if node.op in ("&&", "||"):
            # Short-circuit: the right operand's statements (builtin
            # calls, nested divisions...) must only run when the left
            # side does not decide the result — lower to a real `if`.
            left = self._compile(node.left)
            self.flush_ops()
            result = self.tmp()
            if node.op == "&&":
                self.line(f"{result} = 0.0")
                self.line(f"if {self.scal(left)} != 0:")
            else:
                self.line(f"{result} = 1.0")
                self.line(f"if {self.scal(left)} == 0:")
            self.depth += 1
            right = self._compile(node.right)
            self.flush_ops()
            self.line(
                f"{result} = 1.0 if {self.scal(right)} != 0 else 0.0"
            )
            self.depth -= 1
            return _Val("s", result, True)
        left = self._compile(node.left)
        right = self._compile(node.right)
        lc, rc = self.scal(left), self.scal(right)
        self.add_ops(1)
        if node.op in _ARITH:
            return _Val("s", f"({lc} {node.op} {rc})", True)
        if node.op in _COMPARE:
            return _Val("s", f"(1.0 if {lc} {node.op} {rc} else 0.0)", True)
        if node.op == "/":
            result = self.tmp()
            self.line(f"{result} = _div({lc}, {rc})")
            return _Val("s", result, True)
        if node.op == "%":
            return _Val("s", f"_fmod({lc}, {rc})", True)
        raise _NotLowerable(f"operator {node.op!r}")

    def _compile_ternary(self, node: ast.Ternary) -> _Val:
        cond = self._compile(node.cond)
        self.flush_ops()
        result = self.tmp()
        self.line(f"if {self.scal(cond)} != 0:")
        self.depth += 1
        if_true = self._compile(node.if_true)
        self.flush_ops()
        self.line(f"{result} = {if_true.code}")
        self.depth -= 1
        self.line("else:")
        self.depth += 1
        if_false = self._compile(node.if_false)
        self.flush_ops()
        self.line(f"{result} = {if_false.code}")
        self.depth -= 1
        if if_true.kind != if_false.kind:
            raise _NotLowerable("ternary branches of different kinds")
        return _Val(
            if_true.kind, result, if_true.is_float and if_false.is_float
        )

    def _compile_cell_access(self, node: ast.CellAccess) -> _Val:
        if node.base not in self.bindings:
            raise _NotLowerable(f"cell access on unknown base {node.base!r}")
        region = self.bindings[node.base]
        base = self._binding_value(region)
        if base.kind != "a":
            raise _NotLowerable("cell access on a scalar binding")
        if region.view_kind == "region":
            ndim = len(region.box.intervals)
        elif region.view_kind in ("row", "column"):
            ndim = 1
        else:  # "all"
            ndim = len(self.transform.matrices[region.matrix].dims)
        if len(node.args) != ndim:
            raise _NotLowerable("cell access arity mismatch")
        coords = []
        for arg in node.args:
            value = self._compile(arg)
            coord = self.tmp()
            self.line(f"{coord} = _idx({value.code})")
            coords.append(coord)
        checks = " and ".join(
            f"0 <= {coord} < {base.code}.shape[{dim}]"
            for dim, coord in enumerate(coords)
        )
        self.line(f"if not ({checks}):")
        self.line(
            f"    raise IndexError('cell({', '.join(coords)}) outside "
            f"view of {node.base}')"
        )
        result = self.tmp()
        self.line(f"{result} = float({base.code}[{', '.join(coords)}])")
        return _Val("s", result, True)

    def _compile_call(self, node: ast.Call) -> _Val:
        args = [self._compile(arg) for arg in node.args]
        if node.name in BUILTINS:
            self.used_builtins.add(node.name)
            static = sum(1 for a in args if a.kind == "s")
            self.add_ops(static)
            for a in args:
                if a.kind == "a":
                    self.add_ops_code(f"{a.code}.size")
            self.flush_ops()
            result = self.tmp()
            call_args = ", ".join(a.code for a in args)
            self.line(f"{result} = _bi_{node.name}({call_args})")
            return _Val("s", result, True)
        if self.residual:
            raise _NotLowerable("transform call in where-clause")
        if any(a.kind != "a" for a in args):
            raise _NotLowerable("transform call with scalar arguments")
        self.uses_call = True
        result = self.tmp()
        call_args = ", ".join(a.code for a in args)
        self.line(
            f"{result} = _call({node.name!r}, [{call_args}]).to_numpy()"
        )
        return _Val("a", result)

    # -- statements --------------------------------------------------------

    def _compile_statement(self, stmt: ast.Statement) -> None:
        if not isinstance(stmt, ast.Assign):
            raise _NotLowerable(f"statement {type(stmt).__name__}")
        value = self._compile(stmt.value)
        if isinstance(stmt.target, ast.Var):
            name = stmt.target.name
            if name not in self.bindings:
                raise _NotLowerable(f"assignment to non-region {name!r}")
            region = self.bindings[name]
            if region.view_kind == "cell":
                self._store_scalar(self._cell_ref(region), stmt.op, value)
            else:
                self._store_array(f"_b_{name}", stmt.op, value)
            return
        if isinstance(stmt.target, ast.CellAccess):
            # The interpreter resolves the target *after* the value.
            target = self._compile_cell_access(stmt.target)
            # target.code is `_tN`; recover the indexed reference from the
            # emitted read line to store through the same element.
            read_line = self.lines.pop()
            ref = read_line.split(" = float(", 1)[1].rstrip(")")
            self._store_scalar(ref, stmt.op, value)
            return
        raise _NotLowerable("invalid assignment target")

    def _store_scalar(self, ref: str, op: str, value: _Val) -> None:
        if op == "=":
            self.line(f"{ref} = {self.scal(value)}")
            return
        current = self.tmp()
        self.line(f"{current} = float({ref})")
        if op == "/=":
            # Plain Python division: a zero operand raises
            # ZeroDivisionError exactly like the interpreter's 0-D path.
            self.line(f"{ref} = {current} / {self.scal(value)}")
        elif op in ("+=", "-=", "*="):
            self.line(f"{ref} = {current} {op[0]} {self.scal(value)}")
        else:
            raise _NotLowerable(f"assignment operator {op!r}")
        self.add_ops(1)

    def _store_array(self, ref: str, op: str, value: _Val) -> None:
        code = value.code
        if op == "=":
            self.line(f"{ref}[...] = {code}")
            return
        if op not in ("+=", "-=", "*=", "/="):
            raise _NotLowerable(f"assignment operator {op!r}")
        result = self.tmp()
        self.line(f"{result} = {ref} {op[0]} ({code})")
        self.add_ops_code(f"{ref}.size")
        self.line(f"{ref}[...] = {result}")

    # -- drivers -----------------------------------------------------------

    def lower_body(self) -> str:
        self.emit_bindings()
        for stmt in self.rule.body:
            self._compile_statement(stmt)
        self.flush_ops()
        return self._assemble(
            maker_name="_maker",
            maker_args="_env, _tunables, _arrays, _call",
            inner_name="_instance",
            footer="return _ops",
            counter_init=True,
        )

    def lower_residual(self) -> str:
        for cond in self.rule.residual_where:
            value = self._compile(cond)
            self.line(f"if {self.scal(value)} == 0:")
            self.line("    return False")
        self.line("return True")
        return self._assemble(
            maker_name="_residual_maker",
            maker_args="_env",
            inner_name="_residual",
            footer=None,
            counter_init=False,
        )

    def _assemble(
        self,
        maker_name: str,
        maker_args: str,
        inner_name: str,
        footer: Optional[str],
        counter_init: bool,
    ) -> str:
        out: List[str] = [f"def {maker_name}({maker_args}):"]
        for name in sorted(self.used_env):
            out.append(f"    _e_{name} = _env[{name!r}]")
        for name in sorted(self.used_tunables):
            out.append(f"    _u_{name} = _tunables[{name!r}]")
        for name in sorted(self.used_matrices):
            out.append(f"    _m_{name} = _arrays[{name!r}]")
        for matrix in sorted(self.used_dims):
            for dim in sorted(self.used_dims[matrix]):
                out.append(f"    _d_{matrix}_{dim} = _m_{matrix}.shape[{dim}]")
        out.extend(self.maker_lines)
        args = ", ".join(f"_s_{v}" for v in self.params)
        out.append(f"    def {inner_name}({args}):")
        if counter_init:
            out.append("        _ops = 0")
        out.extend(self.lines)
        if footer:
            out.append(f"        {footer}")
        out.append(f"    return {inner_name}")
        return "\n".join(out) + "\n"


def lower_rule(rule: RuleIR, transform: TransformIR) -> Optional[RuleKernel]:
    """Lower one instance rule to a :class:`RuleKernel`.

    Returns ``None`` when the rule has a native body, no DSL body, no rule
    variables, or uses a construct the lowerer cannot prove equivalent to
    the interpreter — the engine then interprets that rule as before.
    """
    if rule.native_body is not None or not rule.body:
        return None
    if not rule.is_instance_rule:
        return None
    try:
        lowerer = _Lowerer(rule, transform)
        source = lowerer.lower_body()
    except _NotLowerable:
        return None
    namespace = _base_namespace(lowerer.used_builtins)
    exec(  # noqa: S102 - compiling our own generated source
        compile(source, f"<kernel {transform.name}.{rule.label}>", "exec"),
        namespace,
    )
    residual_maker = None
    residual_source = ""
    if rule.residual_where:
        try:
            res_lowerer = _Lowerer(rule, transform, residual=True)
            residual_source = res_lowerer.lower_residual()
            res_namespace = _base_namespace(res_lowerer.used_builtins)
            exec(  # noqa: S102
                compile(
                    residual_source,
                    f"<residual {transform.name}.{rule.label}>",
                    "exec",
                ),
                res_namespace,
            )
            residual_maker = res_namespace["_residual_maker"]
        except _NotLowerable:
            residual_maker = None
            residual_source = ""
    return RuleKernel(
        params=tuple(rule.rule_vars),
        matrices=tuple(sorted(lowerer.used_matrices)),
        maker=namespace["_maker"],
        residual_maker=residual_maker,
        uses_call=lowerer.uses_call,
        source=source,
        residual_source=residual_source,
    )
