"""Per-(segment, rule, size-env) iteration geometry, precomputed once.

The engine used to re-solve the affine instance ranges, re-derive the
chain/free split, and re-materialize the instance product for every
segment application — at every recursion depth and for every chain step.
All of that is a pure function of ``(segment, rule, env)``, so it is
computed once and cached under :func:`geometry_key`; the engine counts
hits and misses through the ``exec.geom_cache_*`` observe counters.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

_MISSING = object()


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    Backs the engine's geometry and size-binding caches: both are keyed
    by input sizes, so a long-lived serve daemon that sees many distinct
    shapes would otherwise grow them without bound.  Lookups refresh
    recency; inserting past ``limit`` evicts the stalest entry and
    increments ``evictions`` (surfaced as ``exec.geom_cache_evictions``).
    """

    def __init__(self, limit: int):
        if limit < 1:
            raise ValueError(f"LRU limit must be >= 1, got {limit}")
        self.limit = limit
        self.evictions = 0
        self._data: OrderedDict = OrderedDict()

    def get(self, key, default=None):
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            return default
        self._data.move_to_end(key)
        return value

    def __setitem__(self, key, value) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.limit:
            self._data.popitem(last=False)
            self.evictions += 1

    def __contains__(self, key) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)


@dataclass
class Geometry:
    """Concrete iteration space of one instance rule in one segment.

    ``chain_vars`` iterate as sequential steps (directional, with a task
    barrier between steps); ``free_vars`` are the data-parallel variables
    within a step.  ``free_products`` is the materialized instance tuple
    list shared by every step (and every cached lookup), ordered exactly
    like the original per-application ``itertools.product``.
    """

    var_ranges: Dict[str, Tuple[int, int]]
    directions: Dict[str, int]
    var_order: Tuple[str, ...]
    chain_vars: Tuple[str, ...]
    free_vars: Tuple[str, ...]
    chain_value_lists: Tuple[Tuple[int, ...], ...]
    free_products: Tuple[Tuple[int, ...], ...]
    step_volume: int


def build_geometry(
    var_ranges: Mapping[str, Tuple[int, int]],
    directions: Mapping[str, int],
    var_order: Sequence[str],
) -> Geometry:
    """Build the geometry from the engine's range/direction analyses.

    Value ordering matches the engine exactly: ascending per variable,
    reversed when the dependency analysis demands a negative direction
    (free variables always have direction 0, hence always ascend).
    """
    chain_vars = tuple(v for v in var_order if directions.get(v, 0) != 0)
    free_vars = tuple(v for v in var_order if directions.get(v, 0) == 0)

    def values_of(var: str) -> Tuple[int, ...]:
        lo, hi = var_ranges[var]
        values: List[int] = list(range(lo, hi))
        if directions.get(var, 0) < 0:
            values.reverse()
        return tuple(values)

    chain_value_lists = tuple(values_of(v) for v in chain_vars)
    free_value_lists = tuple(values_of(v) for v in free_vars)
    # product() of zero ranges yields one empty tuple (the single
    # instance of a chain-only rule); an empty *range* yields none.
    free_products = tuple(itertools.product(*free_value_lists))
    return Geometry(
        var_ranges=dict(var_ranges),
        directions=dict(directions),
        var_order=tuple(var_order),
        chain_vars=chain_vars,
        free_vars=free_vars,
        chain_value_lists=chain_value_lists,
        free_products=free_products,
        step_volume=len(free_products),
    )


def geometry_key(
    segment_key: str, rule_id: int, env: Mapping[str, int]
) -> Tuple[str, int, Tuple[Tuple[str, int], ...]]:
    """Cache key: the geometry is a pure function of these three."""
    return (segment_key, rule_id, tuple(sorted(env.items())))
