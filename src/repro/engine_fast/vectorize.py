"""Vectorized leaf execution: one NumPy expression per data-parallel step.

When a rule body is straight-line elementwise arithmetic over affine
*cell* accesses and the dependency analysis has proved the free-variable
instances of a step independent (direction 0 in the depgraph — exactly the
instances the engine already runs as parallel block tasks), the entire
step can be executed as slice arithmetic over the backing arrays instead
of one closure/interpreter call per cell.

:func:`plan_vector_leaf` decides eligibility and compiles a
:class:`VectorPlan`; it returns ``(None, reason)`` otherwise, and the
reason string is what ``repro check`` surfaces as the PB502 diagnostic.

Legality argument (see DESIGN.md "Execution paths"):

* free variables have depgraph direction 0, i.e. the race/dependency
  analysis found no dependence between two instances of the same step —
  the same guarantee that lets the engine record them as sibling parallel
  tasks.  Executing them as one bulk array operation is just another
  serialization of an independent set;
* every write coordinate must cover every free variable with an integral
  stride and no variable coupling, so each (write-)slice is a bijection
  of the instance set — the bulk write hits exactly the cells the scalar
  loop would;
* reads may omit free variables (broadcast) or use negative strides
  (reversed slices); non-free dimensions lower to the same exact
  ceil-of-affine indices the interpreter computes.

IEEE-754 note: elementwise ``+ - * / %`` and the whitelisted builtins
(``abs``/``sqrt``/``floor``/``ceil``/``min``/``max``) are computed by
NumPy with the same double rounding as the scalar path, so results are
bit-identical for non-NaN data.  Builtins with library-dependent rounding
(``exp``/``log``/``pow``), stateful ``rand()``, short-circuit operators,
ternaries, region reductions, and ``/=`` (whose scalar path raises
``ZeroDivisionError``) are rejected rather than risk divergence.  A
``/`` by zero still raises the interpreter's ``EvalError``, but a failing
step leaves different partial state than the cell-by-cell loop — error
paths abort the run either way.

Batch axis (``repro.batch``): with ``batch=True`` the same lowering is
planned one axis wider — every matrix operand carries a leading *batch*
dimension stacking B same-shaped requests, so one slice expression
serves the whole bucket.  The batch axis is a pure broadcast axis: index
expressions, strides, and bounds checks are functions of the (shared)
size environment only, so the batched step computes, per batch lane,
exactly the bytes the unbatched step computes — elementwise IEEE ops
have no cross-lane interaction.  ``_vdiv``'s zero check spans the whole
stack; a division by zero anywhere demotes the *bucket* to per-request
execution (see :mod:`repro.batch.engine`), which reproduces the failing
request's exact serial error without poisoning its neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.language import ast_nodes as ast
from repro.language.interp import EvalError
from repro.symbolic import Affine

if TYPE_CHECKING:  # typing only — keeps engine_fast free of compiler deps
    from repro.compiler.ir import RegionIR, RuleIR, TransformIR

__all__ = ["VECTOR_STABLE_CALLS", "VectorPlan", "plan_vector_leaf"]

#: builtins whose NumPy lowering is bit-identical to the scalar path.
_VECTOR_BUILTINS = {
    "abs": "np.abs",
    "sqrt": "np.sqrt",
    "floor": "np.floor",
    "ceil": "np.ceil",
}

#: every call name whose vector lowering matches the scalar path exactly
#: (the builtins above plus the variadic min/max reductions).  The fusion
#: legality gate (repro.analysis.depend) only inlines producer bodies
#: built from these, so a fused body stays on the same numeric ops.
VECTOR_STABLE_CALLS = frozenset(_VECTOR_BUILTINS) | {"min", "max"}


# -- runtime helpers -------------------------------------------------------


def _sl(first: int, step: int, count: int) -> slice:
    """The slice selecting ``first, first+step, ...`` (``count`` items)."""
    stop = first + step * count
    if step > 0:
        return slice(first, stop, step)
    return slice(first, stop if stop >= 0 else None, step)


def _vdiv(left, right):
    right = np.asarray(right)
    if (right == 0).any():
        raise EvalError("division by zero in rule body")
    return left / right


def _vmin(*args):
    # Not np.minimum: on signed-zero ties it keeps its SECOND operand,
    # while Python's min (the interpreter semantics) keeps the first.
    # np.where(arg < result, ...) keeps the earliest minimum, matching
    # the builtin bit-for-bit (including -0.0/+0.0 and NaN ordering).
    result = np.asarray(args[0])
    for arg in args[1:]:
        result = np.where(np.less(arg, result), arg, result)
    return result


def _vmax(*args):
    result = np.asarray(args[0])
    for arg in args[1:]:
        result = np.where(np.greater(arg, result), arg, result)
    return result


_ALL = slice(None)


def _base_namespace() -> Dict[str, object]:
    return {
        "np": np,
        "_sl": _sl,
        "_vdiv": _vdiv,
        "_vmin": _vmin,
        "_vmax": _vmax,
        "_ALL": _ALL,
    }


@dataclass
class VectorPlan:
    """A compiled vector leaf for one (segment, rule) pair.

    ``maker(env, tunables, arrays)`` returns a step function taking the
    chain-variable values followed by ``(lo, count)`` per free variable;
    one call executes the whole data-parallel step.  ``static_ops`` is the
    interpreter's exact per-instance op count (the body is branch-free, so
    it is a constant), used by the engine's work model.

    The ``(lo, count)`` calling convention is also the tiling contract:
    cache-blocked execution (``__tile_i__``/``__tile_j__`` on a
    PB604-legal site) calls the *same* step function once per tile with
    a sub-range of each free variable — the generated slices are affine
    in ``lo``/``count``, so any partition of the free space computes
    exactly the cells the full-step call would, in tile-sized pieces.
    No separate tiled kernel exists; only the engine's driver loop
    changes (see ``_run_tiled_vector_steps`` in the codegen module).
    """

    chain_vars: Tuple[str, ...]
    free_vars: Tuple[str, ...]
    static_ops: int
    matrices: Tuple[str, ...]
    maker: Callable
    source: str
    #: planned for arrays with a leading batch axis (``repro.batch``)
    batch: bool = False


class _NotVectorizable(Exception):
    """Internal: carries the human-readable rejection reason."""


class _VectorLowerer:
    def __init__(
        self,
        transform: TransformIR,
        rule: RuleIR,
        chain_vars: Sequence[str],
        free_vars: Sequence[str],
        batch: bool = False,
    ) -> None:
        self.transform = transform
        self.rule = rule
        self.batch = batch
        self.chain_vars = tuple(chain_vars)
        self.free_vars = tuple(free_vars)
        self.free_set = set(free_vars)
        self.chain_set = set(chain_vars)
        self.lines: List[str] = []
        self.used_env: Set[str] = set()
        self.used_tunables: Set[str] = set()
        self.used_matrices: Set[str] = set()
        self.used_dims: Dict[str, Set[int]] = {}
        self.used_axis_vars: Set[str] = set()
        self.tunable_names = {t.name for t in transform.tunables}
        self.bindings: Dict[str, RegionIR] = {}
        for region in rule.all_regions:
            self.bindings[region.bind_name] = region
        self.writable = {r.bind_name for r in rule.to_regions}
        self.static_ops = 0

    # -- helpers -----------------------------------------------------------

    def line(self, text: str) -> None:
        self.lines.append("        " + text)

    def _dim_ref(self, matrix: str, dim: int) -> str:
        self.used_matrices.add(matrix)
        self.used_dims.setdefault(matrix, set()).add(dim)
        return f"_d_{matrix}_{dim}"

    def _scalar_affine(self, expr: Affine) -> str:
        """Integer ceil-lowering of an affine over chain/size vars only."""
        lcm = expr.denominator_lcm()
        parts: List[str] = []
        constant = expr.constant * lcm
        if constant or not expr.coefficients:
            parts.append(str(int(constant)))
        for var, coeff in sorted(expr.coefficients.items()):
            scaled = coeff * lcm
            if scaled.denominator != 1:
                raise _NotVectorizable(
                    f"non-integral coefficient in coordinate {expr}"
                )
            if var in self.chain_set:
                name = f"_s_{var}"
            else:
                self.used_env.add(var)
                name = f"_e_{var}"
            parts.append(f"{int(scaled)} * {name}")
        code = " + ".join(parts)
        if lcm == 1:
            return f"({code})"
        return f"(-((-({code})) // {lcm}))"

    # -- region operands ---------------------------------------------------

    def emit_regions(self) -> None:
        """Lower every binding to an aligned array operand.

        Kept axes are transposed into canonical free-variable order and
        missing free variables become broadcast (``None``) axes; writes
        must keep every axis, so the write slice is a bijection of the
        instance set.
        """
        for region in self.rule.all_regions:
            name = region.bind_name
            if region.view_kind != "cell":
                raise _NotVectorizable(
                    f"binding {name!r} is a {region.view_kind} view "
                    f"(only cell reads/writes vectorize)"
                )
            mat = region.matrix
            self.used_matrices.add(mat)
            present: List[str] = []  # free var per kept axis, in dim order
            index_parts: List[str] = []
            checks: List[str] = []
            for dim, interval in enumerate(region.box.intervals):
                expr = interval.lo
                frees = [
                    v for v in expr.variables() if v in self.free_set
                ]
                if len(frees) > 1:
                    raise _NotVectorizable(
                        f"coordinate {expr} couples parallel variables"
                    )
                extent = self._dim_ref(mat, dim)
                if not frees:
                    ref = f"_x_{name}_{dim}"
                    self.line(f"{ref} = {self._scalar_affine(expr)}")
                    checks.append(f"0 <= {ref} < {extent}")
                    index_parts.append(ref)
                    continue
                var = frees[0]
                if var in present:
                    raise _NotVectorizable(
                        f"variable {var!r} appears in multiple "
                        f"dimensions of {name!r}"
                    )
                coeff = expr.coefficient(var)
                if coeff.denominator != 1:
                    raise _NotVectorizable(
                        f"non-integer stride for {var!r} in {expr}"
                    )
                step = int(coeff)
                rest = expr - Affine(0, {var: coeff})
                first = f"_f_{name}_{dim}"
                last = f"_l_{name}_{dim}"
                self.line(
                    f"{first} = {self._scalar_affine(rest)} "
                    f"+ {step} * _lo_{var}"
                )
                self.line(f"{last} = {first} + {step} * (_cnt_{var} - 1)")
                checks.append(f"0 <= {first} < {extent}")
                checks.append(f"0 <= {last} < {extent}")
                index_parts.append(f"_sl({first}, {step}, _cnt_{var})")
                present.append(var)
            if checks:
                self.line(f"if not ({' and '.join(checks)}):")
                self.line(
                    f"    raise IndexError('{self.transform.name}."
                    f"{self.rule.label}: binding {name} outside view')"
                )
            if name in self.writable and set(present) != self.free_set:
                missing = sorted(self.free_set - set(present))
                raise _NotVectorizable(
                    f"write coordinates of {name!r} do not cover "
                    f"parallel variable(s) {', '.join(missing)}"
                )
            if self.batch:
                index_parts.insert(0, "_ALL")
            self.line(f"_b_{name} = _m_{mat}[{', '.join(index_parts)}]")
            if present:
                wanted = [v for v in self.free_vars if v in present]
                perm = tuple(present.index(v) for v in wanted)
                if perm != tuple(range(len(perm))):
                    if self.batch:
                        # Axis 0 is the batch axis; kept axes shift by 1.
                        shifted = (0,) + tuple(p + 1 for p in perm)
                        self.line(
                            f"_b_{name} = _b_{name}.transpose({shifted})"
                        )
                    else:
                        self.line(
                            f"_b_{name} = _b_{name}.transpose({perm})"
                        )
            if len(present) != len(self.free_vars):
                expander = ", ".join(
                    "_ALL" if v in present else "None"
                    for v in self.free_vars
                )
                if self.batch:
                    # Without free axes a batched operand is shape (B,):
                    # right-aligned broadcasting would bind B to the
                    # innermost free axis, so the expander is mandatory
                    # (the batch axis stays leftmost, missing free axes
                    # become explicit broadcast axes).
                    self.line(f"_b_{name} = _b_{name}[_ALL, {expander}, ]")
                elif present:
                    # Unbatched scalar reads (present empty) broadcast
                    # as 0-d arrays without help, matching the original
                    # generated source byte-for-byte.
                    self.line(f"_b_{name} = _b_{name}[{expander}, ]")

    def _axis_ref(self, var: str) -> str:
        """A broadcastable float64 coordinate array for a free variable
        referenced by value in the body (e.g. ``b = i * 2``)."""
        self.used_axis_vars.add(var)
        return f"_ax_{var}"

    def emit_axis_arrays(self) -> None:
        axis_lines: List[str] = []
        for var in self.free_vars:
            if var not in self.used_axis_vars:
                continue
            position = self.free_vars.index(var)
            shape = ", ".join(
                "-1" if v == var else "1" for v in self.free_vars
            )
            axis_lines.append(
                "        "
                + f"_ax_{var} = np.arange(_lo_{var}, _lo_{var} "
                + f"+ _cnt_{var}, dtype=np.float64).reshape(({shape},))"
            )
        # Axis arrays depend only on the step parameters, so they can
        # lead the step body (region operands never reference them).
        self.lines[0:0] = axis_lines

    # -- expressions -------------------------------------------------------

    def _expr(self, node: ast.ExprNode) -> str:
        if isinstance(node, ast.Num):
            return repr(float(node.value))
        if isinstance(node, ast.Var):
            name = node.name
            if name in self.bindings:
                return f"_b_{name}"
            if name in self.tunable_names:
                self.used_tunables.add(name)
                return f"_u_{name}"
            if name in self.free_set:
                return self._axis_ref(name)
            if name in self.chain_set:
                return f"_s_{name}"
            if name in self.transform.size_vars:
                self.used_env.add(name)
                return f"_e_{name}"
            raise _NotVectorizable(f"unknown name {name!r} in rule body")
        if isinstance(node, ast.UnaryOp):
            operand = self._expr(node.operand)
            self.static_ops += 1
            if node.op == "-":
                return f"(-({operand}))"
            if node.op == "!":
                return f"np.where(np.asarray({operand}) != 0, 0.0, 1.0)"
            raise _NotVectorizable(f"unary operator {node.op!r}")
        if isinstance(node, ast.BinOp):
            if node.op in ("&&", "||"):
                raise _NotVectorizable(
                    "short-circuit logical operator in body"
                )
            left = self._expr(node.left)
            right = self._expr(node.right)
            self.static_ops += 1
            if node.op in ("+", "-", "*"):
                return f"(({left}) {node.op} ({right}))"
            if node.op == "/":
                return f"_vdiv({left}, {right})"
            if node.op == "%":
                return f"np.fmod({left}, {right})"
            if node.op in ("==", "!=", "<", "<=", ">", ">="):
                return f"((({left}) {node.op} ({right})) * 1.0)"
            raise _NotVectorizable(f"operator {node.op!r}")
        if isinstance(node, ast.Ternary):
            raise _NotVectorizable("ternary in body")
        if isinstance(node, ast.CellAccess):
            raise _NotVectorizable("computed cell access in body")
        if isinstance(node, ast.Call):
            if node.name in ("min", "max"):
                args = [self._expr(a) for a in node.args]
                self.static_ops += len(args)
                fn = "_vmin" if node.name == "min" else "_vmax"
                return f"{fn}({', '.join(args)})"
            if node.name in _VECTOR_BUILTINS:
                args = [self._expr(a) for a in node.args]
                self.static_ops += len(args)
                return f"{_VECTOR_BUILTINS[node.name]}({', '.join(args)})"
            raise _NotVectorizable(
                f"builtin {node.name!r} is not bit-stable under "
                f"vectorization"
            )
        raise _NotVectorizable(f"expression {type(node).__name__}")

    # -- statements --------------------------------------------------------

    def emit_body(self) -> None:
        for stmt in self.rule.body:
            if not isinstance(stmt, ast.Assign):
                raise _NotVectorizable(
                    f"statement {type(stmt).__name__}"
                )
            if not isinstance(stmt.target, ast.Var):
                raise _NotVectorizable("computed assignment target")
            name = stmt.target.name
            if name not in self.writable:
                raise _NotVectorizable(
                    f"assignment to non-output binding {name!r}"
                )
            value = self._expr(stmt.value)
            target = f"_b_{name}"
            if stmt.op == "=":
                self.line(f"{target}[...] = {value}")
            elif stmt.op in ("+=", "-=", "*="):
                self.static_ops += 1  # target is a cell: size 1
                self.line(f"{target}[...] = {target} {stmt.op[0]} ({value})")
            else:
                raise _NotVectorizable(
                    f"assignment operator {stmt.op!r}"
                )

    # -- assembly ----------------------------------------------------------

    def assemble(self) -> str:
        out: List[str] = ["def _maker(_env, _tunables, _arrays):"]
        for name in sorted(self.used_env):
            out.append(f"    _e_{name} = _env[{name!r}]")
        for name in sorted(self.used_tunables):
            out.append(f"    _u_{name} = _tunables[{name!r}]")
        for name in sorted(self.used_matrices):
            out.append(f"    _m_{name} = _arrays[{name!r}]")
        axis_shift = 1 if self.batch else 0
        for matrix in sorted(self.used_dims):
            for dim in sorted(self.used_dims[matrix]):
                out.append(
                    f"    _d_{matrix}_{dim} = "
                    f"_m_{matrix}.shape[{dim + axis_shift}]"
                )
        params = [f"_s_{v}" for v in self.chain_vars]
        for var in self.free_vars:
            params.extend((f"_lo_{var}", f"_cnt_{var}"))
        out.append(f"    def _step({', '.join(params)}):")
        out.extend(self.lines)
        out.append("    return _step")
        return "\n".join(out) + "\n"


def plan_vector_leaf(
    transform: TransformIR,
    rule: RuleIR,
    directions: Dict[str, int],
    var_order: Sequence[str],
    has_fallback: bool = False,
    batch: bool = False,
) -> Tuple[Optional[VectorPlan], str]:
    """Compile a vector leaf for ``rule``, or explain why it cannot be.

    ``directions``/``var_order`` come from the engine's dependency
    analysis for the (segment, rule) pair (``_var_directions``); the
    canonical query is :func:`repro.analysis.races.vector_leaf_status`.
    Returns ``(plan, "")`` on success, else ``(None, reason)``.

    With ``batch=True`` the maker expects every matrix in ``arrays`` to
    carry a leading batch axis of one common extent; eligibility is
    unchanged (the batch axis adds no dependence), so a rule is
    batch-stackable exactly when it is vectorizable.
    """
    if rule.native_body is not None or not rule.body:
        return None, "native (Python) rule body"
    if not rule.is_instance_rule:
        return None, "whole-region rule (no instance space)"
    if has_fallback or rule.residual_where:
        return None, "meta-rule with a where-clause fallback"
    chain_vars = [v for v in var_order if directions.get(v, 0) != 0]
    free_vars = [v for v in var_order if directions.get(v, 0) == 0]
    if not free_vars:
        return (
            None,
            "no data-parallel variables; instances form a sequential chain",
        )
    lowerer = _VectorLowerer(transform, rule, chain_vars, free_vars, batch)
    try:
        lowerer.emit_regions()
        lowerer.emit_body()
        lowerer.emit_axis_arrays()
        source = lowerer.assemble()
    except _NotVectorizable as reason:
        return None, str(reason)
    namespace = _base_namespace()
    tag = "vector-batch" if batch else "vector"
    exec(  # noqa: S102 - compiling our own generated source
        compile(
            source, f"<{tag} {transform.name}.{rule.label}>", "exec"
        ),
        namespace,
    )
    plan = VectorPlan(
        chain_vars=tuple(chain_vars),
        free_vars=tuple(free_vars),
        static_ops=lowerer.static_ops,
        matrices=tuple(sorted(lowerer.used_matrices)),
        maker=namespace["_maker"],
        source=source,
        batch=batch,
    )
    return plan, ""
