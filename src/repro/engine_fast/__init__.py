"""Lowered execution paths for rule bodies (the "generated code" layer).

The paper's compiler emits compiled C++ per rule; this reproduction keeps
the rule-body language interpreted by default but adds two lowered paths
that the engine can select per transform (a real algorithmic choice, tuned
like any other):

* ``LEAF_INTERP`` (0) — the reference tree-walking interpreter in
  :mod:`repro.language.interp`.  Always available, always correct.
* ``LEAF_CLOSURE`` (1) — :mod:`repro.engine_fast.closure` generates Python
  source from the body AST once per rule at compile time and ``exec``\\ s it
  into a closure; per-instance cost drops from a tree walk plus dict/view
  churn to one direct call.  Bit-for-bit identical to the interpreter,
  including work accounting, so it is the default.
* ``LEAF_VECTOR`` (2) — :mod:`repro.engine_fast.vectorize` executes a whole
  data-parallel step as NumPy slice arithmetic when the body is
  straight-line elementwise math over affine cell accesses and the
  dependency analysis proves the free-variable instances independent.

:mod:`repro.engine_fast.geometry` caches the per-(segment, rule, size-env)
iteration geometry so affine bounds are not re-solved per application.
"""

from repro.engine_fast.closure import RuleKernel, lower_rule
from repro.engine_fast.geometry import (
    Geometry,
    LRUCache,
    build_geometry,
    geometry_key,
)
from repro.engine_fast.vectorize import VectorPlan, plan_vector_leaf

#: leaf-path tunable values (``"{Transform}.__leaf_path__"``).
LEAF_INTERP = 0
LEAF_CLOSURE = 1
LEAF_VECTOR = 2

LEAF_PATH_NAMES = {
    LEAF_INTERP: "interp",
    LEAF_CLOSURE: "closure",
    LEAF_VECTOR: "vector",
}

__all__ = [
    "Geometry",
    "LRUCache",
    "LEAF_CLOSURE",
    "LEAF_INTERP",
    "LEAF_PATH_NAMES",
    "LEAF_VECTOR",
    "RuleKernel",
    "VectorPlan",
    "build_geometry",
    "geometry_key",
    "lower_rule",
    "plan_vector_leaf",
]
