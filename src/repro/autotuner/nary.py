"""N-ary search for scalar tunables (paper §3.3).

PetaBricks tunes cutoffs, block sizes, and user tunables with an n-ary
search: probe ``n`` geometrically spaced values across the range, narrow
the range around the best probe, repeat until converged.  Cutoff-style
parameters have smooth unimodal-ish cost curves, so this converges in a
handful of rounds with far fewer evaluations than a full sweep.

Each round's probe set is known before any probe is evaluated, so the
search optionally takes a ``batch_objective`` that scores a whole list
of values at once — the hook the parallel candidate-evaluation engine
(:mod:`repro.autotuner.parallel`) uses to fan probes out over a process
pool.  The probe sequence, narrowing decisions, and result are identical
with and without the hook.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple


def _probe_points(lo: int, hi: int, arity: int) -> List[int]:
    """At most ``arity`` distinct integers spanning [lo, hi] geometrically.

    Degenerate cases: an empty or single-point range yields ``[lo]``;
    ``arity < 2`` cannot space interior probes, so it degrades to
    endpoint probing ``[lo, hi]``.
    """
    if lo < 0:
        raise ValueError("n-ary search operates on non-negative ranges")
    if hi <= lo:
        return [lo]
    if arity < 2:
        return [lo, hi]
    if lo == 0:
        # Zero breaks geometric spacing (binary knobs like __fuse__,
        # zero-based user tunables): probe it explicitly and space the
        # remaining probes over [1, hi].
        return sorted({0, *_probe_points(1, hi, max(1, arity - 1))})
    points = set()
    ratio = (hi / lo) ** (1.0 / (arity - 1))
    value = float(lo)
    for _ in range(arity):
        points.add(int(round(value)))
        value *= ratio
    points.add(lo)
    points.add(hi)
    return sorted(p for p in points if lo <= p <= hi)


def nary_search(
    objective: Callable[[int], float],
    lo: int,
    hi: int,
    arity: int = 4,
    rounds: int = 4,
    batch_objective: Optional[
        Callable[[Sequence[int]], Sequence[float]]
    ] = None,
) -> Tuple[int, float]:
    """Minimize ``objective`` over integers in [lo, hi].

    Returns ``(best_value, best_cost)``.  ``objective`` is called at most
    ``arity * rounds`` times (plus boundary probes); repeated values are
    memoized.  When ``batch_objective`` is given it is called once per
    round with the not-yet-memoized probe values (in ascending order) and
    must return one cost per value; ``objective`` is then never called.
    """
    if hi < lo:
        raise ValueError(f"empty range [{lo}, {hi}]")
    cache = {}

    def evaluate_many(values: Sequence[int]) -> List[float]:
        missing = [v for v in values if v not in cache]
        if missing:
            if batch_objective is not None:
                costs = batch_objective(missing)
                if len(costs) != len(missing):
                    raise ValueError(
                        f"batch objective returned {len(costs)} costs "
                        f"for {len(missing)} values"
                    )
                cache.update(zip(missing, costs))
            else:
                for value in missing:
                    cache[value] = objective(value)
        return [cache[v] for v in values]

    def evaluate(value: int) -> float:
        return evaluate_many([value])[0]

    cur_lo, cur_hi = lo, hi
    best_value, best_cost = lo, evaluate(lo)
    for _ in range(rounds):
        points = _probe_points(cur_lo, cur_hi, arity)
        scored = sorted(zip(evaluate_many(points), points))
        cost, value = scored[0]
        if cost < best_cost:
            best_cost, best_value = cost, value
        if len(points) <= 2:
            break
        # Narrow to the neighbourhood of the best probe.
        index = points.index(value)
        cur_lo = points[max(0, index - 1)]
        cur_hi = points[min(len(points) - 1, index + 1)]
        if cur_hi - cur_lo <= 1:
            break
    # Final local polish, only when the remaining range is small enough
    # to sweep exhaustively.
    if cur_hi - cur_lo <= 16:
        sweep = list(range(cur_lo, cur_hi + 1))
        for cost, value in zip(evaluate_many(sweep), sweep):
            if cost < best_cost:
                best_cost, best_value = cost, value
    return best_value, best_cost
