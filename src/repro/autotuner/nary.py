"""N-ary search for scalar tunables (paper §3.3).

PetaBricks tunes cutoffs, block sizes, and user tunables with an n-ary
search: probe ``n`` geometrically spaced values across the range, narrow
the range around the best probe, repeat until converged.  Cutoff-style
parameters have smooth unimodal-ish cost curves, so this converges in a
handful of rounds with far fewer evaluations than a full sweep.
"""

from __future__ import annotations

import math
from typing import Callable, List, Tuple


def _probe_points(lo: int, hi: int, arity: int) -> List[int]:
    """``arity`` distinct integers spanning [lo, hi] geometrically."""
    if lo < 1:
        raise ValueError("n-ary search operates on positive ranges")
    if hi <= lo:
        return [lo]
    points = set()
    ratio = (hi / lo) ** (1.0 / (arity - 1))
    value = float(lo)
    for _ in range(arity):
        points.add(int(round(value)))
        value *= ratio
    points.add(lo)
    points.add(hi)
    return sorted(p for p in points if lo <= p <= hi)


def nary_search(
    objective: Callable[[int], float],
    lo: int,
    hi: int,
    arity: int = 4,
    rounds: int = 4,
) -> Tuple[int, float]:
    """Minimize ``objective`` over integers in [lo, hi].

    Returns ``(best_value, best_cost)``.  ``objective`` is called at most
    ``arity * rounds`` times (plus boundary probes); repeated values are
    memoized.
    """
    if hi < lo:
        raise ValueError(f"empty range [{lo}, {hi}]")
    cache = {}

    def evaluate(value: int) -> float:
        if value not in cache:
            cache[value] = objective(value)
        return cache[value]

    cur_lo, cur_hi = lo, hi
    best_value, best_cost = lo, evaluate(lo)
    for _ in range(rounds):
        points = _probe_points(cur_lo, cur_hi, arity)
        scored = sorted((evaluate(p), p) for p in points)
        cost, value = scored[0]
        if cost < best_cost:
            best_cost, best_value = cost, value
        if len(points) <= 2:
            break
        # Narrow to the neighbourhood of the best probe.
        index = points.index(value)
        cur_lo = points[max(0, index - 1)]
        cur_hi = points[min(len(points) - 1, index + 1)]
        if cur_hi - cur_lo <= 1:
            break
    # Final local polish, only when the remaining range is small enough
    # to sweep exhaustively.
    if cur_hi - cur_lo <= 16:
        for value in range(cur_lo, cur_hi + 1):
            cost = evaluate(value)
            if cost < best_cost:
                best_cost, best_value = cost, value
    return best_value, best_cost
