"""Candidate algorithms and mutation operators.

A candidate is a full :class:`ChoiceConfig`.  Following §3.3:

* the population is **seeded with all single-algorithm implementations**
  — for every option index, a config that statically picks that option
  (at every site that has it);
* **adding a level**: a candidate tuned up to input size ``s`` is
  extended by keeping its current selector below ``s`` and switching to
  a different option at and above ``s``; recursive rules then bottom out
  into the already-tuned smaller-size behaviour, which is exactly how
  hybrid compositions (e.g. quicksort over insertion sort) are built
  incrementally from the bottom up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compiler.codegen import CompiledTransform
from repro.compiler.config import ChoiceConfig, Selector


@dataclass
class Candidate:
    """A configuration with bookkeeping for the tuner."""

    config: ChoiceConfig
    lineage: str = "seed"
    last_time: float = float("inf")

    def clone(self, lineage: str) -> "Candidate":
        return Candidate(
            config=ChoiceConfig(
                dict(self.config.choices), dict(self.config.tunables)
            ),
            lineage=lineage,
        )

    def signature(self) -> str:
        return self.config.to_json()


def choice_sites(transform: CompiledTransform) -> List[Tuple[str, int]]:
    """(site key, option count) for every choice site of a transform."""
    return [
        (key, len(segment.options))
        for key, segment in transform.choice_sites()
    ]


def seed_population(
    transforms: Sequence[CompiledTransform],
    base_tunables: Optional[Dict[str, int]] = None,
) -> List[Candidate]:
    """All single-algorithm implementations across the given transforms.

    Candidate ``k`` statically selects option ``min(k, options-1)`` at
    every site; the number of seeds is the maximum option count anywhere.
    Only seeds that are *safe* (terminating) are the tuner's concern —
    seeds that always recurse will fail evaluation and be culled, exactly
    like a nonviable member of a genetic population.
    """
    max_options = 1
    sites: List[Tuple[str, int]] = []
    for transform in transforms:
        for key, count in choice_sites(transform):
            sites.append((key, count))
            max_options = max(max_options, count)

    seeds: List[Candidate] = []
    for option in range(max_options):
        config = ChoiceConfig()
        for key, count in sites:
            config.set_choice(key, Selector.static(min(option, count - 1)))
        if base_tunables:
            for name, value in base_tunables.items():
                config.set_tunable(name, value)
        seeds.append(Candidate(config=config, lineage=f"seed{option}"))
    return seeds


def add_level(
    candidate: Candidate, site: str, option: int, threshold: int
) -> Optional[Candidate]:
    """Extend ``candidate`` with a new top level at ``site``.

    Sizes below ``threshold`` keep the candidate's existing behaviour;
    sizes at or above switch to ``option``.  Returns None when the
    mutation is a no-op (the top level already picks ``option``) or when
    the threshold does not extend the selector monotonically.
    """
    selector = candidate.config.choice_for(site)
    if selector is None:
        selector = Selector.static(0)
    top_option = selector.levels[-1][1]
    if top_option == option:
        return None
    prior = [lvl for lvl in selector.levels[:-1]]
    if prior and prior[-1][0] is not None and prior[-1][0] >= threshold:
        return None  # would not be monotonically increasing
    new_levels = tuple(prior) + ((threshold, top_option), (None, option))
    mutated = candidate.clone(
        lineage=f"{candidate.lineage}+{site}@{threshold}->{option}"
    )
    mutated.config.set_choice(site, Selector(new_levels))
    return mutated


def set_tunable(candidate: Candidate, name: str, value: int) -> Candidate:
    mutated = candidate.clone(lineage=f"{candidate.lineage} {name}={value}")
    mutated.config.set_tunable(name, value)
    return mutated


def dedupe(candidates: Sequence[Candidate]) -> List[Candidate]:
    """Drop candidates with identical configurations (first wins)."""
    seen: Dict[str, bool] = {}
    unique: List[Candidate] = []
    for candidate in candidates:
        signature = candidate.signature()
        if signature not in seen:
            seen[signature] = True
            unique.append(candidate)
    return unique
