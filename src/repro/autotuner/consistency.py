"""Automated consistency checking (paper §3.5).

Having multiple implementations of the same problem lets the system check
the algorithms against each other: with a fixed input, every candidate
single-algorithm configuration must produce the same output (within a
threshold, for iterative/approximate methods).  This runs alongside
autotuning when enabled, concentrating testing on the choices the tuner
actually explores.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.compiler.codegen import CompiledProgram
from repro.compiler.config import ChoiceConfig

from repro.autotuner.candidates import seed_population
from repro.autotuner.evaluation import InputGenerator


class ConsistencyError(AssertionError):
    """Two candidate algorithms disagree beyond the threshold."""


def check_consistency(
    program: CompiledProgram,
    transform: str,
    input_generator: InputGenerator,
    sizes: Sequence[int],
    threshold: float = 0.0,
    extra_configs: Sequence[ChoiceConfig] = (),
    seed: int = 0xC0DE,
) -> Dict[int, int]:
    """Check all single-algorithm configs (plus ``extra_configs``) agree.

    Returns {size: number of configurations compared}.  Raises
    :class:`ConsistencyError` with the offending pair on disagreement.
    Non-terminating configurations are skipped (they are nonviable, not
    inconsistent).
    """
    target = program.transform(transform)
    candidates = seed_population([target])
    configs: List[ChoiceConfig] = [c.config for c in candidates]
    configs.extend(extra_configs)

    compared: Dict[int, int] = {}
    for size in sizes:
        rng = random.Random(seed * 1000003 + size)
        inputs = input_generator(size, rng)
        reference: Optional[Dict[str, np.ndarray]] = None
        reference_label = ""
        count = 0
        for index, config in enumerate(configs):
            try:
                result = target.run(inputs, config)
            except Exception:
                continue  # nonviable configuration
            outputs = {
                name: np.array(matrix.data, copy=True)
                for name, matrix in result.outputs.items()
            }
            count += 1
            if reference is None:
                reference = outputs
                reference_label = f"config{index}"
                continue
            for name, expected in reference.items():
                got = outputs[name]
                if got.shape != expected.shape:
                    raise ConsistencyError(
                        f"{transform}@{size}: output {name!r} shape "
                        f"{got.shape} (config{index}) vs {expected.shape} "
                        f"({reference_label})"
                    )
                error = float(np.max(np.abs(got - expected))) if got.size else 0.0
                if error > threshold:
                    raise ConsistencyError(
                        f"{transform}@{size}: output {name!r} differs by "
                        f"{error:g} (> {threshold:g}) between "
                        f"{reference_label} and config{index}"
                    )
        compared[size] = count
    return compared
