"""Variable-accuracy autotuning support (paper §4.1.3-4.1.4).

For algorithms with a time/accuracy trade-off (the multigrid Poisson
solver), the tuner keeps, instead of one optimal algorithm per input
size, a *set*: the fastest algorithm achieving at least ``p_i`` for each
accuracy level in a discrete bin list (the paper uses
``{10, 10^3, 10^5, 10^7, 10^9}``).

``accuracy`` follows the paper's definition: the ratio of input RMS
error to output RMS error, so higher is better and one multigrid V-cycle
multiplies accuracies roughly independently of absolute error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generic, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

T = TypeVar("T")

#: The discrete accuracy levels used for the Poisson benchmark.
PAPER_ACCURACY_BINS: Tuple[float, ...] = (1e1, 1e3, 1e5, 1e7, 1e9)


@dataclass(frozen=True)
class Scored(Generic[T]):
    """A candidate with its measured time and achieved accuracy."""

    candidate: T
    time: float
    accuracy: float


def accuracy_ratio(
    input_error_rms: float, output_error_rms: float
) -> float:
    """Paper §4.1.3: accuracy = RMS error of input / RMS error of output."""
    if output_error_rms <= 0:
        return float("inf")
    return input_error_rms / output_error_rms


def rms(values: np.ndarray) -> float:
    if values.size == 0:
        return 0.0
    return float(np.sqrt(np.mean(np.square(values))))


def pareto_front(scored: Sequence[Scored]) -> List[Scored]:
    """Candidates not dominated in both accuracy and time (the square
    markers of Figure 9a).  Lower time and higher accuracy are better."""
    ordered = sorted(scored, key=lambda s: (s.time, -s.accuracy))
    front: List[Scored] = []
    best_accuracy = -float("inf")
    for entry in ordered:
        if entry.accuracy > best_accuracy:
            front.append(entry)
            best_accuracy = entry.accuracy
    return front


def fastest_per_bin(
    scored: Sequence[Scored],
    bins: Sequence[float] = PAPER_ACCURACY_BINS,
) -> Dict[float, Optional[Scored]]:
    """For each accuracy level, the fastest candidate achieving at least
    it (the solid squares of Figure 9a); None when no candidate reaches
    the level."""
    result: Dict[float, Optional[Scored]] = {}
    for level in bins:
        achieving = [s for s in scored if s.accuracy >= level]
        result[level] = (
            min(achieving, key=lambda s: s.time) if achieving else None
        )
    return result
