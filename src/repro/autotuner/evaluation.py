"""The autotuner's objective function.

``Evaluator.time(config, size)`` executes the target transform on a
generated input of the requested size, records the task graph, and
simulates it on the target machine with the work-stealing scheduler.
Autotuning is therefore performed "on the target system" exactly as in
the paper — here the target system is a simulated architecture profile,
which keeps the objective deterministic and lets the benchmark suite
retune for Mobile/Xeon/Niagara without the hardware.

Measurements are cached by (configuration signature, size) and averaged
over ``trials`` generated inputs.  Each individual measurement is a pure
function of ``(seed, configuration signature, size, trial)``: both the
input data and the scheduler's victim-selection RNG are derived from
that tuple alone, never from evaluator state, so measurements are
order-independent — evaluating candidates interleaved, repeated,
reordered, or fanned out across worker processes (see
:mod:`repro.autotuner.parallel`) yields identical values.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional, Sequence, Tuple, Union

from repro.compiler.codegen import CompiledProgram, CompiledTransform, RunResult
from repro.compiler.config import ChoiceConfig
from repro.runtime.machine import Machine
from repro.runtime.scheduler import ScheduleResult, WorkStealingScheduler

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.observe.trace import TraceSink

#: Builds inputs for one training size: (size, rng) -> inputs for run().
InputGenerator = Callable[[int, random.Random], object]


def config_signature(config: ChoiceConfig) -> str:
    """A canonical string identifying a configuration's behaviour."""
    return config.to_json()


def measurement_seed(seed: int, signature: str, size: int, trial: int) -> int:
    """The scheduler seed for one measurement.

    A stable hash of ``(seed, signature, size, trial)`` — deliberately
    *not* Python's salted ``hash()`` — so every measurement draws its
    scheduler RNG from its identity alone.  This is what makes
    measurements order-independent and safe to fan out across processes.
    """
    digest = hashlib.blake2b(
        f"{seed}|{size}|{trial}|{signature}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class Measurement:
    """One fresh (uncached) timing of a configuration at a size.

    ``time`` averages the makespan over the evaluator's ``trials``;
    ``tasks``/``steals`` describe the last trial's schedule (the fields
    the ``candidate`` trace event reports).
    """

    time: float
    tasks: int
    steals: int

    def to_record(self) -> Dict[str, object]:
        """The wire/cache form: the schema one JSONL cache row and one
        pool-worker result share."""
        return {"time": self.time, "tasks": self.tasks, "steals": self.steals}

    @staticmethod
    def from_record(record: object) -> "Measurement":
        """Parse and validate a result record.

        Raises ``ValueError`` on anything malformed — a non-dict, missing
        fields, non-numeric or non-finite values — which is how the
        fault-tolerant evaluator detects corrupted worker results and
        how the cache loader rejects damaged rows.
        """
        if not isinstance(record, dict):
            raise ValueError(f"record is {type(record).__name__}, not a dict")
        try:
            time = float(record["time"])
            tasks = int(record["tasks"])
            steals = int(record["steals"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed measurement record: {exc}") from None
        if not math.isfinite(time) or time < 0 or tasks < 0 or steals < 0:
            raise ValueError(f"out-of-range measurement record: {record!r}")
        return Measurement(time=time, tasks=tasks, steals=steals)


def generator_inputs(
    program: CompiledProgram, transform_name: str
) -> InputGenerator:
    """Build an input generator from the transform's ``generator``
    declaration (paper §2): the named transform is run with every size
    variable bound to the training size, and its outputs (in declaration
    order) become the target transform's inputs.  The ``rand()`` builtin
    is reseeded per call so training rounds see varied data
    deterministically."""
    from repro.language.interp import seed_rand

    target = program.transform(transform_name)
    generator_name = target.ir.generator
    if generator_name is None:
        raise ValueError(
            f"transform {transform_name!r} declares no generator"
        )
    generator = program.transform(generator_name)
    if len(generator.ir.outputs) != len(target.ir.inputs):
        raise ValueError(
            f"generator {generator_name!r} produces "
            f"{len(generator.ir.outputs)} outputs but {transform_name!r} "
            f"takes {len(target.ir.inputs)} inputs"
        )

    def make(size: int, rng: random.Random):
        seed_rand(rng.getrandbits(32))
        result = generator.run(
            sizes={var: size for var in generator.ir.size_vars}
        )
        return [result.outputs[m.name].data for m in generator.ir.outputs]

    return make


class Evaluator:
    """Times configurations of one transform on one (simulated) machine."""

    def __init__(
        self,
        program: CompiledProgram,
        transform: str,
        input_generator: InputGenerator,
        machine: Machine,
        workers: Optional[int] = None,
        trials: int = 1,
        seed: int = 20090615,  # PLDI'09 started June 15 2009
        sink: Optional["TraceSink"] = None,
    ) -> None:
        self.program = program
        self.transform: CompiledTransform = program.transform(transform)
        self.input_generator = input_generator
        self.machine = machine
        self.workers = workers if workers is not None else machine.cores
        self.trials = trials
        self.seed = seed
        self._cache: Dict[Tuple[str, int], float] = {}
        self.evaluations = 0
        #: optional observability sink: every fresh measurement emits a
        #: ``candidate`` record (config, size, fitness) — the candidate
        #: timeline of a tuning run.
        self.sink = sink

    def run_once(
        self,
        config: ChoiceConfig,
        size: int,
        trial: int = 0,
        signature: Optional[str] = None,
    ) -> Tuple[RunResult, ScheduleResult]:
        """One full execute + schedule simulation (uncached).

        Both the generated input and the scheduler RNG are seeded from
        the measurement's identity — never from shared evaluator state —
        so the result does not depend on what was measured before it.
        Input data depends only on ``(seed, size, trial)`` so every
        configuration is timed against the same inputs.
        """
        if signature is None:
            signature = config_signature(config)
        rng = random.Random(self.seed * 1000003 + size * 1009 + trial)
        inputs = self.input_generator(size, rng)
        result = self.transform.run(inputs, config)
        scheduler = WorkStealingScheduler(
            self.machine,
            seed=measurement_seed(self.seed, signature, size, trial),
        )
        schedule = scheduler.run(result.graph, workers=self.workers)
        return result, schedule

    def measure(
        self, config: ChoiceConfig, size: int, signature: Optional[str] = None
    ) -> Measurement:
        """One fresh averaged-over-trials timing, bypassing the cache.

        This is the pure objective shared by :meth:`time` and the
        process-pool workers of :mod:`repro.autotuner.parallel`: a pure
        function of ``(seed, signature, size, trial range)``.
        """
        if signature is None:
            signature = config_signature(config)
        total = 0.0
        schedule: Optional[ScheduleResult] = None
        for trial in range(self.trials):
            _, schedule = self.run_once(config, size, trial, signature)
            total += schedule.makespan
        return Measurement(
            time=total / self.trials,
            tasks=schedule.tasks,
            steals=schedule.steals,
        )

    def _record_fresh(
        self, signature: str, size: int, measurement: Measurement
    ) -> None:
        """Install a fresh measurement: cache, count, emit ``candidate``."""
        self._cache[(signature, size)] = measurement.time
        self.evaluations += 1
        if self.sink is not None:
            self.sink.count("tuner.evaluations")
            self.sink.emit(
                "candidate",
                size=size,
                time=measurement.time,
                tasks=measurement.tasks,
                steals=measurement.steals,
                config=signature,
            )

    def time(self, config: ChoiceConfig, size: int) -> float:
        """Simulated parallel time of ``config`` at input ``size`` (cached
        by ``(configuration signature, size)``, averaged over ``trials``
        generated inputs)."""
        signature = config_signature(config)
        key = (signature, size)
        if key not in self._cache:
            self._record_fresh(signature, size, self.measure(config, size, signature))
        elif self.sink is not None:
            self.sink.count("tuner.cache_hits")
        return self._cache[key]

    def sequential_time(self, config: ChoiceConfig, size: int) -> float:
        """Simulated single-core time (no scheduling overhead) of trial 0
        only — sequential work is trial-invariant up to input data, and
        one generated input suffices for the cutoff analyses that use
        this."""
        _, schedule = self.run_once(config, size)
        return schedule.sequential_time

    def with_machine(
        self, machine: Machine, workers: Optional[int] = None
    ) -> "Evaluator":
        """A sibling evaluator targeting a different machine (fresh cache)."""
        return Evaluator(
            program=self.program,
            transform=self.transform.name,
            input_generator=self.input_generator,
            machine=machine,
            workers=workers,
            trials=self.trials,
            seed=self.seed,
            sink=self.sink,
        )
