"""Parallel candidate evaluation with a persistent measurement cache.

Tuning runs are embarrassingly parallel across candidates: §3.3's
genetic loop scores a whole population at one training size, and the
n-ary tunable search probes a known set of values per round.  Because
every measurement is a pure function of ``(seed, configuration
signature, size, trial)`` (see :mod:`repro.autotuner.evaluation`), those
batches can fan out over a process pool and merge back in any order
without changing a single bit of the tuning result.

Three pieces:

* :class:`MeasurementCache` — measurements keyed by ``(machine profile,
  workers, trials, seed, signature, size)``, persisted as JSONL so
  repeated ``repro tune`` invocations (and cross-machine sweeps sharing
  one cache file) never repeat a simulation.  Nonviable candidates are
  cached as failures for the same reason.
* :class:`EvaluatorSpec` — a picklable recipe (``"module:callable"`` +
  args) from which each worker process rebuilds its own
  :class:`~repro.autotuner.evaluation.Evaluator`; compiled programs
  hold closures and never cross process boundaries.
* :class:`ParallelEvaluator` — an :class:`Evaluator` with an
  ``evaluate_batch`` entry point: collect a batch's cache misses,
  dispatch them over a ``concurrent.futures`` process pool (or evaluate
  serially when ``jobs == 1`` / no spec is available), and merge results
  in batch order.  ``time()`` still works measurement-at-a-time, so the
  class is a drop-in :class:`~repro.autotuner.tuner.GeneticTuner`
  evaluator.

Determinism: results are merged in submission order (never completion
order), per-task seeds derive from the measurement identity, and the
``candidate`` trace events are emitted exactly as the serial evaluator
emits them — so a tuning run is byte-identical for any ``jobs`` value.

Observability (all optional, via the shared ``TraceSink``): counters
``tuner.pool.dispatches``, ``tuner.pool.batches``,
``tuner.cache.disk_hits``, ``tuner.cache.misses``; histograms
``tuner.pool.batch_size`` and ``tuner.pool.batch_latency_ms``.
"""

from __future__ import annotations

import importlib
import json
import os
import time as _time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.compiler.config import ChoiceConfig

from repro.autotuner.evaluation import (
    Evaluator,
    Measurement,
    config_signature,
)

#: cache key: (machine name, workers, trials, seed, signature, size)
CacheKey = Tuple[str, int, int, int, str, int]


class CandidateFailure(RuntimeError):
    """A candidate configuration failed evaluation (e.g. a recursive
    rule with no base case).  Raised on cached failures so nonviable
    candidates are culled without re-running the failing simulation."""


@dataclass(frozen=True)
class EvaluatorSpec:
    """A picklable recipe for building an :class:`Evaluator` in a worker.

    ``factory`` is a ``"package.module:callable"`` reference resolved by
    import, so only strings and plain data cross the process boundary;
    ``args``/``kwargs`` must themselves be picklable.  The callable must
    return an :class:`Evaluator` (workers force ``sink=None`` — tracing
    belongs to the parent).
    """

    factory: str
    args: Tuple[Any, ...] = ()
    kwargs: Tuple[Tuple[str, Any], ...] = ()

    @staticmethod
    def make(factory: str, *args: Any, **kwargs: Any) -> "EvaluatorSpec":
        return EvaluatorSpec(
            factory=factory, args=tuple(args), kwargs=tuple(sorted(kwargs.items()))
        )

    def build(self) -> Evaluator:
        module_name, _, attr = self.factory.partition(":")
        if not attr:
            raise ValueError(
                f"spec factory {self.factory!r} must be 'module:callable'"
            )
        module = importlib.import_module(module_name)
        factory = getattr(module, attr)
        evaluator = factory(*self.args, **dict(self.kwargs))
        if not isinstance(evaluator, Evaluator):
            raise TypeError(
                f"spec factory {self.factory!r} returned "
                f"{type(evaluator).__name__}, not an Evaluator"
            )
        evaluator.sink = None
        return evaluator


class MeasurementCache:
    """Measurements keyed by the full measurement identity, with JSONL
    persistence.

    One record per line::

        {"machine": "xeon8", "workers": 8, "trials": 1, "seed": 20090615,
         "signature": "{...config json...}", "size": 256,
         "time": 1234.5, "tasks": 17, "steals": 3}

    Failed candidates carry ``"error"`` instead of the result fields.
    ``load()`` tolerates duplicate keys (last record wins) so several
    invocations may append to one file; ``flush()`` appends only the
    records added since the last flush.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self._records: Dict[CacheKey, Dict[str, Any]] = {}
        self._dirty: List[CacheKey] = []
        if path is not None and os.path.exists(path):
            self.load(path)

    def __len__(self) -> int:
        return len(self._records)

    @staticmethod
    def _key_fields(key: CacheKey) -> Dict[str, Any]:
        machine, workers, trials, seed, signature, size = key
        return {
            "machine": machine,
            "workers": workers,
            "trials": trials,
            "seed": seed,
            "signature": signature,
            "size": size,
        }

    def lookup(self, key: CacheKey) -> Optional[Dict[str, Any]]:
        return self._records.get(key)

    def store(self, key: CacheKey, record: Dict[str, Any]) -> None:
        if key not in self._records:
            self._dirty.append(key)
        self._records[key] = record

    def store_measurement(self, key: CacheKey, m: Measurement) -> None:
        self.store(key, {"time": m.time, "tasks": m.tasks, "steals": m.steals})

    def store_failure(self, key: CacheKey, error: str) -> None:
        self.store(key, {"error": error})

    def load(self, path: str) -> int:
        """Merge records from ``path``; returns how many lines were read."""
        lines = 0
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                row = json.loads(line)
                key: CacheKey = (
                    row["machine"],
                    int(row["workers"]),
                    int(row["trials"]),
                    int(row["seed"]),
                    row["signature"],
                    int(row["size"]),
                )
                self._records[key] = {
                    name: row[name]
                    for name in ("time", "tasks", "steals", "error")
                    if name in row
                }
                lines += 1
        return lines

    def flush(self, path: Optional[str] = None) -> int:
        """Append records added since the last flush; returns the count."""
        path = path if path is not None else self.path
        if path is None or not self._dirty:
            count = len(self._dirty)
            self._dirty.clear()
            return count
        with open(path, "a", encoding="utf-8") as handle:
            for key in self._dirty:
                row = self._key_fields(key)
                row.update(self._records[key])
                handle.write(json.dumps(row, sort_keys=True) + "\n")
        count = len(self._dirty)
        self._dirty.clear()
        return count


# -- worker side -------------------------------------------------------------

_WORKER_EVALUATOR: Optional[Evaluator] = None


def _init_worker(spec: EvaluatorSpec) -> None:
    global _WORKER_EVALUATOR
    _WORKER_EVALUATOR = spec.build()


def _pool_measure(signature: str, size: int) -> Dict[str, Any]:
    """Measure one (signature, size) in a worker; never raises — errors
    come back as records so the parent can cache the failure."""
    evaluator = _WORKER_EVALUATOR
    if evaluator is None:  # pragma: no cover - initializer always ran
        return {"error": "worker evaluator was never initialized"}
    try:
        config = ChoiceConfig.from_json(signature)
        m = evaluator.measure(config, size, signature)
        return {"time": m.time, "tasks": m.tasks, "steals": m.steals}
    except Exception as exc:
        return {"error": f"{type(exc).__name__}: {exc}"}


def evaluator_from_source(
    source: str,
    transform: str,
    machine_name: str,
    max_size: int = 4096,
    workers: Optional[int] = None,
    trials: int = 1,
    seed: int = 20090615,
) -> Evaluator:
    """Build an evaluator by compiling PetaBricks source text — the spec
    factory behind ``repro tune --jobs N`` (source text is picklable
    where a compiled program is not).  Mirrors the CLI's input policy:
    the transform's ``generator`` declaration when present, uniform
    random inputs otherwise."""
    from repro.autotuner.evaluation import generator_inputs
    from repro.cli import _random_inputs
    from repro.compiler import compile_program
    from repro.runtime.machine import MACHINES

    program = compile_program(source)
    compiled = program.transform(transform)
    if compiled.ir.generator:
        inputs = generator_inputs(program, transform)
    else:
        inputs = _random_inputs(program, transform, max_size)
    return Evaluator(
        program,
        transform,
        inputs,
        MACHINES[machine_name],
        workers=workers,
        trials=trials,
        seed=seed,
    )


# -- parent side -------------------------------------------------------------


class ParallelEvaluator(Evaluator):
    """An :class:`Evaluator` that batches measurements over a process
    pool and remembers them in a (optionally persistent) shared cache.

    Drop-in for :class:`~repro.autotuner.tuner.GeneticTuner`: ``time()``
    behaves exactly like the serial evaluator (same values, same
    ``candidate`` events), while ``evaluate_batch()`` lets the tuner
    hand over a whole population / probe set at once.  With ``jobs ==
    1`` (or when no :class:`EvaluatorSpec` is available to rebuild the
    evaluator in workers) batches are evaluated serially in the parent —
    in the identical order, producing identical results.
    """

    def __init__(
        self,
        *args: Any,
        jobs: int = 1,
        cache: Union[MeasurementCache, str, None] = None,
        spec: Optional[EvaluatorSpec] = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(*args, **kwargs)
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.spec = spec
        if isinstance(cache, str):
            cache = MeasurementCache(cache)
        self.cache = cache
        self._failures: Dict[Tuple[str, int], str] = {}
        self._pool: Optional[ProcessPoolExecutor] = None

    @classmethod
    def from_spec(
        cls,
        spec: EvaluatorSpec,
        jobs: int = 1,
        cache: Union[MeasurementCache, str, None] = None,
        sink=None,
    ) -> "ParallelEvaluator":
        """Build the parent evaluator from the same recipe the workers
        use, guaranteeing parent and workers measure identically."""
        base = spec.build()
        return cls(
            base.program,
            base.transform.name,
            base.input_generator,
            base.machine,
            workers=base.workers,
            trials=base.trials,
            seed=base.seed,
            sink=sink,
            jobs=jobs,
            cache=cache,
            spec=spec,
        )

    # -- cache plumbing ----------------------------------------------------

    def _cache_key(self, signature: str, size: int) -> CacheKey:
        return (
            self.machine.name,
            self.workers,
            self.trials,
            self.seed,
            signature,
            size,
        )

    def _install_record(
        self, signature: str, size: int, record: Dict[str, Any], fresh: bool
    ) -> None:
        """Merge one measurement record (from a worker, the serial batch
        path, or the disk cache) into the in-memory state.  ``fresh``
        records count as evaluations and emit ``candidate`` events; disk
        hits do neither — a warm rerun performs zero fresh evaluations."""
        if "error" in record:
            self._failures[(signature, size)] = record["error"]
        elif fresh:
            self._record_fresh(
                signature,
                size,
                Measurement(
                    time=record["time"],
                    tasks=record["tasks"],
                    steals=record["steals"],
                ),
            )
        else:
            self._cache[(signature, size)] = record["time"]
        if fresh and self.cache is not None:
            self.cache.store(self._cache_key(signature, size), dict(record))

    def _consult_disk(self, signature: str, size: int) -> bool:
        """Pull one measurement from the persistent cache if present."""
        if self.cache is None:
            return False
        record = self.cache.lookup(self._cache_key(signature, size))
        if record is None:
            return False
        self._install_record(signature, size, record, fresh=False)
        if self.sink is not None:
            self.sink.count("tuner.cache.disk_hits")
        return True

    # -- measurement entry points -------------------------------------------

    def time(self, config: ChoiceConfig, size: int) -> float:
        signature = config_signature(config)
        key = (signature, size)
        if key not in self._cache and key not in self._failures:
            self._consult_disk(signature, size)
        if key in self._failures:
            raise CandidateFailure(self._failures[key])
        if key not in self._cache:
            # A single miss is measured in-process: pool dispatch isn't
            # worth one task, and the value is identical by construction.
            try:
                measurement = self.measure(config, size, signature)
            except Exception as exc:
                message = f"{type(exc).__name__}: {exc}"
                self._install_record(
                    signature, size, {"error": message}, fresh=True
                )
                raise CandidateFailure(message) from exc
            self._install_record(
                signature,
                size,
                {
                    "time": measurement.time,
                    "tasks": measurement.tasks,
                    "steals": measurement.steals,
                },
                fresh=True,
            )
        elif self.sink is not None:
            self.sink.count("tuner.cache_hits")
        return self._cache[key]

    def evaluate_batch(
        self, batch: Sequence[Tuple[ChoiceConfig, int]]
    ) -> None:
        """Measure every ``(config, size)`` pair not already known.

        Misses are dispatched together — over the pool when ``jobs > 1``
        and a spec is available, serially otherwise — and merged in batch
        order, so later ``time()`` calls are pure cache hits regardless
        of worker count or completion order.
        """
        pending: List[Tuple[str, int]] = []
        seen = set()
        for config, size in batch:
            signature = config_signature(config)
            key = (signature, size)
            if key in seen or key in self._cache or key in self._failures:
                continue
            if self._consult_disk(signature, size):
                continue
            seen.add(key)
            pending.append(key)

        if self.sink is not None:
            self.sink.count("tuner.pool.batches")
            self.sink.observe("tuner.pool.batch_size", len(pending))
            self.sink.count("tuner.cache.misses", len(pending))
        if not pending:
            return

        started = _time.perf_counter()
        if self.jobs > 1 and self.spec is not None:
            pool = self._ensure_pool()
            futures = [
                pool.submit(_pool_measure, signature, size)
                for signature, size in pending
            ]
            if self.sink is not None:
                self.sink.count("tuner.pool.dispatches", len(futures))
            # Merge strictly in submission order.
            records = [future.result() for future in futures]
        else:
            records = []
            for signature, size in pending:
                try:
                    m = self.measure(
                        ChoiceConfig.from_json(signature), size, signature
                    )
                    records.append(
                        {"time": m.time, "tasks": m.tasks, "steals": m.steals}
                    )
                except Exception as exc:
                    records.append({"error": f"{type(exc).__name__}: {exc}"})
        for (signature, size), record in zip(pending, records):
            self._install_record(signature, size, record, fresh=True)
        if self.sink is not None:
            elapsed_ms = (_time.perf_counter() - started) * 1000.0
            self.sink.observe("tuner.pool.batch_latency_ms", elapsed_ms)

    # -- lifecycle ----------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_init_worker,
                initargs=(self.spec,),
            )
        return self._pool

    def flush_cache(self) -> int:
        """Persist newly added cache records; returns how many."""
        if self.cache is None:
            return 0
        return self.cache.flush()

    def close(self) -> None:
        """Shut the pool down and persist the cache."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self.flush_cache()

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
