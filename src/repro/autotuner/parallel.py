"""Parallel candidate evaluation with fault tolerance and a persistent
measurement cache.

Tuning runs are embarrassingly parallel across candidates: §3.3's
genetic loop scores a whole population at one training size, and the
n-ary tunable search probes a known set of values per round.  Because
every measurement is a pure function of ``(seed, configuration
signature, size, trial)`` (see :mod:`repro.autotuner.evaluation`), those
batches can fan out over a process pool and merge back in any order
without changing a single bit of the tuning result — and, for the same
reason, a measurement lost to a crashed or hung worker can simply be
re-run: the retry returns the identical value.

Three pieces:

* :class:`MeasurementCache` — measurements keyed by ``(machine profile,
  workers, trials, seed, signature, size)``, persisted as JSONL so
  repeated ``repro tune`` invocations (and cross-machine sweeps sharing
  one cache file) never repeat a simulation.  Nonviable candidates are
  cached as failures for the same reason.  Loading is crash-safe:
  corrupt or truncated lines (a killed writer, disk damage, schema
  drift) are skipped, counted in ``corrupt_lines``, and quarantined to
  a ``<path>.bad`` sidecar instead of raising.
* :class:`EvaluatorSpec` — a picklable recipe (``"module:callable"`` +
  args) from which each worker process rebuilds its own
  :class:`~repro.autotuner.evaluation.Evaluator`; compiled programs
  hold closures and never cross process boundaries.
* :class:`ParallelEvaluator` — an :class:`Evaluator` with an
  ``evaluate_batch`` entry point: collect a batch's cache misses,
  dispatch them over a ``concurrent.futures`` process pool (or evaluate
  serially when ``jobs == 1`` / no spec is available), and merge results
  in batch order.  ``time()`` still works measurement-at-a-time, so the
  class is a drop-in :class:`~repro.autotuner.tuner.GeneticTuner`
  evaluator.

Fault tolerance (the paper's tuner only works because slow or broken
candidates are culled cheaply; a fault-tolerant measurement loop is the
distributed-system analogue):

* **Deadlines** — with ``measure_timeout`` set, every pool round is
  bounded by an adaptive per-measurement deadline: a multiple
  (``deadline_factor``) of the best wall-clock measurement seen at that
  input size, floored at ``measure_timeout`` seconds.  A measurement
  that misses its deadline on every attempt becomes a cached
  :class:`CandidateFailure` and is culled, mirroring the paper's
  candidate pruning; hung workers are reclaimed by force-killing and
  rebuilding the pool.
* **Retries** — transient worker errors, corrupt result records, and
  crash/timeout casualties are retried up to ``max_retries`` times with
  exponential backoff (``retry_backoff`` base seconds).  Because the
  objective is pure, a retry is always safe.
* **Quarantine** — a signature whose measurement kills
  ``quarantine_after`` consecutive worker processes is quarantined:
  every pending and future measurement of it fails fast as a
  :class:`CandidateFailure` without touching the pool again.
* **Degradation** — after ``degrade_after`` consecutive pool rounds
  that made no progress, the evaluator permanently degrades to
  in-process serial evaluation: slower, but the tuning run completes.
* **Crash-safe persistence** — the cache is flushed (and fsync'd) after
  every batch, so a killed run loses at most one batch of fresh
  measurements; a warm restart with the same cache file re-runs only
  what was lost.

Deterministic fault injection (:mod:`repro.faults`) plugs into the pool
workers and the cache writer via the ``injector`` argument, so every
recovery path above is exercised — reproducibly — in CI.

Determinism: results are merged in submission order (never completion
order), per-task seeds derive from the measurement identity, and the
``candidate`` trace events are emitted exactly as the serial evaluator
emits them — so a tuning run is byte-identical for any ``jobs`` value,
and (with the default at-most-once injection policy) byte-identical
under injected faults as well.

Observability (all optional, via the shared ``TraceSink``): counters
``tuner.pool.dispatches``, ``tuner.pool.batches``,
``tuner.cache.disk_hits``, ``tuner.cache.misses``, plus the recovery
counters ``tuner.pool.timeouts``, ``tuner.pool.retries``,
``tuner.pool.rebuilds``, ``tuner.pool.quarantines``,
``tuner.degraded_serial``, and ``tuner.cache.corrupt_lines``;
histograms ``tuner.pool.batch_size`` and ``tuner.pool.batch_latency_ms``.
"""

from __future__ import annotations

import importlib
import json
import math
import os
import time as _time
from concurrent.futures import ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.compiler.config import ChoiceConfig
from repro.faults import FaultInjector, TransientFault

from repro.autotuner.evaluation import (
    Evaluator,
    Measurement,
    config_signature,
)

#: cache key: (machine name, workers, trials, seed, signature, size)
CacheKey = Tuple[str, int, int, int, str, int]

#: key fields every persisted cache row must carry.
REQUIRED_KEY_FIELDS: Tuple[str, ...] = (
    "machine", "workers", "trials", "seed", "signature", "size",
)


class CandidateFailure(RuntimeError):
    """A candidate configuration failed evaluation (e.g. a recursive
    rule with no base case, a missed measurement deadline, or a
    quarantined worker-killer).  Raised on cached failures so nonviable
    candidates are culled without re-running the failing simulation."""


@dataclass(frozen=True)
class EvaluatorSpec:
    """A picklable recipe for building an :class:`Evaluator` in a worker.

    ``factory`` is a ``"package.module:callable"`` reference resolved by
    import, so only strings and plain data cross the process boundary;
    ``args``/``kwargs`` must themselves be picklable.  The callable must
    return an :class:`Evaluator` (workers force ``sink=None`` — tracing
    belongs to the parent).
    """

    factory: str
    args: Tuple[Any, ...] = ()
    kwargs: Tuple[Tuple[str, Any], ...] = ()

    @staticmethod
    def make(factory: str, *args: Any, **kwargs: Any) -> "EvaluatorSpec":
        return EvaluatorSpec(
            factory=factory, args=tuple(args), kwargs=tuple(sorted(kwargs.items()))
        )

    def build(self) -> Evaluator:
        module_name, _, attr = self.factory.partition(":")
        if not attr:
            raise ValueError(
                f"spec factory {self.factory!r} must be 'module:callable'"
            )
        module = importlib.import_module(module_name)
        factory = getattr(module, attr)
        evaluator = factory(*self.args, **dict(self.kwargs))
        if not isinstance(evaluator, Evaluator):
            raise TypeError(
                f"spec factory {self.factory!r} returned "
                f"{type(evaluator).__name__}, not an Evaluator"
            )
        evaluator.sink = None
        return evaluator


class MeasurementCache:
    """Measurements keyed by the full measurement identity, with
    crash-safe JSONL persistence.

    One record per line::

        {"machine": "xeon8", "workers": 8, "trials": 1, "seed": 20090615,
         "signature": "{...config json...}", "size": 256,
         "time": 1234.5, "tasks": 17, "steals": 3}

    Failed candidates carry ``"error"`` instead of the result fields.
    ``load()`` tolerates duplicate keys (last record wins) so several
    invocations may append to one file; ``flush()`` appends (and
    fsyncs) only the records added since the last flush.

    ``load()`` never raises on damaged content: lines that are not
    valid JSON, rows missing required key fields, and rows whose result
    fields fail validation are skipped, counted in ``corrupt_lines``,
    and appended verbatim to a ``<path>.bad`` sidecar for post-mortem —
    a truncated line from a killed run costs one measurement, not the
    whole cache.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        injector: Optional[FaultInjector] = None,
    ) -> None:
        self.path = path
        #: dev/test-only fault injection hook (``cache-corrupt`` faults
        #: garble flushed lines the way a killed writer does).
        self.injector = injector
        #: damaged lines skipped (and sidecar'd) across all loads.
        self.corrupt_lines = 0
        self._records: Dict[CacheKey, Dict[str, Any]] = {}
        self._dirty: List[CacheKey] = []
        if path is not None and os.path.exists(path):
            self.load(path)

    def __len__(self) -> int:
        return len(self._records)

    @staticmethod
    def _key_fields(key: CacheKey) -> Dict[str, Any]:
        machine, workers, trials, seed, signature, size = key
        return {
            "machine": machine,
            "workers": workers,
            "trials": trials,
            "seed": seed,
            "signature": signature,
            "size": size,
        }

    def lookup(self, key: CacheKey) -> Optional[Dict[str, Any]]:
        return self._records.get(key)

    def store(self, key: CacheKey, record: Dict[str, Any]) -> None:
        if key not in self._records:
            self._dirty.append(key)
        self._records[key] = record

    def store_measurement(self, key: CacheKey, m: Measurement) -> None:
        self.store(key, m.to_record())

    def store_failure(self, key: CacheKey, error: str) -> None:
        self.store(key, {"error": error})

    @staticmethod
    def _parse_row(line: str) -> Optional[Tuple[CacheKey, Dict[str, Any]]]:
        """One validated ``(key, record)`` from a JSONL line, or ``None``
        if the line is damaged (bad JSON, missing/mistyped key fields,
        invalid result fields)."""
        try:
            row = json.loads(line)
        except ValueError:
            return None
        if not isinstance(row, dict):
            return None
        try:
            if not isinstance(row["machine"], str) or not isinstance(
                row["signature"], str
            ):
                return None
            key: CacheKey = (
                row["machine"],
                int(row["workers"]),
                int(row["trials"]),
                int(row["seed"]),
                row["signature"],
                int(row["size"]),
            )
        except (KeyError, TypeError, ValueError):
            return None
        if isinstance(row.get("error"), str):
            return key, {"error": row["error"]}
        try:
            return key, Measurement.from_record(row).to_record()
        except ValueError:
            return None

    def load(self, path: str) -> int:
        """Merge records from ``path``; returns how many lines were read.

        Never raises on damaged lines — they are counted, skipped, and
        quarantined to ``path + ".bad"``.
        """
        lines = 0
        bad: List[str] = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                lines += 1
                parsed = self._parse_row(line)
                if parsed is None:
                    bad.append(line)
                    continue
                key, record = parsed
                self._records[key] = record
        if bad:
            self.corrupt_lines += len(bad)
            with open(path + ".bad", "a", encoding="utf-8") as sidecar:
                for line in bad:
                    sidecar.write(line + "\n")
        return lines

    def flush(self, path: Optional[str] = None) -> int:
        """Append (and fsync) records added since the last flush;
        returns the count.  Called after every batch so a killed run
        loses at most the batch in flight."""
        path = path if path is not None else self.path
        if path is None or not self._dirty:
            count = len(self._dirty)
            self._dirty.clear()
            return count
        with open(path, "a", encoding="utf-8") as handle:
            for key in self._dirty:
                row = self._key_fields(key)
                row.update(self._records[key])
                line = json.dumps(row, sort_keys=True)
                if self.injector is not None and self.injector.fires(
                    "cache-corrupt", line
                ):
                    line = self.injector.corrupt_line(line)
                handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        count = len(self._dirty)
        self._dirty.clear()
        return count


# -- worker side -------------------------------------------------------------

_WORKER_EVALUATOR: Optional[Evaluator] = None
_WORKER_INJECTOR: Optional[FaultInjector] = None


def _init_worker(
    spec: EvaluatorSpec, injector: Optional[FaultInjector] = None
) -> None:
    global _WORKER_EVALUATOR, _WORKER_INJECTOR
    _WORKER_EVALUATOR = spec.build()
    _WORKER_INJECTOR = injector


def _pool_measure(signature: str, size: int, attempt: int = 0) -> Dict[str, Any]:
    """Measure one (signature, size) in a worker; never raises — errors
    come back as records so the parent can classify, retry, or cache
    the failure.  ``attempt`` feeds the fault injector so injected
    faults are reproducible yet don't re-fire on recovery attempts."""
    evaluator = _WORKER_EVALUATOR
    injector = _WORKER_INJECTOR
    if evaluator is None:  # pragma: no cover - initializer always ran
        return {"error": "worker evaluator was never initialized"}
    identity = f"{signature}|{size}"
    if injector is not None:
        if injector.fires("worker-crash", identity, attempt):
            os._exit(3)
        if injector.fires("worker-hang", identity, attempt):
            _time.sleep(injector.hang_seconds)
        if injector.fires("transient", identity, attempt):
            return {
                "error": "TransientFault: injected transient worker failure",
                "transient": True,
            }
    try:
        config = ChoiceConfig.from_json(signature)
        started = _time.perf_counter()
        m = evaluator.measure(config, size, signature)
        record = m.to_record()
        record["wall_ms"] = (_time.perf_counter() - started) * 1000.0
        if injector is not None and injector.fires(
            "corrupt-record", identity, attempt
        ):
            return {"time": "<corrupt>", "steals": record["steals"]}
        return record
    except Exception as exc:
        return {"error": f"{type(exc).__name__}: {exc}"}


def evaluator_from_source(
    source: str,
    transform: str,
    machine_name: str,
    max_size: int = 4096,
    workers: Optional[int] = None,
    trials: int = 1,
    seed: int = 20090615,
) -> Evaluator:
    """Build an evaluator by compiling PetaBricks source text — the spec
    factory behind ``repro tune --jobs N`` (source text is picklable
    where a compiled program is not).  Mirrors the CLI's input policy:
    the transform's ``generator`` declaration when present, uniform
    random inputs otherwise."""
    from repro.autotuner.evaluation import generator_inputs
    from repro.cli import _random_inputs
    from repro.compiler import compile_program
    from repro.runtime.machine import MACHINES

    program = compile_program(source)
    compiled = program.transform(transform)
    if compiled.ir.generator:
        inputs = generator_inputs(program, transform)
    else:
        inputs = _random_inputs(program, transform, max_size)
    return Evaluator(
        program,
        transform,
        inputs,
        MACHINES[machine_name],
        workers=workers,
        trials=trials,
        seed=seed,
    )


# -- parent side -------------------------------------------------------------


@dataclass(eq=False)
class _PendingItem:
    """One unresolved measurement's recovery state during a batch."""

    signature: str
    size: int
    attempts: int = 0       # dispatches consumed (feeds injector decisions)
    timeouts: int = 0       # deadline misses so far
    strikes: int = 0        # consecutive worker crashes attributed to it
    record: Optional[Dict[str, Any]] = None
    persist: bool = True    # whether the resolution goes to the disk cache

    @property
    def identity(self) -> str:
        return f"{self.signature}|{self.size}"

    def resolve(self, record: Dict[str, Any], persist: bool = True) -> None:
        self.record = record
        self.persist = persist


class ParallelEvaluator(Evaluator):
    """An :class:`Evaluator` that batches measurements over a process
    pool, survives worker crashes/hangs, and remembers results in a
    (optionally persistent) shared cache.

    Drop-in for :class:`~repro.autotuner.tuner.GeneticTuner`: ``time()``
    behaves exactly like the serial evaluator (same values, same
    ``candidate`` events), while ``evaluate_batch()`` lets the tuner
    hand over a whole population / probe set at once.  With ``jobs ==
    1`` (or when no :class:`EvaluatorSpec` is available to rebuild the
    evaluator in workers) batches are evaluated serially in the parent —
    in the identical order, producing identical results.

    Fault-tolerance knobs (see the module docstring for the policy):

    * ``measure_timeout`` — floor (seconds) of the adaptive
      per-measurement deadline; ``None`` disables deadlines.
    * ``deadline_factor`` — the deadline is
      ``max(measure_timeout, deadline_factor * best wall-clock at that
      size)``.
    * ``max_retries`` — bounded retries for transient failures,
      corrupt records, crash casualties, and deadline misses.
    * ``retry_backoff`` — exponential-backoff base (seconds) between
      retry rounds; 0 disables sleeping.
    * ``quarantine_after`` — consecutive worker crashes before a
      signature is quarantined.
    * ``degrade_after`` — consecutive no-progress pool rounds before
      permanently degrading to in-process serial evaluation.
    * ``injector`` — a :class:`repro.faults.FaultInjector` plugged into
      the pool workers and the cache writer (dev/test only).
    """

    def __init__(
        self,
        *args: Any,
        jobs: int = 1,
        cache: Union[MeasurementCache, str, None] = None,
        spec: Optional[EvaluatorSpec] = None,
        measure_timeout: Optional[float] = None,
        deadline_factor: float = 8.0,
        max_retries: int = 3,
        retry_backoff: float = 0.05,
        quarantine_after: int = 3,
        degrade_after: int = 5,
        injector: Optional[FaultInjector] = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(*args, **kwargs)
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if measure_timeout is not None and measure_timeout <= 0:
            raise ValueError("measure_timeout must be positive (or None)")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.jobs = jobs
        self.spec = spec
        self.measure_timeout = measure_timeout
        self.deadline_factor = deadline_factor
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.quarantine_after = quarantine_after
        self.degrade_after = degrade_after
        self.injector = injector
        if isinstance(cache, str):
            cache = MeasurementCache(cache, injector=injector)
        self.cache = cache
        if (
            self.sink is not None
            and cache is not None
            and cache.corrupt_lines
        ):
            self.sink.count("tuner.cache.corrupt_lines", cache.corrupt_lines)
        self._failures: Dict[Tuple[str, int], str] = {}
        self._quarantined: Dict[str, str] = {}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_builds = 0
        self._consecutive_pool_failures = 0
        self._degraded = False
        self._best_wall: Dict[int, float] = {}

    @classmethod
    def from_spec(
        cls,
        spec: EvaluatorSpec,
        jobs: int = 1,
        cache: Union[MeasurementCache, str, None] = None,
        sink=None,
        **kwargs: Any,
    ) -> "ParallelEvaluator":
        """Build the parent evaluator from the same recipe the workers
        use, guaranteeing parent and workers measure identically.
        Extra keyword arguments (``measure_timeout``, ``max_retries``,
        ``injector``, ...) pass straight through to the constructor."""
        base = spec.build()
        return cls(
            base.program,
            base.transform.name,
            base.input_generator,
            base.machine,
            workers=base.workers,
            trials=base.trials,
            seed=base.seed,
            sink=sink,
            jobs=jobs,
            cache=cache,
            spec=spec,
            **kwargs,
        )

    # -- cache plumbing ----------------------------------------------------

    def _cache_key(self, signature: str, size: int) -> CacheKey:
        return (
            self.machine.name,
            self.workers,
            self.trials,
            self.seed,
            signature,
            size,
        )

    def _install_record(
        self,
        signature: str,
        size: int,
        record: Dict[str, Any],
        fresh: bool,
        persist: bool = True,
    ) -> None:
        """Merge one measurement record (from a worker, the serial batch
        path, or the disk cache) into the in-memory state.  ``fresh``
        records count as evaluations and emit ``candidate`` events; disk
        hits do neither — a warm rerun performs zero fresh evaluations.
        ``persist=False`` keeps a resolution out of the disk cache
        (session-local verdicts like quarantines and exhausted
        transient retries must not poison later runs)."""
        clean = {
            name: record[name]
            for name in ("time", "tasks", "steals", "error")
            if name in record
        }
        if "error" in clean:
            self._failures[(signature, size)] = clean["error"]
            clean = {"error": clean["error"]}
        elif fresh:
            self._record_fresh(
                signature,
                size,
                Measurement(
                    time=clean["time"],
                    tasks=clean["tasks"],
                    steals=clean["steals"],
                ),
            )
        else:
            self._cache[(signature, size)] = clean["time"]
        if fresh and persist and self.cache is not None:
            self.cache.store(self._cache_key(signature, size), clean)

    def _consult_disk(self, signature: str, size: int) -> bool:
        """Pull one measurement from the persistent cache if present."""
        if self.cache is None:
            return False
        record = self.cache.lookup(self._cache_key(signature, size))
        if record is None:
            return False
        self._install_record(signature, size, record, fresh=False)
        if self.sink is not None:
            self.sink.count("tuner.cache.disk_hits")
        return True

    def _count(self, name: str, delta: int = 1) -> None:
        if self.sink is not None and delta:
            self.sink.count(name, delta)

    # -- measurement entry points -------------------------------------------

    def time(self, config: ChoiceConfig, size: int) -> float:
        signature = config_signature(config)
        key = (signature, size)
        if key not in self._cache and key not in self._failures:
            if signature in self._quarantined:
                raise CandidateFailure(self._quarantined[signature])
            self._consult_disk(signature, size)
        if key in self._failures:
            raise CandidateFailure(self._failures[key])
        if key not in self._cache:
            # A single miss is measured in-process: pool dispatch isn't
            # worth one task, and the value is identical by construction.
            try:
                measurement = self.measure(config, size, signature)
            except Exception as exc:
                message = f"{type(exc).__name__}: {exc}"
                self._install_record(
                    signature, size, {"error": message}, fresh=True
                )
                raise CandidateFailure(message) from exc
            self._install_record(
                signature, size, measurement.to_record(), fresh=True
            )
        elif self.sink is not None:
            self.sink.count("tuner.cache_hits")
        return self._cache[key]

    def evaluate_batch(
        self, batch: Sequence[Tuple[ChoiceConfig, int]]
    ) -> None:
        """Measure every ``(config, size)`` pair not already known.

        Misses are dispatched together — over the pool when ``jobs > 1``
        and a spec is available, serially otherwise — and merged in batch
        order, so later ``time()`` calls are pure cache hits regardless
        of worker count, completion order, or how many faults had to be
        recovered along the way.  The persistent cache is flushed after
        every batch, bounding a killed run's data loss to one batch.
        """
        pending: List[_PendingItem] = []
        seen = set()
        for config, size in batch:
            signature = config_signature(config)
            key = (signature, size)
            if key in seen or key in self._cache or key in self._failures:
                continue
            if signature in self._quarantined:
                self._failures[key] = self._quarantined[signature]
                continue
            if self._consult_disk(signature, size):
                continue
            seen.add(key)
            pending.append(_PendingItem(signature, size))

        if self.sink is not None:
            self.sink.count("tuner.pool.batches")
            self.sink.observe("tuner.pool.batch_size", len(pending))
            self.sink.count("tuner.cache.misses", len(pending))
        if not pending:
            return

        started = _time.perf_counter()
        self._evaluate_pending(pending)
        for item in pending:
            self._install_record(
                item.signature,
                item.size,
                item.record,
                fresh=True,
                persist=item.persist,
            )
        if self.sink is not None:
            elapsed_ms = (_time.perf_counter() - started) * 1000.0
            self.sink.observe("tuner.pool.batch_latency_ms", elapsed_ms)
        self.flush_cache()

    # -- the fault-tolerant resolution loop ----------------------------------

    def _evaluate_pending(self, pending: List[_PendingItem]) -> None:
        """Resolve every pending item to a record — measurement or
        failure — surviving crashes, hangs, and transient errors."""
        if self.jobs > 1 and self.spec is not None and not self._degraded:
            self._run_pool_rounds(pending)
        self._run_serial(pending)

    def _deadline_for(self, size: int) -> float:
        """Adaptive per-measurement deadline: a multiple of the best
        wall-clock measurement observed at this size, floored at the
        configured ``measure_timeout``."""
        best = self._best_wall.get(size)
        if best is None:
            return self.measure_timeout
        return max(self.measure_timeout, self.deadline_factor * best)

    def _round_budget(self, items: Sequence[_PendingItem]) -> Optional[float]:
        """Wall-clock budget for one dispatch round: the worst per-item
        deadline times the number of worker waves, plus slack."""
        if self.measure_timeout is None:
            return None
        per_item = max(self._deadline_for(item.size) for item in items)
        waves = math.ceil(len(items) / max(1, self.jobs))
        return per_item * waves + 0.25 * per_item + 0.05

    def _note_wall(self, size: int, wall_ms: Optional[float]) -> None:
        if wall_ms is None or wall_ms <= 0:
            return
        seconds = wall_ms / 1000.0
        best = self._best_wall.get(size)
        if best is None or seconds < best:
            self._best_wall[size] = seconds

    @staticmethod
    def _classify(record: Any) -> Tuple[str, Dict[str, Any]]:
        """Classify a worker result: ``("ok", measurement record)``,
        ``("ok", failure record)`` for deterministic candidate failures,
        or ``("retry", failure record)`` for transient/corrupt results."""
        if isinstance(record, dict) and isinstance(record.get("error"), str):
            if record.get("transient"):
                return "retry", {"error": record["error"]}
            return "ok", {"error": record["error"]}
        try:
            measurement = Measurement.from_record(record)
        except ValueError as exc:
            return "retry", {"error": f"corrupt result record ({exc})"}
        clean = measurement.to_record()
        if isinstance(record, dict) and "wall_ms" in record:
            clean["wall_ms"] = record["wall_ms"]
        return "ok", clean

    def _backoff(self, round_index: int) -> None:
        if self.retry_backoff > 0 and round_index > 0:
            _time.sleep(
                min(2.0, self.retry_backoff * (2 ** (round_index - 1)))
            )

    def _quarantine(self, signature: str, reason: str) -> None:
        message = (
            f"quarantined: measurement crashed {self.quarantine_after} "
            f"consecutive workers (last: {reason})"
        )
        self._quarantined[signature] = message
        self._count("tuner.pool.quarantines")

    def _degrade(self) -> None:
        self._degraded = True
        self._kill_pool()
        self._count("tuner.degraded_serial")

    def _run_pool_rounds(self, pending: Sequence[_PendingItem]) -> None:
        """Dispatch unresolved items over the pool in rounds until every
        item is resolved, the pool is abandoned (degradation), or
        retries are exhausted."""
        round_index = 0
        while True:
            unresolved = [item for item in pending if item.record is None]
            if not unresolved or self._degraded:
                return
            self._backoff(round_index)
            if round_index > 0:
                self._count("tuner.pool.retries", len(unresolved))
            futures: Dict[Any, _PendingItem] = {}
            try:
                pool = self._ensure_pool()
                for item in unresolved:
                    future = pool.submit(
                        _pool_measure, item.signature, item.size, item.attempts
                    )
                    futures[future] = item
            except Exception:
                # The pool itself is unusable (failed to spawn, broke on
                # submit); already-submitted futures still resolve below.
                self._kill_pool()
            self._count("tuner.pool.dispatches", len(futures))
            outcomes = self._collect_round(futures)
            self._settle_round(unresolved, outcomes)
            round_index += 1

    def _collect_round(
        self, futures: Dict[Any, _PendingItem]
    ) -> Dict[_PendingItem, Tuple[str, Any]]:
        """Wait for one round's futures under the round budget.

        Returns item -> ("ok" | "retry", record) | ("crash", message) |
        ("timeout", None).  Items whose submit failed are absent and
        count as a crash-less no-op (they retry next round).
        """
        outcomes: Dict[_PendingItem, Tuple[str, Any]] = {}
        if not futures:
            return outcomes
        budget = self._round_budget(list(futures.values()))
        started = _time.monotonic()
        remaining = set(futures)
        while remaining:
            timeout = None
            if budget is not None:
                timeout = budget - (_time.monotonic() - started)
                if timeout <= 0:
                    break
            done, remaining = wait(remaining, timeout=timeout)
            for future in done:
                item = futures[future]
                try:
                    record = future.result()
                except Exception as exc:
                    # BrokenProcessPool and friends: the worker (or the
                    # whole pool) died under this measurement.
                    outcomes[item] = (
                        "crash", f"{type(exc).__name__}: {exc}"
                    )
                else:
                    outcomes[item] = self._classify(record)
        for future in remaining:
            outcomes[futures[future]] = ("timeout", None)
        return outcomes

    def _settle_round(
        self,
        dispatched: Sequence[_PendingItem],
        outcomes: Dict[_PendingItem, Tuple[str, Any]],
    ) -> None:
        """Apply one round's outcomes: resolve successes, account
        retries/timeouts/strikes, quarantine repeat killers, reclaim a
        damaged pool, and degrade to serial if the pool keeps failing."""
        progressed = False
        pool_damaged = False
        for item in dispatched:
            outcome, payload = outcomes.get(item, (None, None))
            if outcome == "ok":
                progressed = True
                item.strikes = 0
                self._note_wall(item.size, payload.pop("wall_ms", None))
                item.resolve(payload)
            elif outcome == "retry":
                item.attempts += 1
                if item.attempts > self.max_retries:
                    item.resolve(payload, persist=False)
            elif outcome == "crash":
                pool_damaged = True
                item.attempts += 1
                item.strikes += 1
                if item.strikes >= self.quarantine_after:
                    self._quarantine(item.signature, payload)
            elif outcome == "timeout":
                pool_damaged = True
                item.attempts += 1
                item.timeouts += 1
                self._count("tuner.pool.timeouts")
                if item.timeouts > self.max_retries:
                    item.resolve(
                        {
                            "error": (
                                "MeasurementTimeout: exceeded the "
                                f"measurement deadline on {item.timeouts} "
                                "consecutive attempts"
                            )
                        }
                    )
        # Quarantine verdicts apply to every unresolved measurement of
        # the signature, in this batch and all later ones.
        for item in dispatched:
            if item.record is None and item.signature in self._quarantined:
                item.resolve(
                    {"error": self._quarantined[item.signature]},
                    persist=False,
                )
        if pool_damaged:
            # Hung workers hold pool slots and broken pools reject
            # submits: reclaim by force and rebuild lazily next round.
            self._kill_pool()
        if progressed:
            self._consecutive_pool_failures = 0
        elif pool_damaged or not outcomes:
            self._consecutive_pool_failures += 1
            if self._consecutive_pool_failures >= self.degrade_after:
                self._degrade()

    def _run_serial(self, pending: Sequence[_PendingItem]) -> None:
        """Resolve remaining items in-process (the ``jobs == 1`` path and
        the degraded-mode fallback).  Only ``transient`` faults inject
        here: crash/hang/corrupt-record model process-boundary failures,
        and an in-process crash could not be recovered from anyway."""
        for item in pending:
            while item.record is None:
                if item.signature in self._quarantined:
                    item.resolve(
                        {"error": self._quarantined[item.signature]},
                        persist=False,
                    )
                    break
                if self.injector is not None and self.injector.fires(
                    "transient", item.identity, item.attempts
                ):
                    item.attempts += 1
                    self._count("tuner.pool.retries")
                    if item.attempts > self.max_retries:
                        item.resolve(
                            {
                                "error": (
                                    "TransientFault: injected transient "
                                    "failure persisted through "
                                    f"{item.attempts} attempts"
                                )
                            },
                            persist=False,
                        )
                        break
                    self._backoff(item.attempts)
                    continue
                try:
                    measurement = self.measure(
                        ChoiceConfig.from_json(item.signature),
                        item.size,
                        item.signature,
                    )
                except TransientFault as exc:
                    item.attempts += 1
                    self._count("tuner.pool.retries")
                    if item.attempts > self.max_retries:
                        item.resolve(
                            {"error": f"TransientFault: {exc}"},
                            persist=False,
                        )
                        break
                    self._backoff(item.attempts)
                except Exception as exc:
                    item.resolve({"error": f"{type(exc).__name__}: {exc}"})
                else:
                    item.resolve(measurement.to_record())

    # -- lifecycle ----------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_init_worker,
                initargs=(self.spec, self.injector),
            )
            self._pool_builds += 1
            if self._pool_builds > 1:
                self._count("tuner.pool.rebuilds")
        return self._pool

    def _kill_pool(self) -> None:
        """Force-reclaim the pool: cancel queued work, terminate worker
        processes (a hung worker never returns on its own), and drop the
        executor so the next round rebuilds from scratch."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        process_map = getattr(pool, "_processes", None) or {}
        processes = list(process_map.values())
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - shutdown of a broken pool
            pass
        for process in processes:
            try:
                if process.is_alive():
                    process.terminate()
            except Exception:  # pragma: no cover - already-dead process
                pass
        for process in processes:
            try:
                process.join(timeout=1.0)
            except Exception:  # pragma: no cover - already-dead process
                pass

    @property
    def degraded(self) -> bool:
        """True once the evaluator has permanently fallen back to
        in-process serial evaluation."""
        return self._degraded

    @property
    def quarantined_signatures(self) -> Dict[str, str]:
        """Signatures barred from the pool (signature -> reason)."""
        return dict(self._quarantined)

    def flush_cache(self) -> int:
        """Persist newly added cache records; returns how many."""
        if self.cache is None:
            return 0
        return self.cache.flush()

    def close(self) -> None:
        """Shut the pool down and persist the cache.  Safe to call on a
        broken/degraded evaluator and after an exception mid-tuning —
        the cache flush runs even if pool shutdown fails."""
        pool, self._pool = self._pool, None
        try:
            if pool is not None:
                pool.shutdown(wait=True)
        finally:
            self.flush_cache()

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
