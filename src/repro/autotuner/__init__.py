"""The PetaBricks autotuner (paper §3.3).

The tuner searches the flat configuration space the compiler exports:
one multi-level algorithm selector per choice site plus integer tunables
(sequential cutoff, block size, user ``tunable`` declarations).

Components:

* :mod:`repro.autotuner.evaluation` — the objective: run a configuration
  on generated inputs, simulate the recorded task graph on the target
  :class:`~repro.runtime.machine.Machine`, return the makespan.
* :mod:`repro.autotuner.candidates` — candidate algorithms (configs) and
  the level-adding mutation that grows multi-level compositions.
* :mod:`repro.autotuner.nary` — n-ary search for scalar parameters, with
  a batch-objective hook for parallel probing.
* :mod:`repro.autotuner.parallel` — parallel candidate evaluation: a
  process-pool batch evaluator with deterministic per-task seeding and a
  persistent (JSONL) measurement cache shared across tuning runs.
* :mod:`repro.autotuner.tuner` — the bottom-up genetic tuner: seeded with
  every single-algorithm implementation, doubling the training input each
  generation, extending the fastest candidates with new levels.
* :mod:`repro.autotuner.consistency` — automated consistency checking of
  choices against each other (paper §3.5).
* :mod:`repro.autotuner.accuracy` — variable-accuracy support: Pareto
  fronts over (time, accuracy) and fastest-per-accuracy-bin selection
  (paper §4.1.3-4.1.4).
"""

from repro.autotuner.accuracy import fastest_per_bin, pareto_front
from repro.autotuner.candidates import Candidate, add_level, seed_population
from repro.autotuner.consistency import ConsistencyError, check_consistency
from repro.autotuner.evaluation import Evaluator, measurement_seed
from repro.autotuner.nary import nary_search
from repro.autotuner.parallel import (
    CandidateFailure,
    EvaluatorSpec,
    MeasurementCache,
    ParallelEvaluator,
)
from repro.autotuner.tuner import GeneticTuner, TuneResult

__all__ = [
    "Candidate",
    "CandidateFailure",
    "ConsistencyError",
    "Evaluator",
    "EvaluatorSpec",
    "GeneticTuner",
    "MeasurementCache",
    "ParallelEvaluator",
    "TuneResult",
    "measurement_seed",
    "add_level",
    "check_consistency",
    "fastest_per_bin",
    "nary_search",
    "pareto_front",
    "seed_population",
]
