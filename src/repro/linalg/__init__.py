"""Dense/banded linear algebra substrate — the LAPACK stand-in.

The paper's benchmarks call LAPACK for the pieces that are not the point
of the algorithmic-choice story: band Cholesky (DPBSV) for the Poisson
direct solver, and the tridiagonal eigensolvers underlying the
eigenproblem benchmark (steqr/stebz+stein/stevd).  This package
implements those algorithms here, on top of numpy array primitives:

* :mod:`repro.linalg.banded` — symmetric positive-definite banded
  Cholesky factorization and solve (unblocked reference + blocked fast
  path).
* :mod:`repro.linalg.householder` — Householder reduction of a dense
  symmetric matrix to tridiagonal form.
* :mod:`repro.linalg.tridiag_eig` — the three primitive algorithms of
  paper §4.2: QR/QL iteration, bisection + inverse iteration, and
  Cuppen's divide-and-conquer.
"""

from repro.linalg.banded import (
    BandedCholesky,
    band_from_dense,
    dense_from_band,
    random_spd_band,
)
from repro.linalg.householder import tridiagonalize
from repro.linalg.tridiag_eig import (
    eig_bisection,
    eig_divide_conquer,
    eig_qr,
    eigenvalues_ql,
    sturm_count,
)

__all__ = [
    "BandedCholesky",
    "band_from_dense",
    "dense_from_band",
    "eig_bisection",
    "eig_divide_conquer",
    "eig_qr",
    "eigenvalues_ql",
    "random_spd_band",
    "sturm_count",
    "tridiagonalize",
]
