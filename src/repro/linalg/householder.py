"""Householder reduction of a symmetric matrix to tridiagonal form.

The eigenproblem benchmark (paper §4.2) first reduces the input
``A = Q T Q^T`` with ``T`` symmetric tridiagonal; the three algorithmic
choices then operate on ``T``.  This is the standard Householder
tridiagonalization (LAPACK ``dsytrd`` stand-in): n-2 reflections, each a
rank-two symmetric update, O(4/3 n^3) flops.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def tridiagonalize(
    A: np.ndarray, want_q: bool = True
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reduce symmetric ``A`` to tridiagonal ``T = Q^T A Q``.

    Returns ``(d, e, Q)``: the diagonal (length n), the sub-diagonal
    (length n-1), and the orthogonal ``Q`` with ``A = Q T Q^T`` (identity
    when ``want_q`` is False).
    """
    A = np.array(A, dtype=float, copy=True)
    n = A.shape[0]
    if A.shape != (n, n):
        raise ValueError("tridiagonalize expects a square matrix")
    if not np.allclose(A, A.T, atol=1e-10 * max(1.0, float(np.abs(A).max(initial=0.0)))):
        raise ValueError("tridiagonalize expects a symmetric matrix")
    Q = np.eye(n)
    for k in range(n - 2):
        x = A[k + 1 :, k].copy()
        alpha = -np.sign(x[0]) * np.linalg.norm(x) if x[0] != 0 else -np.linalg.norm(x)
        if alpha == 0:
            continue  # column already in tridiagonal form
        v = x.copy()
        v[0] -= alpha
        v_norm = np.linalg.norm(v)
        if v_norm == 0:
            continue
        v /= v_norm
        # Apply the reflection H = I - 2 v v^T on both sides of the
        # trailing submatrix (rank-two update).
        sub = A[k + 1 :, k + 1 :]
        w = sub @ v
        coef = v @ w
        sub -= 2.0 * np.outer(v, w) + 2.0 * np.outer(w, v) - 4.0 * coef * np.outer(v, v)
        A[k + 1 :, k] = 0.0
        A[k, k + 1 :] = 0.0
        A[k + 1, k] = alpha
        A[k, k + 1] = alpha
        if want_q:
            Q[:, k + 1 :] -= 2.0 * np.outer(Q[:, k + 1 :] @ v, v)
    d = np.diagonal(A).copy()
    e = np.diagonal(A, -1).copy()
    return d, e, Q
