"""Symmetric tridiagonal eigensolvers (paper §4.2's three primitives).

All operate on ``(d, e)``: the diagonal (length n) and sub-diagonal
(length n-1) of a symmetric tridiagonal matrix ``T``, and return
``(lam, Q)`` with eigenvalues ascending and ``T @ Q == Q @ diag(lam)``.

* :func:`eig_qr` — QL/QR iteration with implicit Wilkinson shifts and
  accumulated rotations (LAPACK ``steqr`` stand-in, O(n^3)).
* :func:`eig_bisection` — Sturm-sequence bisection for the eigenvalues
  ("a simple formula to count the number of eigenvalues less than a
  given value") followed by inverse iteration for the eigenvectors;
  embarrassingly parallel across eigenpairs (``stebz``+``stein``).
* :func:`eig_divide_conquer` — Cuppen's divide and conquer with rank-one
  tearing, deflation, vectorized secular-equation bisection, and
  Löwner-formula eigenvector stabilization (``stevd`` stand-in).
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

_EPS = np.finfo(float).eps


def _validate(d: np.ndarray, e: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    d = np.asarray(d, dtype=float)
    e = np.asarray(e, dtype=float)
    if d.ndim != 1 or e.ndim != 1 or e.shape[0] != max(0, d.shape[0] - 1):
        raise ValueError(
            f"expected diagonal n and sub-diagonal n-1, got {d.shape}, {e.shape}"
        )
    return d, e


# ---------------------------------------------------------------------------
# QL/QR iteration
# ---------------------------------------------------------------------------


def eig_qr(
    d: np.ndarray, e: np.ndarray, max_sweeps: int = 50
) -> Tuple[np.ndarray, np.ndarray]:
    """Implicit-shift QL iteration with eigenvector accumulation (tql2)."""
    d, e = _validate(d, e)
    n = d.shape[0]
    if n == 0:
        return d.copy(), np.zeros((0, 0))
    diag = d.copy()
    off = np.zeros(n)
    off[: n - 1] = e
    Z = np.eye(n)

    for l in range(n):
        for iteration in range(max_sweeps + 1):
            # Find a small off-diagonal element to split at.
            m = l
            while m < n - 1:
                dd = abs(diag[m]) + abs(diag[m + 1])
                if abs(off[m]) <= _EPS * dd:
                    break
                m += 1
            if m == l:
                break
            if iteration == max_sweeps:
                raise RuntimeError("QL iteration failed to converge")
            # Wilkinson-style shift from the leading 2x2.
            g = (diag[l + 1] - diag[l]) / (2.0 * off[l])
            r = math.hypot(g, 1.0)
            g = diag[m] - diag[l] + off[l] / (g + math.copysign(r, g))
            s, c = 1.0, 1.0
            p = 0.0
            for i in range(m - 1, l - 1, -1):
                f = s * off[i]
                b = c * off[i]
                r = math.hypot(f, g)
                off[i + 1] = r
                if r == 0.0:
                    diag[i + 1] -= p
                    off[m] = 0.0
                    break
                s = f / r
                c = g / r
                g = diag[i + 1] - p
                r = (diag[i] - g) * s + 2.0 * c * b
                p = s * r
                diag[i + 1] = g + p
                g = c * r - b
                # Accumulate the rotation into the eigenvector matrix.
                col_next = Z[:, i + 1].copy()
                Z[:, i + 1] = s * Z[:, i] + c * col_next
                Z[:, i] = c * Z[:, i] - s * col_next
            else:
                diag[l] -= p
                off[l] = g
                off[m] = 0.0
                continue
            # Inner break (r == 0): retry the sweep.
            continue

    order = np.argsort(diag)
    return diag[order], Z[:, order]


def eigenvalues_ql(
    d: np.ndarray, e: np.ndarray, max_sweeps: int = 50
) -> np.ndarray:
    """Eigenvalues only, via the same QL iteration without accumulation."""
    d, e = _validate(d, e)
    n = d.shape[0]
    if n == 0:
        return d.copy()
    diag = d.copy()
    off = np.zeros(n)
    off[: n - 1] = e
    for l in range(n):
        for iteration in range(max_sweeps + 1):
            m = l
            while m < n - 1:
                dd = abs(diag[m]) + abs(diag[m + 1])
                if abs(off[m]) <= _EPS * dd:
                    break
                m += 1
            if m == l:
                break
            if iteration == max_sweeps:
                raise RuntimeError("QL iteration failed to converge")
            g = (diag[l + 1] - diag[l]) / (2.0 * off[l])
            r = math.hypot(g, 1.0)
            g = diag[m] - diag[l] + off[l] / (g + math.copysign(r, g))
            s, c = 1.0, 1.0
            p = 0.0
            for i in range(m - 1, l - 1, -1):
                f = s * off[i]
                b = c * off[i]
                r = math.hypot(f, g)
                off[i + 1] = r
                if r == 0.0:
                    diag[i + 1] -= p
                    off[m] = 0.0
                    break
                s = f / r
                c = g / r
                g = diag[i + 1] - p
                r = (diag[i] - g) * s + 2.0 * c * b
                p = s * r
                diag[i + 1] = g + p
                g = c * r - b
            else:
                diag[l] -= p
                off[l] = g
                off[m] = 0.0
                continue
            continue
    return np.sort(diag)


# ---------------------------------------------------------------------------
# bisection + inverse iteration
# ---------------------------------------------------------------------------


def sturm_count(d: np.ndarray, e: np.ndarray, x) -> np.ndarray:
    """Number of eigenvalues of T strictly less than ``x``.

    ``x`` may be a scalar or an array of shifts; the count is computed for
    every shift simultaneously (one pass over the matrix, vectorized
    across shifts).
    """
    d, e = _validate(d, e)
    shifts = np.atleast_1d(np.asarray(x, dtype=float))
    n = d.shape[0]
    counts = np.zeros(shifts.shape, dtype=int)
    q = np.full(shifts.shape, 1.0)
    tiny = np.finfo(float).tiny
    prev = np.ones_like(shifts)
    for i in range(n):
        e2 = e[i - 1] ** 2 if i > 0 else 0.0
        q = d[i] - shifts - e2 / prev
        q = np.where(np.abs(q) < tiny, -tiny, q)
        counts += (q < 0).astype(int)
        prev = q
    return counts if np.ndim(x) else int(counts[0])


def eig_bisection(
    d: np.ndarray,
    e: np.ndarray,
    tol: float = 0.0,
    invit_steps: int = 3,
) -> Tuple[np.ndarray, np.ndarray]:
    """All eigenpairs by bisection (values) + inverse iteration (vectors).

    Every eigenvalue is refined independently (vectorized across the
    spectrum), which is what makes this algorithm "embarrassingly
    parallel" in the paper.  Eigenvectors come from inverse iteration on
    the shifted matrix, vectorized across eigenpairs, with Gram-Schmidt
    re-orthogonalization inside clusters of close eigenvalues.
    """
    d, e = _validate(d, e)
    n = d.shape[0]
    if n == 0:
        return d.copy(), np.zeros((0, 0))
    radius = np.zeros(n)
    radius[: n - 1] += np.abs(e)
    radius[1:] += np.abs(e)
    lo = np.full(n, float(np.min(d - radius)))
    hi = np.full(n, float(np.max(d + radius)))
    span = float(np.max(hi - lo)) or 1.0
    if tol <= 0.0:
        tol = _EPS * span * 4

    k = np.arange(n)
    while float(np.max(hi - lo)) > tol:
        mid = 0.5 * (lo + hi)
        counts = sturm_count(d, e, mid)
        go_right = counts <= k
        lo = np.where(go_right, mid, lo)
        hi = np.where(go_right, hi, mid)
    lam = 0.5 * (lo + hi)

    Q = _inverse_iteration(d, e, lam, invit_steps)
    return lam, Q


def _inverse_iteration(
    d: np.ndarray, e: np.ndarray, lam: np.ndarray, steps: int
) -> np.ndarray:
    """Eigenvectors via inverse iteration, vectorized across eigenpairs.

    Solves ``(T - lam_k I) v = w`` with a guarded non-pivoting
    tridiagonal elimination (adequate for the well-separated spectra of
    the benchmark; clusters are re-orthogonalized afterwards)."""
    n = d.shape[0]
    m = lam.shape[0]
    rng = np.random.default_rng(1234)
    V = rng.standard_normal((n, m))
    V /= np.linalg.norm(V, axis=0, keepdims=True)
    guard = _EPS * max(1.0, float(np.max(np.abs(d)) if n else 1.0))

    # Precompute the elimination (Thomas) coefficients per shift.
    for _ in range(steps):
        V = _solve_shifted(d, e, lam, V, guard)
        V /= np.linalg.norm(V, axis=0, keepdims=True)

    # Re-orthogonalize clusters of nearly equal eigenvalues.
    spread = max(float(lam[-1] - lam[0]), 1.0) if m else 1.0
    cluster_tol = 1e-8 * spread
    start = 0
    for idx in range(1, m + 1):
        if idx == m or lam[idx] - lam[idx - 1] > cluster_tol:
            if idx - start > 1:
                block, _ = np.linalg.qr(V[:, start:idx])
                V[:, start:idx] = block
            start = idx
    return V


def _solve_shifted(
    d: np.ndarray,
    e: np.ndarray,
    lam: np.ndarray,
    B: np.ndarray,
    guard: float,
) -> np.ndarray:
    """Solve (T - lam_k) x_k = b_k for every column k simultaneously."""
    n = d.shape[0]
    m = lam.shape[0]
    # Forward elimination.
    main = np.empty((n, m))
    rhs = np.array(B, copy=True)
    main[0] = d[0] - lam
    main[0] = np.where(np.abs(main[0]) < guard, guard, main[0])
    for i in range(1, n):
        factor = e[i - 1] / main[i - 1]
        main[i] = (d[i] - lam) - factor * e[i - 1]
        main[i] = np.where(np.abs(main[i]) < guard, guard, main[i])
        rhs[i] -= factor * rhs[i - 1]
    # Back substitution.
    X = np.empty_like(rhs)
    X[n - 1] = rhs[n - 1] / main[n - 1]
    for i in range(n - 2, -1, -1):
        X[i] = (rhs[i] - e[i] * X[i + 1]) / main[i]
    return X


# ---------------------------------------------------------------------------
# divide and conquer (Cuppen)
# ---------------------------------------------------------------------------


def eig_divide_conquer(
    d: np.ndarray,
    e: np.ndarray,
    base_size: int = 4,
    recurse: Optional[callable] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Cuppen's divide-and-conquer.

    ``recurse`` overrides the recursive solver for the two halves —
    the PetaBricks eigenproblem benchmark routes it back through the
    transform so the autotuner can switch algorithms at every level.
    Defaults to self-recursion with :func:`eig_qr` below ``base_size``.
    """
    d, e = _validate(d, e)
    n = d.shape[0]
    if n <= max(1, base_size):
        return eig_qr(d, e)
    sub = recurse or (
        lambda dd, ee: eig_divide_conquer(dd, ee, base_size, recurse)
    )

    m = n // 2
    rho = e[m - 1]
    if rho == 0.0:  # already block diagonal: solve halves independently
        lam1, Q1 = sub(d[:m], e[: m - 1])
        lam2, Q2 = sub(d[m:], e[m:])
        lam = np.concatenate([lam1, lam2])
        Q = np.zeros((n, n))
        Q[:m, :m] = Q1
        Q[m:, m:] = Q2
        order = np.argsort(lam)
        return lam[order], Q[:, order]

    d1 = d[:m].copy()
    d1[m - 1] -= rho
    d2 = d[m:].copy()
    d2[0] -= rho
    lam1, Q1 = sub(d1, e[: m - 1])
    lam2, Q2 = sub(d2, e[m:])

    D = np.concatenate([lam1, lam2])
    z = np.concatenate([Q1[m - 1, :], Q2[0, :]])

    lam, U = rank_one_update(D, z, rho)
    Q = np.zeros((n, n))
    Q[:m, :] = Q1 @ U[:m, :]
    Q[m:, :] = Q2 @ U[m:, :]
    return lam, Q


def rank_one_update(
    D: np.ndarray, z: np.ndarray, rho: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Eigendecomposition of ``diag(D) + rho * z z^T``.

    Handles deflation (tiny ``z`` components and coincident ``D``
    entries via Givens rotations), solves the secular equation by
    vectorized bisection, and rebuilds ``z`` with the Löwner formula for
    numerically orthogonal eigenvectors.
    """
    n = D.shape[0]
    if rho < 0:  # normalize to rho > 0 by negation: eig(-A) = -eig(A)
        lam, U = rank_one_update(-D[::-1], z[::-1], -rho)
        return -lam[::-1], U[::-1, ::-1]

    order = np.argsort(D)
    D = D[order]
    z = z[order].copy()
    norm_scale = max(float(np.max(np.abs(D)) if n else 0.0), abs(rho) * float(z @ z), 1e-30)
    deflate_tol = 8 * _EPS * norm_scale

    # Givens rotations to merge (nearly) coincident diagonal entries.
    rotations = []  # (i, j, c, s) applied to pairs with D_i ~= D_j
    for i in range(n - 1):
        j = i + 1
        if abs(D[j] - D[i]) <= deflate_tol and z[i] != 0.0 and z[j] != 0.0:
            r = math.hypot(z[i], z[j])
            c, s = z[j] / r, z[i] / r
            z[j] = r
            z[i] = 0.0
            rotations.append((i, j, c, s))

    active = np.abs(z) > deflate_tol
    idx_active = np.nonzero(active)[0]
    idx_deflated = np.nonzero(~active)[0]

    lam = np.empty(n)
    U = np.zeros((n, n))
    # Deflated eigenpairs pass through unchanged.
    for i in idx_deflated:
        U[i, i] = 1.0
        lam[i] = D[i]

    if idx_active.size:
        Da = D[idx_active]
        za = z[idx_active]
        lam_active = _secular_roots(Da, za, rho)
        # Loewner formula: recompute z so that the computed lam are the
        # exact eigenvalues of a nearby problem (Gu-Eisenstat).
        za_hat = _loewner_z(Da, lam_active, rho)
        za_hat = np.copysign(za_hat, za)
        diffs = Da[:, None] - lam_active[None, :]
        # Guard exact zeros (can only occur after deflation slop).
        tiny = np.finfo(float).tiny
        diffs = np.where(np.abs(diffs) < tiny, tiny, diffs)
        vecs = za_hat[:, None] / diffs
        vecs /= np.linalg.norm(vecs, axis=0, keepdims=True)
        for col_pos, col in enumerate(idx_active):
            U[idx_active, col] = vecs[:, col_pos]
            lam[col] = lam_active[col_pos]

    # Undo the deflation rotations on the eigenvector rows.
    for i, j, c, s in reversed(rotations):
        row_i = U[i, :].copy()
        row_j = U[j, :].copy()
        U[i, :] = c * row_i + s * row_j
        U[j, :] = -s * row_i + c * row_j

    # Undo the initial sort.
    U_full = np.zeros_like(U)
    U_full[order, :] = U
    final = np.argsort(lam)
    return lam[final], U_full[:, final]


def _secular_roots(D: np.ndarray, z: np.ndarray, rho: float) -> np.ndarray:
    """Roots of 1 + rho * sum(z_i^2 / (D_i - x)) = 0, one per interval
    (D_k, D_{k+1}) plus one beyond D_max; vectorized bisection."""
    k = D.shape[0]
    z2 = z * z
    upper_bound = D[-1] + rho * float(z2.sum()) + 1e-30
    lo = D.copy()
    hi = np.empty(k)
    hi[:-1] = D[1:]
    hi[-1] = upper_bound
    # Open the brackets minimally inside the poles (one ulp), so roots
    # glued to a pole are still representable inside the bracket.
    lo = np.nextafter(lo, np.inf)
    hi = np.nextafter(hi, -np.inf)

    def secular(x: np.ndarray) -> np.ndarray:
        # x: (k,) evaluation points -> f(x) vectorized: (k,)
        diffs = D[:, None] - x[None, :]
        tiny = np.finfo(float).tiny
        diffs = np.where(diffs == 0.0, tiny, diffs)
        return 1.0 + rho * np.sum(z2[:, None] / diffs, axis=0)

    # f is increasing on each interval from -inf (right of pole D_k) to
    # +inf (left of pole D_{k+1}); 128 bisection steps reach ~1 ulp of
    # the bracket width.
    for _ in range(128):
        mid = 0.5 * (lo + hi)
        positive = secular(mid) > 0.0
        hi = np.where(positive, mid, hi)
        lo = np.where(positive, lo, mid)
    return 0.5 * (lo + hi)


def _loewner_z(D: np.ndarray, lam: np.ndarray, rho: float) -> np.ndarray:
    """|z_i| from the Loewner formula:
    z_i^2 = (prod_k (lam_k - D_i)) / (rho * prod_{k != i} (D_k - D_i)),
    computed in log space for stability."""
    k = D.shape[0]
    num = lam[None, :] - D[:, None]  # (i, k)
    den = D[None, :] - D[:, None]  # (i, k), zero on the diagonal
    tiny = np.finfo(float).tiny
    log_num = np.log(np.maximum(np.abs(num), tiny)).sum(axis=1)
    den_off = np.where(np.eye(k, dtype=bool), 1.0, den)
    log_den = np.log(np.maximum(np.abs(den_off), tiny)).sum(axis=1)
    log_z2 = log_num - log_den - math.log(abs(rho) if rho else 1.0)
    z2 = np.exp(np.clip(log_z2, -700, 700))
    return np.sqrt(z2)
