"""Symmetric positive-definite banded Cholesky (LAPACK DPBSV stand-in).

Storage: LAPACK-style lower diagonal-ordered band.  For a matrix ``A`` of
order ``N`` with (half-)bandwidth ``b``, ``band[d, j] = A[j+d, j]`` for
``d = 0..b`` (``band[0]`` is the main diagonal).

Two factorization paths:

* :meth:`BandedCholesky.factor_reference` — the textbook unblocked
  algorithm, O(N b^2) scalar operations, implemented with explicit loops;
  the ground truth used in tests.
* :meth:`BandedCholesky.factor` — a blocked algorithm: any SPD band
  matrix of bandwidth ``b`` is block tridiagonal in ``b x b`` blocks, so
  the factorization reduces to dense block operations (Cholesky of the
  pivot block, triangular solve for the sub-diagonal block, symmetric
  update), giving numpy-speed O(N b^2) work with O(N/b) Python overhead.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np


def random_spd_band(order: int, bandwidth: int, rng) -> np.ndarray:
    """A random symmetric positive-definite banded matrix (dense form).

    Off-diagonals are standard normal; each diagonal entry is then set
    strictly above the absolute row sum of its off-diagonal entries.  A
    symmetric strictly diagonally dominant matrix with positive diagonal
    is positive definite for *every* draw — unlike a fixed diagonal
    shift, which an unlucky sample (e.g. a single N(0,1) entry below
    ``-shift``) can defeat, breaking Cholesky at pivot 0.

    ``rng`` is a :class:`numpy.random.Generator`.
    """
    if order < 1:
        raise ValueError("order must be >= 1")
    if not 0 <= bandwidth < order:
        raise ValueError(f"bandwidth {bandwidth} invalid for order {order}")
    dense = np.zeros((order, order))
    for d in range(1, bandwidth + 1):
        values = rng.standard_normal(order - d)
        idx = np.arange(order - d)
        dense[idx + d, idx] = values
        dense[idx, idx + d] = values
    off_diagonal = np.abs(dense).sum(axis=1)
    np.fill_diagonal(dense, off_diagonal + 1.0 + rng.random(order))
    return dense


def band_from_dense(dense: np.ndarray, bandwidth: int) -> np.ndarray:
    """Extract lower diagonal-ordered band storage from a dense matrix."""
    order = dense.shape[0]
    band = np.zeros((bandwidth + 1, order))
    for d in range(bandwidth + 1):
        band[d, : order - d] = np.diagonal(dense, -d)
    return band


def dense_from_band(band: np.ndarray) -> np.ndarray:
    """Reconstruct the full symmetric dense matrix from band storage."""
    bandwidth = band.shape[0] - 1
    order = band.shape[1]
    dense = np.zeros((order, order))
    for d in range(bandwidth + 1):
        idx = np.arange(order - d)
        dense[idx + d, idx] = band[d, : order - d]
        if d:
            dense[idx, idx + d] = band[d, : order - d]
    return dense


def _solve_lower_triangular(L: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Solve L X = B for lower-triangular L by forward substitution
    (row loop with vectorized updates; no LAPACK triangular solver)."""
    n = L.shape[0]
    X = np.array(B, dtype=float, copy=True)
    if X.ndim == 1:
        X = X[:, None]
        squeeze = True
    else:
        squeeze = False
    for i in range(n):
        if i:
            X[i] -= L[i, :i] @ X[:i]
        X[i] /= L[i, i]
    return X[:, 0] if squeeze else X


def _solve_upper_triangular(U: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Solve U X = B for upper-triangular U by back substitution."""
    n = U.shape[0]
    X = np.array(B, dtype=float, copy=True)
    if X.ndim == 1:
        X = X[:, None]
        squeeze = True
    else:
        squeeze = False
    for i in range(n - 1, -1, -1):
        if i + 1 < n:
            X[i] -= U[i, i + 1 :] @ X[i + 1 :]
        X[i] /= U[i, i]
    return X[:, 0] if squeeze else X


def _dense_cholesky(A: np.ndarray) -> np.ndarray:
    """Unblocked dense Cholesky (column form), from scratch."""
    n = A.shape[0]
    L = np.zeros_like(A)
    for j in range(n):
        s = A[j, j] - L[j, :j] @ L[j, :j]
        if s <= 0:
            raise np.linalg.LinAlgError(
                f"matrix not positive definite at pivot {j}"
            )
        L[j, j] = math.sqrt(s)
        if j + 1 < n:
            L[j + 1 :, j] = (A[j + 1 :, j] - L[j + 1 :, :j] @ L[j, :j]) / L[j, j]
    return L


class BandedCholesky:
    """Factorization ``A = L L^T`` of an SPD banded matrix.

    Usage::

        chol = BandedCholesky(band)   # factors immediately (blocked)
        x = chol.solve(b)
        flops = chol.work             # abstract work units (paper costing)
    """

    def __init__(self, band: np.ndarray, reference: bool = False) -> None:
        band = np.asarray(band, dtype=float)
        if band.ndim != 2:
            raise ValueError("band storage must be 2-D (diagonals x order)")
        self.bandwidth = band.shape[0] - 1
        self.order = band.shape[1]
        #: abstract work units: N * (b+1)^2 for the factorization, the
        #: classic operation count for band Cholesky.
        self.work = float(self.order) * (self.bandwidth + 1) ** 2
        if reference:
            self._L_band = self.factor_reference(band)
            self._blocks = None
        else:
            self._blocks = self.factor(band)
            self._L_band = None

    # -- reference (unblocked, from scratch, loops) -------------------------

    @staticmethod
    def factor_reference(band: np.ndarray) -> np.ndarray:
        """Textbook unblocked band Cholesky; returns L in band storage."""
        bandwidth = band.shape[0] - 1
        order = band.shape[1]
        L = np.zeros_like(band)
        # Work row-wise on a dense scratch of the band window for clarity.
        rows = np.zeros((order, bandwidth + 1))  # rows[i, b - (i-j)] = L[i, j]
        for i in range(order):
            j_start = max(0, i - bandwidth)
            for j in range(j_start, i + 1):
                # dot over overlapping columns k in [max(0, i-b, j-b), j)
                k_start = max(0, i - bandwidth, j - bandwidth)
                acc = 0.0
                for k in range(k_start, j):
                    acc += rows[i, bandwidth - (i - k)] * rows[j, bandwidth - (j - k)]
                a_ij = band[i - j, j]
                if i == j:
                    val = a_ij - acc
                    if val <= 0:
                        raise np.linalg.LinAlgError(
                            f"matrix not positive definite at pivot {i}"
                        )
                    rows[i, bandwidth] = math.sqrt(val)
                else:
                    rows[i, bandwidth - (i - j)] = (a_ij - acc) / rows[
                        j, bandwidth
                    ]
        for d in range(bandwidth + 1):
            for j in range(order - d):
                L[d, j] = rows[j + d, bandwidth - d]
        return L

    # -- blocked fast path ----------------------------------------------------

    def factor(self, band: np.ndarray) -> Tuple[list, list]:
        """Blocked factorization: view A as block tridiagonal with blocks
        of size ``b`` and factor block-column by block-column."""
        b = max(1, self.bandwidth)
        n = self.order
        dense_blocks = []  # diagonal blocks D_i
        sub_blocks = []  # sub-diagonal blocks B_i (below D_{i-1})
        starts = list(range(0, n, b))
        for s in starts:
            size = min(b, n - s)
            D = np.zeros((size, size))
            for d in range(min(self.bandwidth, size - 1) + 1):
                cols = np.arange(s, s + size - d)
                D[np.arange(size - d) + d, np.arange(size - d)] = band[d, cols]
            D = D + np.tril(D, -1).T
            dense_blocks.append(D)
        for index in range(1, len(starts)):
            s_prev, s_cur = starts[index - 1], starts[index]
            rows = min(b, n - s_cur)
            cols = s_cur - s_prev
            B = np.zeros((rows, cols))
            for d in range(1, self.bandwidth + 1):
                col_lo = max(s_prev, s_cur - d)
                col_hi = min(s_cur, n - d, s_cur - d + rows)
                if col_lo >= col_hi:
                    continue
                idx = np.arange(col_lo, col_hi)
                B[idx + d - s_cur, idx - s_prev] = band[d, idx]
            sub_blocks.append(B)

        L_diag = []
        L_sub = []
        carry: Optional[np.ndarray] = None
        for index, D in enumerate(dense_blocks):
            S = D if carry is None else D - carry @ carry.T
            L_ii = _dense_cholesky(S)
            L_diag.append(L_ii)
            if index < len(sub_blocks):
                B = sub_blocks[index]
                # L_{i+1,i} = B L_ii^{-T}: solve L_ii Y^T = B^T.
                Y = _solve_lower_triangular(L_ii, B.T).T
                L_sub.append(Y)
                carry = Y
        return L_diag, L_sub

    # -- solve ---------------------------------------------------------------

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve A x = rhs using the computed factorization."""
        rhs = np.asarray(rhs, dtype=float)
        if rhs.shape[0] != self.order:
            raise ValueError(
                f"rhs length {rhs.shape[0]} != order {self.order}"
            )
        self.work += 4.0 * self.order * (self.bandwidth + 1)
        if self._blocks is not None:
            return self._solve_blocked(rhs)
        return self._solve_reference(rhs)

    def _solve_blocked(self, rhs: np.ndarray) -> np.ndarray:
        L_diag, L_sub = self._blocks
        b = max(1, self.bandwidth)
        n = self.order
        starts = list(range(0, n, b))
        # Forward: L y = rhs.
        y = np.array(rhs, copy=True)
        for index, s in enumerate(starts):
            size = L_diag[index].shape[0]
            if index:
                prev_s = starts[index - 1]
                prev_size = L_diag[index - 1].shape[0]
                y[s : s + size] -= L_sub[index - 1] @ y[prev_s : prev_s + prev_size]
            y[s : s + size] = _solve_lower_triangular(
                L_diag[index], y[s : s + size]
            )
        # Backward: L^T x = y.
        x = y
        for index in range(len(starts) - 1, -1, -1):
            s = starts[index]
            size = L_diag[index].shape[0]
            if index + 1 < len(starts):
                nxt = starts[index + 1]
                nxt_size = L_diag[index + 1].shape[0]
                x[s : s + size] -= L_sub[index].T @ x[nxt : nxt + nxt_size]
            x[s : s + size] = _solve_upper_triangular(
                L_diag[index].T, x[s : s + size]
            )
        return x

    def _solve_reference(self, rhs: np.ndarray) -> np.ndarray:
        L = self._L_band
        b = self.bandwidth
        n = self.order
        y = np.array(rhs, copy=True)
        for i in range(n):
            k_start = max(0, i - b)
            for k in range(k_start, i):
                y[i] -= L[i - k, k] * y[k]
            y[i] /= L[0, i]
        x = y
        for i in range(n - 1, -1, -1):
            k_end = min(n, i + b + 1)
            for k in range(i + 1, k_end):
                x[i] -= L[k - i, i] * x[k]
            x[i] /= L[0, i]
        return x
