"""Command-line interface — the paper's Figure 2 workflow.

The original toolchain was: compile the source (step 1-2), autotune to
produce a configuration file (step 3), then either run with the
configuration (step 4a) or feed it back for a static build (step 4b).
The CLI mirrors those steps::

    python -m repro compile program.pbcc
    python -m repro tune program.pbcc -t Sort -o sort.cfg --machine xeon8
    python -m repro run program.pbcc -t Sort --random-input 1000 \\
        --config sort.cfg
    python -m repro report sort.cfg

plus one observability step beyond the paper's workflow::

    python -m repro trace program.pbcc -t Sort --random-input 1000 \\
        --machine xeon8 -o sort.trace.jsonl

``trace`` executes the transform, simulates the recorded task graph on
the chosen machine with a :class:`~repro.observe.trace.TraceSink`
attached, prints the metrics summary, and exports the event stream
(task start/finish, spawn, steal, idle transitions) as JSONL — to the
``-o`` file, or to stdout when ``-o`` is omitted.  ``tune --trace``
captures the autotuner's candidate timeline the same way.

Inputs for ``run`` come from ``--input file.npy`` / ``.txt`` (repeat per
input matrix, in declaration order) or ``--random-input N`` (uniform
random data for every declared input).  ``tune`` uses the transform's
``generator`` declaration when present, random data otherwise.

``batch`` serves a JSONL request stream through the batch execution
engine (:mod:`repro.batch`)::

    python -m repro batch program.pbcc requests.jsonl -o results.jsonl

Each request line is ``{"transform": NAME, "inputs": {...} | [...]}``
plus optional ``"config"`` (an inline configuration object) and
``"sizes"``; requests sharing a transform, exact input shapes, and
configuration run stacked along a batch axis, everything else falls
back to per-request execution with identical results.  One JSONL result
line comes back per request, in submission order.

``tune --jobs N`` evaluates candidate batches on ``N`` worker processes;
because every measurement is a pure function of ``(seed, configuration
signature, size, trial)`` the tuned configuration and history are
byte-identical for any ``N``.  ``tune --cache PATH`` persists every
measurement to a JSONL cache (keyed by machine profile, workers, trials,
seed, configuration signature, and size) so repeat invocations skip
already-simulated candidates entirely.

Tuning is fault tolerant: ``--measure-timeout`` bounds every
measurement with an adaptive deadline (hung candidates are culled like
any other nonviable candidate), ``--max-retries`` bounds recovery
retries for crashed workers and transient failures (the pool is rebuilt
automatically), and the cache is flushed after every batch so a killed
run loses at most one batch of measurements.  Recovery actions are
summarised on a ``fault recovery:`` line.  ``--inject SPEC`` (dev/test
only) turns on the deterministic fault injector of :mod:`repro.faults`
to exercise those paths.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from typing import List, Optional, Sequence

import numpy as np

from repro.autotuner import GeneticTuner
from repro.autotuner.parallel import EvaluatorSpec, ParallelEvaluator
from repro.compiler import ChoiceConfig, CompiledProgram, compile_program
from repro.faults import FaultInjector, FaultSpecError
from repro.observe import TraceSink
from repro.runtime import MACHINES, WorkStealingScheduler


def _load_program(path: str) -> CompiledProgram:
    with open(path, "r", encoding="utf-8") as handle:
        return compile_program(handle.read())


def _random_inputs(program: CompiledProgram, transform: str, size: int):
    """Uniform random arrays matching the transform's declared inputs."""
    target = program.transform(transform)

    def make(n: int, rng: random.Random):
        np_rng = np.random.default_rng(rng.getrandbits(32))
        arrays = []
        env = {var: n for var in target.ir.size_vars}
        for mat in target.ir.inputs:
            shape = tuple(dim.eval_floor(env) for dim in mat.dims)
            arrays.append(np_rng.random(shape))
        return arrays

    return make


def _load_input(path: str) -> np.ndarray:
    if path.endswith(".npy"):
        return np.load(path)
    return np.loadtxt(path)


def cmd_compile(args: argparse.Namespace) -> int:
    program = _load_program(args.source)
    for name, compiled in sorted(program.transforms.items()):
        ir = compiled.ir
        print(f"transform {name}")
        print(f"  inputs : {[m.name for m in ir.inputs]}")
        print(f"  outputs: {[m.name for m in ir.outputs]}")
        print(f"  rules  : {len(ir.rules)}")
        for key, segment in compiled.choice_sites():
            options = ", ".join(
                opt.describe(ir) for opt in segment.options
            )
            print(f"  site {key}: {segment.box}  choices: {options}")
        if compiled.grid.order_guards:
            guards = ", ".join(
                f"{g} >= 0" for g in compiled.grid.order_guards
            )
            print(f"  size requirements: {guards}")
    return 0


class _MissingInputs(Exception):
    """Raised when a transform needs inputs but none were provided."""


def _resolve_inputs(
    program: CompiledProgram, args: argparse.Namespace
) -> Optional[List[np.ndarray]]:
    """Inputs from --input files / --random-input N (shared by run/trace)."""
    transform = program.transform(args.transform)
    if args.input:
        return [_load_input(path) for path in args.input]
    if args.random_input is not None:
        rng = random.Random(args.seed)
        return _random_inputs(program, args.transform, args.random_input)(
            args.random_input, rng
        )
    if not transform.ir.inputs:
        return None
    raise _MissingInputs


def _parse_sizes(args: argparse.Namespace) -> dict:
    return dict(
        (key, int(value))
        for key, _, value in (item.partition("=") for item in args.size or [])
    )


def cmd_check(args: argparse.Namespace) -> int:
    from repro.analysis import run_check

    return run_check(args.source, fmt=args.format, strict=args.strict)


class _RewriteLoadError(Exception):
    """``repro rewrite`` could not obtain a program from its source."""


def _load_rewrite_program(path: str) -> CompiledProgram:
    """Program for ``repro rewrite``: DSL text, or an imported ``.py``
    module's ``build_program()`` (same contract as ``repro check``)."""
    if not path.endswith(".py"):
        return _load_program(path)
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        f"_repro_rewrite_{abs(hash(path))}", path
    )
    if spec is None or spec.loader is None:
        raise _RewriteLoadError(f"cannot import {path}")
    module = importlib.util.module_from_spec(spec)
    try:
        spec.loader.exec_module(module)
    except Exception as exc:
        raise _RewriteLoadError(f"import failed: {exc}") from exc
    builder = getattr(module, "build_program", None)
    if not callable(builder):
        raise _RewriteLoadError(
            f"{path} does not export build_program()"
        )
    return builder()


def cmd_rewrite(args: argparse.Namespace) -> int:
    """List proven rewrite opportunities, or apply them and emit DSL."""
    from repro.analysis.check import diagnostic_from_error
    from repro.analysis.depend import (
        check_depend,
        fusion_candidates,
        schedule_candidates,
    )
    from repro.analysis.diagnostics import Diagnostic
    from repro.language.errors import PetaBricksError
    from repro.rewrite import (
        REWRITE_BUDGET,
        UnparseError,
        interchange_transform,
        program_src,
        tile_transform,
    )

    def fail(message: str, hint: str = "") -> int:
        diag = Diagnostic(
            code="PB001",
            severity="error",
            message=message,
            hint=hint,
            path=args.source,
        )
        print(diag.format(), file=sys.stderr)
        return 2

    try:
        program = _load_rewrite_program(args.source)
    except _RewriteLoadError as exc:
        return fail(str(exc))
    except PetaBricksError as exc:
        print(
            diagnostic_from_error(exc, args.source).format(), file=sys.stderr
        )
        return 2
    if args.transform and args.transform not in program.transforms:
        print(f"error: unknown transform {args.transform!r}", file=sys.stderr)
        return 2
    names = (
        [args.transform] if args.transform else sorted(program.transforms)
    )

    candidates = {}
    schedules = {}
    diagnostics = []
    for name in names:
        compiled = program.transform(name)
        candidates[name] = fusion_candidates(compiled, REWRITE_BUDGET)
        schedules[name] = schedule_candidates(compiled, REWRITE_BUDGET)
        diagnostics.extend(check_depend(compiled, REWRITE_BUDGET, args.source))

    applied = {}
    rewritten = None
    if args.apply:
        out_transforms = []
        for name in sorted(program.transforms):
            compiled = program.transform(name)
            current = compiled
            did = False
            if name in names:
                variant = compiled.fused_variant()
                if variant is not None:
                    current = variant
                    did = True
                # Fuse-then-tile: schedule rewrites re-plan on the
                # (possibly fused) result, so a fused rule's iteration
                # space is what gets blocked.
                if args.tile:
                    current, tiled = tile_transform(
                        current, sizes=args.tile, budget=REWRITE_BUDGET
                    )
                    did = did or bool(tiled)
                if args.interchange:
                    current, swapped = interchange_transform(
                        current, budget=REWRITE_BUDGET
                    )
                    did = did or bool(swapped)
            applied[name] = did
            out_transforms.append(current.ir)
        try:
            rewritten = program_src(out_transforms)
        except UnparseError as exc:
            return fail(
                f"cannot emit rewritten source: {exc}",
                hint=(
                    "rules with native (Python) bodies have no DSL "
                    "source form; run --apply on the DSL original"
                ),
            )

    if args.json:
        payload = {
            "source": args.source,
            "transforms": {
                name: {
                    "candidates": [
                        {
                            "matrix": cand.matrix,
                            "producer": cand.producer,
                            "consumer": cand.consumer,
                            "status": cand.status,
                            "reason": cand.reason,
                            "distances": [
                                ["*" if d is None else str(d) for d in vec]
                                for vec in cand.distances
                            ],
                            "witness": (
                                cand.conflict.describe()
                                if cand.conflict
                                else ""
                            ),
                        }
                        for cand in candidates[name]
                    ],
                    "schedule_candidates": [
                        {
                            "segment": cand.segment,
                            "rule": cand.rule,
                            "status": cand.status,
                            "reason": cand.reason,
                            "chain_vars": list(cand.chain_vars),
                            "free_vars": list(cand.free_vars),
                            "witness": (
                                cand.witness.describe()
                                if cand.witness
                                else ""
                            ),
                        }
                        for cand in schedules[name]
                    ],
                    "applied": applied.get(name, False),
                }
                for name in names
            },
            "diagnostics": [d.to_dict() for d in diagnostics],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for name in names:
            cands = candidates[name]
            if not cands:
                print(f"{name}: no fusion candidates")
            for cand in cands:
                line = f"{name}: {cand.matrix} {cand.status}"
                if cand.status == "legal":
                    line += (
                        f" — fuse {cand.producer} into {cand.consumer}, "
                        f"distance {cand.distance_text()}"
                    )
                elif cand.reason:
                    line += f" — {cand.reason}"
                print(line)
                if cand.conflict:
                    print(f"  witness: {cand.conflict.describe()}")
            for cand in schedules[name]:
                line = (
                    f"{name}: schedule {cand.segment}/{cand.rule} "
                    f"{cand.status}"
                )
                if cand.status == "legal":
                    line += (
                        f" — tile/interchange over "
                        f"({', '.join(cand.free_vars)}) with chain "
                        f"({', '.join(cand.chain_vars)})"
                    )
                elif cand.reason:
                    line += f" — {cand.reason}"
                print(line)
                if cand.witness:
                    print(f"  witness: {cand.witness.describe()}")

    if args.apply and rewritten is not None:
        done_names = sorted(n for n, did in applied.items() if did)
        if not done_names:
            print("rewrite: no legal rewrites to apply", file=sys.stderr)
        else:
            print(
                f"rewrite: rewrote {', '.join(done_names)} "
                f"(re-verified clean)",
                file=sys.stderr,
            )
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(rewritten)
        elif not args.json:
            print(rewritten)
    return 0


_LEAF_PATHS = {"interp": 0, "closure": 1, "vector": 2}


def _apply_leaf_path(
    config: ChoiceConfig, args: argparse.Namespace
) -> ChoiceConfig:
    """Fold a ``--leaf-path`` override into the run's configuration."""
    leaf = getattr(args, "leaf_path", None)
    if leaf is None:
        return config
    config = config or ChoiceConfig()
    config.tunables[f"{args.transform}.__leaf_path__"] = _LEAF_PATHS[leaf]
    return config


def cmd_run(args: argparse.Namespace) -> int:
    program = _load_program(args.source)
    transform = program.transform(args.transform)
    config = ChoiceConfig.load(args.config) if args.config else None
    config = _apply_leaf_path(config, args)
    sizes = _parse_sizes(args)

    try:
        inputs = _resolve_inputs(program, args)
    except _MissingInputs:
        print("error: provide --input files or --random-input N", file=sys.stderr)
        return 2

    result = transform.run(inputs, config, sizes=sizes or None)
    for name, matrix in result.outputs.items():
        data = matrix.data
        if args.output:
            path = f"{args.output}.{name}.npy" if len(result.outputs) > 1 else args.output
            np.save(path, data)
            print(f"{name}: saved to {path} (shape {data.shape})")
        else:
            preview = np.array2string(data, threshold=20, precision=6)
            print(f"{name} (shape {data.shape}):\n{preview}")
    print(
        f"-- {result.rule_applications} rule applications, "
        f"{len(result.graph)} tasks, "
        f"{result.graph.total_work():.0f} work units"
    )
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    program = _load_program(args.source)
    transform = program.transform(args.transform)
    config = ChoiceConfig.load(args.config) if args.config else None
    config = _apply_leaf_path(config, args)
    machine = MACHINES[args.machine]
    workers = args.workers if args.workers else machine.cores
    sizes = _parse_sizes(args)

    try:
        inputs = _resolve_inputs(program, args)
    except _MissingInputs:
        print("error: provide --input files or --random-input N", file=sys.stderr)
        return 2

    sink = TraceSink()
    result = transform.run(inputs, config, sizes=sizes or None, sink=sink)
    schedule = WorkStealingScheduler(machine, seed=args.seed, sink=sink).run(
        result.graph, workers=workers
    )

    if args.output:
        lines = sink.write_jsonl(args.output)
        print(f"trace: {lines} events written to {args.output}")
    else:
        sys.stdout.write(sink.to_jsonl())

    report = sys.stdout if args.output else sys.stderr
    print(
        f"-- {args.transform} on {machine.name} x{workers}: "
        f"{schedule.tasks} tasks, {schedule.steals} steals, "
        f"makespan {schedule.makespan:.0f}, "
        f"speedup {schedule.speedup:.2f}, "
        f"utilization {schedule.utilization:.2f}",
        file=report,
    )
    for name, value in sorted(sink.counters.items()):
        print(f"   {name} = {value}", file=report)
    for name, hist in sorted(sink.histograms.items()):
        print(
            f"   {name}: count {hist.count}, mean {hist.mean:.1f}, "
            f"max {hist.max:.0f}",
            file=report,
        )
    return 0


#: recovery counters `repro tune` surfaces (counter name, report label).
_RECOVERY_COUNTERS = (
    ("tuner.pool.timeouts", "timeouts"),
    ("tuner.pool.retries", "retries"),
    ("tuner.pool.rebuilds", "pool rebuilds"),
    ("tuner.pool.quarantines", "quarantined candidates"),
    ("tuner.degraded_serial", "degraded to serial"),
    ("tuner.cache.corrupt_lines", "corrupt cache lines skipped"),
)


def cmd_tune(args: argparse.Namespace) -> int:
    with open(args.source, "r", encoding="utf-8") as handle:
        source_text = handle.read()
    # Counters (recovery accounting) are always collected; the event
    # stream — the expensive part — only when --trace asks for it.
    sink = TraceSink(capture_events=bool(args.trace))
    try:
        injector = FaultInjector.parse(args.inject) if args.inject else None
    except FaultSpecError as exc:
        print(f"error: --inject {exc}", file=sys.stderr)
        return 2
    # Parent and pool workers build their evaluators from the same
    # picklable spec, so every process measures identically; the result
    # is byte-for-byte the same for any --jobs value.
    spec = EvaluatorSpec.make(
        "repro.autotuner.parallel:evaluator_from_source",
        source_text,
        args.transform,
        args.machine,
        max_size=args.max_size,
    )
    evaluator = ParallelEvaluator.from_spec(
        spec,
        jobs=args.jobs,
        cache=args.cache,
        sink=sink,
        measure_timeout=args.measure_timeout if args.measure_timeout > 0 else None,
        max_retries=args.max_retries,
        injector=injector,
    )
    # Everything from here runs under try/finally: close() shuts the
    # pool down and flushes the cache even when tuning (or reporting)
    # raises mid-generation, so an interrupted run keeps every batch it
    # completed.
    try:
        tuner = GeneticTuner(
            evaluator,
            min_size=args.min_size,
            max_size=args.max_size,
            population_size=args.population,
            refine_passes=0,
        )
        result = tuner.tune()
    finally:
        evaluator.close()
    print(result.describe())
    for log in result.history:
        print(
            f"  size {log.size:>8}: best {log.best_time:>12.0f}  "
            f"({log.evaluated} evaluations)  {log.best_lineage}"
        )
    if args.output:
        result.config.save(args.output)
        print(f"configuration written to {args.output}")
    if args.cache:
        print(
            f"measurement cache: {len(evaluator.cache)} entries in "
            f"{args.cache} ({evaluator.evaluations} fresh evaluations "
            f"this run)"
        )
    recovered = [
        f"{sink.counter(name)} {label}"
        for name, label in _RECOVERY_COUNTERS
        if sink.counter(name)
    ]
    if recovered:
        print(f"fault recovery: {', '.join(recovered)}")
    if args.trace:
        lines = sink.write_jsonl(args.trace)
        print(
            f"candidate timeline: {lines} events "
            f"({sink.counter('tuner.evaluations')} evaluations, "
            f"{sink.counter('tuner.cache_hits')} cache hits) "
            f"written to {args.trace}"
        )
    return 0


def cmd_batch(args: argparse.Namespace) -> int:
    import json

    from repro.batch import BatchEngine

    program = _load_program(args.source)
    default_config = ChoiceConfig.load(args.config) if args.config else None
    sink = TraceSink(capture_events=False)
    engine = BatchEngine(sink=sink, max_stack=args.max_stack)

    if args.requests == "-":
        lines = sys.stdin.read().splitlines()
    else:
        with open(args.requests, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    # Under --strict an unparseable line (bad JSON, unknown transform)
    # fails the whole invocation immediately, naming the offending line;
    # without --strict it degrades to a per-line error record so the
    # rest of the stream still runs.
    entries = []  # ("result", request_id) | ("malformed", lineno, message)
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            payload = json.loads(line)
            transform = program.transform(payload["transform"])
        except Exception as exc:
            if args.strict:
                print(
                    f"error: request line {lineno}: {exc}", file=sys.stderr
                )
                return 2
            entries.append(
                ("malformed", lineno, f"{type(exc).__name__}: {exc}")
            )
            continue
        config = default_config
        if payload.get("config") is not None:
            config = ChoiceConfig.from_json(json.dumps(payload["config"]))
        entries.append(
            (
                "result",
                engine.submit(
                    transform,
                    payload.get("inputs"),
                    config,
                    payload.get("sizes"),
                ),
            )
        )

    from repro.serve.records import malformed_record, result_record

    results = {result.request_id: result for result in engine.gather()}
    failed = 0
    out = open(args.output, "w", encoding="utf-8") if args.output else sys.stdout
    try:
        for entry in entries:
            if entry[0] == "malformed":
                failed += 1
                record = malformed_record(entry[1], entry[2])
            else:
                record = result_record(results[entry[1]])
                failed += 0 if record["ok"] else 1
            out.write(json.dumps(record, sort_keys=True) + "\n")
    finally:
        if args.output:
            out.close()

    report = sys.stderr if not args.output else sys.stdout
    rate = sink.histograms.get("batch.requests_per_sec")
    print(
        f"-- {sink.counter('batch.requests')} requests in "
        f"{sink.counter('batch.buckets')} buckets: "
        f"{sink.counter('batch.stacked_requests')} stacked, "
        f"{sink.counter('batch.fallbacks')} fallbacks, "
        f"{failed} errors"
        + (f", {rate.mean:.0f} requests/sec" if rate else ""),
        file=report,
    )
    return 1 if (failed and args.strict) else 0


def cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.serve import ResilienceConfig, ServeApp, ServeDaemon

    injector = None
    if getattr(args, "inject", None):
        from repro.faults import FaultInjector, FaultSpecError

        try:
            injector = FaultInjector.parse(args.inject)
        except FaultSpecError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    resilience = ResilienceConfig(
        max_concurrency=args.max_concurrency,
        max_queue=args.max_queue,
        default_deadline_ms=args.default_deadline_ms,
        drain_timeout_s=args.drain_timeout,
    )
    app = ServeApp(
        store_dir=args.store,
        machine=args.machine,
        tune_workers=args.tune_workers,
        resilience=resilience,
        injector=injector,
    )
    for path in args.preload or []:
        with open(path, "r", encoding="utf-8") as handle:
            info = app.compile({"source": handle.read()})
        print(f"preloaded {path}: program {info['program']}")
    daemon = ServeDaemon(app, host=args.host, port=args.port)

    def _sigterm(_signum, _frame) -> None:
        # Graceful drain on SIGTERM: shed new work, let admitted
        # requests and the running tune job finish (bounded by the hard
        # drain timeout), then break the accept loop.  shutdown() must
        # not run on the signal-handler frame, hence the helper thread.
        app.begin_drain()

        def _drain_then_stop() -> None:
            app.drain()
            daemon.server.shutdown()

        threading.Thread(target=_drain_then_stop, daemon=True).start()

    signal.signal(signal.SIGTERM, _sigterm)
    recovered = app.recovered
    store_note = f", store {args.store}" if args.store else ", no store"
    print(
        f"repro serve: http://{args.host}:{daemon.port}"
        f" (machine {args.machine}{store_note}, recovered "
        f"{recovered['programs']} programs / {recovered['configs']} configs)",
        flush=True,
    )
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        daemon.server.server_close()
        app.close()
    print("repro serve: stopped")
    return 0


def _client_source(client, path: str) -> str:
    """Register a source file with the daemon; returns the program hash."""
    with open(path, "r", encoding="utf-8") as handle:
        return client.ensure_program(handle.read())


def cmd_client(args: argparse.Namespace) -> int:
    import json

    from repro.serve.client import ServeClient, ServeClientError
    from repro.serve.resilience import RetryPolicy

    client = ServeClient(
        args.host,
        args.port,
        timeout=args.timeout,
        retry=RetryPolicy(
            retries=args.retries, backoff_s=args.retry_backoff
        ),
    )
    try:
        if args.client_command == "health":
            print(json.dumps(client.health(), indent=2, sort_keys=True))
            return 0
        if args.client_command == "ready":
            verdict = client.ready()
            print(json.dumps(verdict, indent=2, sort_keys=True))
            return 0 if verdict.get("ready") else 1
        if args.client_command == "stats":
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return 0
        if args.client_command == "shutdown":
            client.shutdown()
            print("daemon stopping")
            return 0
        if args.client_command == "compile":
            with open(args.source, "r", encoding="utf-8") as handle:
                info = client.compile(handle.read())
            cached = " (cached)" if info["cached"] else ""
            print(f"program {info['program']}{cached}")
            for name in info["transforms"]:
                print(f"  transform {name}")
            return 0
        if args.client_command == "check":
            report = client.check(_client_source(client, args.source))
            print(json.dumps(report, indent=2, sort_keys=True))
            return 0 if report["clean"] else 1
        if args.client_command == "run":
            return _client_run(client, args)
        if args.client_command == "batch":
            return _client_batch(client, args)
        if args.client_command == "tune":
            return _client_tune(client, args)
        raise AssertionError(f"unhandled {args.client_command!r}")
    except ServeClientError as exc:
        print(f"error: {exc.message}", file=sys.stderr)
        return 2
    except (ConnectionError, TimeoutError) as exc:
        print(
            f"error: cannot reach daemon at {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _client_run(client, args: argparse.Namespace) -> int:
    phash = _client_source(client, args.source)
    if args.input:
        inputs = [_load_input(path).tolist() for path in args.input]
    elif args.random_input is not None:
        # Random generation needs the transform's declared shapes, so the
        # convenience path compiles locally; served execution is unchanged.
        program = _load_program(args.source)
        rng = random.Random(args.seed)
        inputs = [
            array.tolist()
            for array in _random_inputs(
                program, args.transform, args.random_input
            )(args.random_input, rng)
        ]
    else:
        inputs = None
    config = None
    if args.config:
        import json

        with open(args.config, "r", encoding="utf-8") as handle:
            config = json.loads(handle.read())
    response = client.run(
        phash,
        args.transform,
        inputs,
        sizes=_parse_sizes(args) or None,
        machine=args.machine,
        config=config,
    )
    outputs = response["outputs"]
    for name, data in outputs.items():
        array = np.asarray(data, dtype=np.float64)
        if args.output:
            path = (
                f"{args.output}.{name}.npy"
                if len(outputs) > 1
                else args.output
            )
            np.save(path, array)
            print(f"{name}: saved to {path} (shape {array.shape})")
        else:
            preview = np.array2string(array, threshold=20, precision=6)
            print(f"{name} (shape {array.shape}):\n{preview}")
    meta = response["meta"]
    version = meta["version"] if meta["version"] is not None else "-"
    print(
        f"-- served: program {phash[:12]} bucket {meta['bucket']} "
        f"machine {meta['machine']} config v{version} "
        f"(registry {'hit' if meta['registry_hit'] else 'miss'})"
    )
    return 0


def _client_batch(client, args: argparse.Namespace) -> int:
    import json

    phash = _client_source(client, args.source)
    if args.requests == "-":
        lines = sys.stdin.read().splitlines()
    else:
        with open(args.requests, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    config = None
    if args.config:
        with open(args.config, "r", encoding="utf-8") as handle:
            config = json.loads(handle.read())
    try:
        response = client.batch(
            phash,
            lines,
            strict=args.strict,
            machine=args.machine,
            config=config,
        )
    except Exception as exc:
        from repro.serve.client import ServeClientError

        if isinstance(exc, ServeClientError) and exc.status == 400:
            print(f"error: {exc.message}", file=sys.stderr)
            return 2
        raise
    out = (
        open(args.output, "w", encoding="utf-8") if args.output else sys.stdout
    )
    try:
        for record in response["results"]:
            out.write(json.dumps(record, sort_keys=True) + "\n")
    finally:
        if args.output:
            out.close()
    failed = response["failed"]
    report = sys.stderr if not args.output else sys.stdout
    print(
        f"-- served {len(response['results'])} requests, {failed} errors "
        f"(machine {response['machine']})",
        file=report,
    )
    return 1 if (failed and args.strict) else 0


def _client_tune(client, args: argparse.Namespace) -> int:
    phash = _client_source(client, args.source)
    submitted = client.tune(
        phash,
        args.transform,
        machine=args.machine,
        min_size=args.min_size,
        max_size=args.max_size,
        population=args.population,
        jobs=args.jobs,
        bucket=args.bucket,
    )
    print(f"tune job {submitted['job']} queued")
    if not args.wait:
        return 0
    job = client.wait_job(submitted["job"], timeout=args.timeout)
    if job["state"] == "failed":
        print(f"tune job failed:\n{job.get('error', '')}", file=sys.stderr)
        return 1
    result = job["result"]
    print(
        f"tune job done: version {result['version']} "
        f"(digest {result['digest']}, best simulated time "
        f"{result['best_time']:.1f}) registered for "
        f"({result['program'][:12]}, {result['machine']}, "
        f"{result['bucket']})"
    )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    config = ChoiceConfig.load(args.config)
    print("choice sites:")
    for site, selector in sorted(config.choices.items()):
        print(f"  {site}: {selector.describe()}")
    if config.tunables:
        print("tunables:")
        for name, value in sorted(config.tunables.items()):
            print(f"  {name} = {value}")
    if config.leveled_tunables:
        print("size-leveled tunables:")
        for name, selector in sorted(config.leveled_tunables.items()):
            print(f"  {name}: {selector.describe()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PetaBricks (PLDI 2009 reproduction) command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="compile and show analyses")
    p_compile.add_argument("source")
    p_compile.set_defaults(func=cmd_compile)

    p_check = sub.add_parser(
        "check", help="run the static verifier suite (bounds/races/coverage/lints)"
    )
    p_check.add_argument(
        "source", nargs="+",
        help="DSL files, or .py modules defining build_program()/DSL constants",
    )
    p_check.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="diagnostic output format (default: %(default)s)",
    )
    p_check.add_argument(
        "--strict", action="store_true",
        help="exit 1 on warnings too (default: only errors fail)",
    )
    p_check.set_defaults(func=cmd_check)

    p_rewrite = sub.add_parser(
        "rewrite",
        help="list or apply verified IR rewrites (fusion, tiling, interchange)",
    )
    p_rewrite.add_argument(
        "source", help="DSL file (or .py module) to analyze/rewrite"
    )
    p_rewrite.add_argument(
        "-t", "--transform", default=None,
        help="restrict to one transform (default: all)",
    )
    p_rewrite.add_argument(
        "--list", action="store_true",
        help="list rewrite candidates with legality verdicts (the default)",
    )
    p_rewrite.add_argument(
        "--apply", action="store_true",
        help="apply every legal fusion and emit the rewritten DSL",
    )
    p_rewrite.add_argument(
        "--tile", type=int, default=0, metavar="N",
        help="with --apply: annotate every PB604-legal site with NxN "
        "tiles (after fusion, so fused rules tile too)",
    )
    p_rewrite.add_argument(
        "--interchange", action="store_true",
        help="with --apply: annotate every PB604-legal site to run the "
        "sequential chain per tile (cache-blocked order)",
    )
    p_rewrite.add_argument(
        "--json", action="store_true",
        help="machine-readable report (candidates + PB6xx diagnostics)",
    )
    p_rewrite.add_argument(
        "-o", "--output", default=None,
        help="write rewritten DSL here instead of stdout (with --apply)",
    )
    p_rewrite.set_defaults(func=cmd_rewrite)

    p_run = sub.add_parser("run", help="run a transform")
    p_run.add_argument("source")
    p_run.add_argument("-t", "--transform", required=True)
    p_run.add_argument("--config", help="choice configuration JSON")
    p_run.add_argument(
        "--input", action="append", help=".npy/.txt file per input matrix"
    )
    p_run.add_argument("--random-input", type=int, metavar="N")
    p_run.add_argument(
        "--size", action="append", metavar="VAR=VALUE",
        help="bind a free size variable",
    )
    p_run.add_argument("--output", help="save outputs as .npy")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument(
        "--leaf-path", choices=sorted(_LEAF_PATHS),
        help="leaf execution path override (default: closure)",
    )
    p_run.set_defaults(func=cmd_run)

    p_trace = sub.add_parser(
        "trace", help="run a transform and export a scheduler trace"
    )
    p_trace.add_argument("source")
    p_trace.add_argument("-t", "--transform", required=True)
    p_trace.add_argument("--config", help="choice configuration JSON")
    p_trace.add_argument(
        "--input", action="append", help=".npy/.txt file per input matrix"
    )
    p_trace.add_argument("--random-input", type=int, metavar="N")
    p_trace.add_argument(
        "--size", action="append", metavar="VAR=VALUE",
        help="bind a free size variable",
    )
    p_trace.add_argument(
        "--machine", choices=sorted(MACHINES), default="xeon8"
    )
    p_trace.add_argument(
        "--workers", type=int, help="worker count (default: all cores)"
    )
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument(
        "-o", "--output",
        help="JSONL trace file (omit to stream JSONL to stdout)",
    )
    p_trace.add_argument(
        "--leaf-path", choices=sorted(_LEAF_PATHS),
        help="leaf execution path override (default: closure)",
    )
    p_trace.set_defaults(func=cmd_trace)

    p_tune = sub.add_parser("tune", help="autotune a transform")
    p_tune.add_argument("source")
    p_tune.add_argument("-t", "--transform", required=True)
    p_tune.add_argument(
        "--machine", choices=sorted(MACHINES), default="xeon8"
    )
    p_tune.add_argument("--min-size", type=int, default=16)
    p_tune.add_argument("--max-size", type=int, default=4096)
    p_tune.add_argument("--population", type=int, default=6)
    p_tune.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="evaluate candidate batches on N worker processes "
             "(results are byte-identical for any N)",
    )
    p_tune.add_argument(
        "--cache", metavar="PATH",
        help="persistent JSONL measurement cache, shared across "
             "invocations and keyed by machine profile",
    )
    p_tune.add_argument(
        "--measure-timeout", type=float, default=30.0, metavar="SECONDS",
        help="floor of the adaptive per-measurement deadline; hung or "
             "pathologically slow candidates are culled as failures "
             "after bounded retries (0 disables deadlines; default: "
             "%(default)s)",
    )
    p_tune.add_argument(
        "--max-retries", type=int, default=3, metavar="N",
        help="bounded retries for transient worker failures, corrupt "
             "results, crashes, and deadline misses (default: "
             "%(default)s)",
    )
    p_tune.add_argument(
        "--inject", metavar="SPEC",
        help="(dev/test only) deterministic fault injection, e.g. "
             "'worker-crash:0.2,worker-hang:0.05,seed=7,hang=2' — "
             "see repro.faults for the grammar",
    )
    p_tune.add_argument("-o", "--output", help="write configuration JSON")
    p_tune.add_argument(
        "--trace", metavar="PATH",
        help="write the candidate-timeline JSONL trace to PATH",
    )
    p_tune.set_defaults(func=cmd_tune)

    p_batch = sub.add_parser(
        "batch", help="serve a JSONL request stream through the batch engine"
    )
    p_batch.add_argument("source")
    p_batch.add_argument(
        "requests",
        help="JSONL request file, one request per line ('-' for stdin)",
    )
    p_batch.add_argument(
        "--config", help="default choice configuration JSON (per-request "
        "inline configs override it)",
    )
    p_batch.add_argument(
        "--max-stack", type=int, default=1024, metavar="N",
        help="max requests per stacked sweep (default: %(default)s)",
    )
    p_batch.add_argument(
        "-o", "--output",
        help="JSONL results file (omit to stream results to stdout)",
    )
    p_batch.add_argument(
        "--strict", action="store_true",
        help="exit 1 when any request errored",
    )
    p_batch.set_defaults(func=cmd_batch)

    p_serve = sub.add_parser(
        "serve",
        help="start the compile-and-serve daemon (HTTP/JSON, see "
             "repro client)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=7209,
        help="listening port (0 = ephemeral; default: %(default)s)",
    )
    p_serve.add_argument(
        "--store", metavar="DIR",
        help="artifact store directory (programs + tuned configs survive "
             "restarts; omit for in-memory only)",
    )
    p_serve.add_argument(
        "--machine", choices=sorted(MACHINES), default="xeon8",
        help="default machine profile for registry keys and tuning",
    )
    p_serve.add_argument(
        "--tune-workers", type=int, default=1, metavar="N",
        help="background tuning worker threads (default: %(default)s)",
    )
    p_serve.add_argument(
        "--preload", action="append", metavar="FILE",
        help="compile a program at startup (repeatable)",
    )
    p_serve.add_argument(
        "--max-concurrency", type=int, default=8, metavar="N",
        help="weighted in-flight request limit (a batch weighs its line "
             "count; default: %(default)s)",
    )
    p_serve.add_argument(
        "--max-queue", type=int, default=16, metavar="N",
        help="bounded accept queue (weighted units) before requests shed "
             "with 429 (default: %(default)s)",
    )
    p_serve.add_argument(
        "--default-deadline-ms", type=float, default=None, metavar="MS",
        help="server-side default request deadline for /run and /batch "
             "(requests may override with 'deadline_ms'; default: none)",
    )
    p_serve.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="SECONDS",
        help="hard bound on graceful drain at /shutdown or SIGTERM "
             "(default: %(default)s)",
    )
    p_serve.add_argument(
        "--inject", metavar="SPEC",
        help="deterministic serve-side fault injection (dev/test), e.g. "
             "'conn-drop:0.3,slow-handler:0.2,seed=7' — see repro.faults",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_client = sub.add_parser(
        "client", help="thin client for a running repro serve daemon"
    )
    p_client.add_argument("--host", default="127.0.0.1")
    p_client.add_argument("--port", type=int, default=7209)
    p_client.add_argument(
        "--timeout", type=float, default=120.0, metavar="SECONDS",
        help="per-request (and --wait) timeout (default: %(default)s)",
    )
    p_client.add_argument(
        "--retries", type=int, default=3, metavar="N",
        help="retry budget for idempotent requests on connection errors "
             "and 429/503 sheds (default: %(default)s)",
    )
    p_client.add_argument(
        "--retry-backoff", type=float, default=0.05, metavar="SECONDS",
        help="base exponential-backoff delay between retries "
             "(default: %(default)s)",
    )
    client_sub = p_client.add_subparsers(dest="client_command", required=True)

    client_sub.add_parser("health", help="daemon liveness + registry sizes")
    client_sub.add_parser(
        "ready",
        help="readiness probe (exit 1 when draining or saturated)",
    )
    client_sub.add_parser("stats", help="counters, histograms, registry")
    client_sub.add_parser(
        "shutdown", help="gracefully drain and stop the daemon"
    )

    c_compile = client_sub.add_parser(
        "compile", help="register a program (compile-once)"
    )
    c_compile.add_argument("source")

    c_check = client_sub.add_parser(
        "check", help="static-verifier diagnostics for a registered program"
    )
    c_check.add_argument("source")

    c_run = client_sub.add_parser(
        "run", help="run a transform on the daemon (registry config)"
    )
    c_run.add_argument("source")
    c_run.add_argument("-t", "--transform", required=True)
    c_run.add_argument(
        "--input", action="append", help=".npy/.txt file per input matrix"
    )
    c_run.add_argument("--random-input", type=int, metavar="N")
    c_run.add_argument(
        "--size", action="append", metavar="VAR=VALUE",
        help="bind a free size variable",
    )
    c_run.add_argument(
        "--config", help="inline config JSON file (overrides the registry)"
    )
    c_run.add_argument(
        "--machine", help="machine profile for the registry lookup"
    )
    c_run.add_argument("--output", help="save outputs as .npy")
    c_run.add_argument("--seed", type=int, default=0)

    c_batch = client_sub.add_parser(
        "batch", help="serve a JSONL request stream through the daemon"
    )
    c_batch.add_argument("source")
    c_batch.add_argument(
        "requests", help="JSONL request file ('-' for stdin)"
    )
    c_batch.add_argument(
        "--config", help="default config JSON file for the whole stream"
    )
    c_batch.add_argument("--machine")
    c_batch.add_argument("-o", "--output", help="JSONL results file")
    c_batch.add_argument(
        "--strict", action="store_true",
        help="fail the whole request on an unparseable line / any error",
    )

    c_tune = client_sub.add_parser(
        "tune", help="enqueue a background tuning job on the daemon"
    )
    c_tune.add_argument("source")
    c_tune.add_argument("-t", "--transform", required=True)
    c_tune.add_argument("--machine")
    c_tune.add_argument("--min-size", type=int, default=16)
    c_tune.add_argument("--max-size", type=int, default=64)
    c_tune.add_argument("--population", type=int, default=6)
    c_tune.add_argument(
        "--jobs", type=int, default=1,
        help="measurement worker processes inside the tune job",
    )
    c_tune.add_argument(
        "--bucket", default="any",
        help="registry size bucket to publish under (default: %(default)s)",
    )
    c_tune.add_argument(
        "--wait", action="store_true",
        help="block until the job finishes and print the published version",
    )

    p_client.set_defaults(func=cmd_client)

    p_report = sub.add_parser("report", help="pretty-print a configuration")
    p_report.add_argument("config")
    p_report.set_defaults(func=cmd_report)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
