"""Code generation and the execution engine (paper §3.1 phase 5, §3.2).

A :class:`CompiledTransform` is the executable artifact: the analogue of
the generated C++.  Running one:

1. binds the transform's size variables from the concrete input shapes,
2. allocates output and ``through`` matrices,
3. walks the choice dependency graph in schedule order; for each
   choice-grid segment it consults the :class:`ChoiceConfig` selector for
   that site (dynamic mode) to pick an option — possibly a different rule
   per region size, which is how autotuned recursive compositions arise,
4. applies the chosen rule: per-instance with the iteration order and
   blocking dictated by the dependency analysis, or once for whole-region
   rules, recursing into other transforms for calls in the body,
5. records the task graph a work-stealing runtime would execute — each
   block/application is a task with its dependency edges; below the
   tuned sequential cutoff, code switches to the sequential version
   (tasks are inlined, no spawn overhead), mirroring the dual code paths
   of §3.2.

Static mode (:func:`specialize`) bakes a configuration in: selectors are
frozen, unreachable options are stripped, and the result no longer
consults a config at run time.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.language import ast_nodes as ast
from repro.language import parse_program
from repro.language.errors import CompileError, PetaBricksError
from repro.language.interp import Scope, evaluate, execute
from repro.runtime.matrix import Matrix, MatrixView
from repro.runtime.task import TaskGraph, TaskRecorder
from repro.symbolic import Affine, solve_bounds_for

from repro.compiler.choicegrid import ChoiceGrid, ChoiceOption, Segment, build_choice_grid
from repro.compiler.applicable import analyze_applicable_regions
from repro.compiler.config import ChoiceConfig, Selector, site_key
from repro.compiler.depgraph import ChoiceDepGraph, build_dep_graph
from repro.compiler.ir import (
    ROLE_INPUT,
    ROLE_OUTPUT,
    ROLE_THROUGH,
    ProgramIR,
    RegionIR,
    RuleIR,
    TransformIR,
    build_ir,
)

ArrayLike = Union[Matrix, MatrixView, np.ndarray, Sequence[float]]


class ExecutionError(PetaBricksError):
    """Raised for failures while running generated code (bad input
    shapes, unsatisfied size guards, runaway recursion...)."""


@dataclass
class RunResult:
    """Outputs plus the recorded task graph of one top-level run."""

    outputs: Dict[str, Matrix]
    graph: TaskGraph
    sizes: Dict[str, int]
    rule_applications: int

    def output(self, name: Optional[str] = None) -> np.ndarray:
        """Convenience: one output as a numpy array."""
        if name is None:
            if len(self.outputs) != 1:
                raise ValueError("transform has multiple outputs; pass a name")
            name = next(iter(self.outputs))
        return self.outputs[name].data


class _EngineState:
    """Mutable state threaded through one top-level run."""

    __slots__ = (
        "config",
        "recorder",
        "inline",
        "call_stack",
        "applications",
        "problem_size",
    )

    def __init__(self, config: ChoiceConfig, recorder: TaskRecorder) -> None:
        self.config = config
        self.recorder = recorder
        self.inline = False
        self.call_stack: List[Tuple[str, Tuple[int, ...]]] = []
        self.applications = 0
        #: footprint of the innermost transform frame; used to resolve
        #: size-leveled tunables.
        self.problem_size = 0


class CompiledProgram:
    """A compiled set of transforms sharing one call graph."""

    def __init__(self, ir: ProgramIR) -> None:
        self.ir = ir
        self.transforms: Dict[str, CompiledTransform] = {}
        for name, tir in ir.transforms.items():
            self.transforms[name] = CompiledTransform(tir, self)

    def transform(self, name: str) -> "CompiledTransform":
        if name not in self.transforms:
            raise CompileError(f"unknown transform {name!r}")
        return self.transforms[name]


def compile_program(
    source: Union[str, ProgramIR, TransformIR, Sequence[TransformIR]],
    template_values: Optional[Dict[str, Sequence[int]]] = None,
    analyze: bool = True,
) -> CompiledProgram:
    """Compile DSL source text, a ProgramIR, or built TransformIR(s).

    ``template_values`` instantiates template transforms: e.g.
    ``{"T": [4, 64]}`` creates independently-tuned ``T_4`` and ``T_64``.

    With ``analyze`` (the default) the error-severity subset of the
    static verifier suite (:mod:`repro.analysis`) runs over the compiled
    transforms at a small witness budget; a finding becomes a
    :class:`CompileError` carrying the diagnostic's code, position, and
    hint.  Pass ``analyze=False`` to skip it — ``repro check`` does, so
    problems report as diagnostics instead of raising, and tests that
    build intentionally-broken transforms can too.
    """
    if isinstance(source, str):
        ir = build_ir(parse_program(source), template_values)
    elif isinstance(source, ProgramIR):
        ir = source
    elif isinstance(source, TransformIR):
        ir = ProgramIR({source.name: source})
    else:
        table = {t.name: t for t in source}
        ir = ProgramIR(table)
    program = CompiledProgram(ir)
    if analyze:
        # Local import: repro.analysis sits on top of this module.
        from repro.analysis.check import analyze_program
        from repro.analysis.witness import WitnessBudget

        budget = WitnessBudget(
            max_size=2, max_envs=4, max_instances=256, max_cells=512
        )
        report = analyze_program(program, budget, errors_only=True)
        for diag in report:
            raise CompileError(
                f"{diag.transform}.{diag.rule}: {diag.message}"
                if diag.rule
                else f"{diag.transform}: {diag.message}",
                line=diag.line,
                column=diag.column,
                code=diag.code,
                hint=diag.hint,
            )
    return program


class CompiledTransform:
    """One executable transform: IR + analyses + execution engine."""

    def __init__(self, ir: TransformIR, program: CompiledProgram) -> None:
        self.ir = ir
        self.program = program
        analyze_applicable_regions(ir)
        self.grid: ChoiceGrid = build_choice_grid(ir)
        # The grid's order guards are checked at run time, so downstream
        # analyses may assume them: fold single-variable guards (e.g.
        # ``n - 2 >= 0``) into the size assumptions before dependency
        # analysis — this prunes provably-empty conservative edges.
        for guard in self.grid.order_guards:
            variables = guard.variables()
            if len(variables) != 1:
                continue
            var = variables[0]
            coeff = guard.coefficient(var)
            if coeff <= 0:
                continue
            minimum = math.ceil(-guard.constant / coeff)
            ir.assumptions = ir.assumptions.with_at_least(var, int(minimum))
        self.depgraph: ChoiceDepGraph = build_dep_graph(ir, self.grid)
        self._segments: Dict[str, Segment] = {
            seg.key: seg for seg in self.grid.all_segments()
        }

    # -- public API ------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.ir.name

    def choice_sites(self) -> List[Tuple[str, Segment]]:
        """All (config key, segment) choice sites of this transform."""
        return [
            (site_key(self.name, seg.matrix, seg.index), seg)
            for seg in self.grid.all_segments()
        ]

    def run(
        self,
        inputs: Union[Mapping[str, ArrayLike], Sequence[ArrayLike], None] = None,
        config: Optional[ChoiceConfig] = None,
        sizes: Optional[Mapping[str, int]] = None,
        sink=None,
    ) -> RunResult:
        """Execute the transform and record its task graph.

        ``sink`` (a :class:`repro.observe.trace.TraceSink`) receives the
        recorder's ``task_recorded`` events and counters when given.
        """
        config = config or ChoiceConfig()
        recorder = TaskRecorder(sink=sink)
        state = _EngineState(config, recorder)
        input_views = self._coerce_inputs(inputs)
        outputs, env = self._execute(state, input_views, sizes)
        return RunResult(
            outputs=outputs,
            graph=recorder.graph(),
            sizes={k: int(v) for k, v in env.items()},
            rule_applications=state.applications,
        )

    # -- input handling -----------------------------------------------------------

    def _coerce_inputs(
        self,
        inputs: Union[Mapping[str, ArrayLike], Sequence[ArrayLike], None],
    ) -> Dict[str, MatrixView]:
        declared = self.ir.inputs
        views: Dict[str, MatrixView] = {}
        if inputs is None:
            inputs = {}
        if isinstance(inputs, Mapping):
            items = dict(inputs)
            for mat in declared:
                if mat.name not in items:
                    raise ExecutionError(
                        f"{self.name}: missing input {mat.name!r}"
                    )
                views[mat.name] = _as_view(items.pop(mat.name))
            if items:
                raise ExecutionError(
                    f"{self.name}: unexpected inputs {sorted(items)}"
                )
        else:
            supplied = list(inputs)
            if len(supplied) != len(declared):
                raise ExecutionError(
                    f"{self.name}: expected {len(declared)} inputs, "
                    f"got {len(supplied)}"
                )
            for mat, value in zip(declared, supplied):
                views[mat.name] = _as_view(value)
        return views

    def _bind_sizes(
        self,
        input_views: Mapping[str, MatrixView],
        explicit: Optional[Mapping[str, int]],
    ) -> Dict[str, int]:
        env: Dict[str, int] = dict(explicit or {})
        # Iteratively bind size variables from dimension equations.
        equations: List[Tuple[Affine, int, str]] = []
        for mat in self.ir.inputs:
            view = input_views[mat.name]
            if view.ndim != mat.ndim:
                raise ExecutionError(
                    f"{self.name}: input {mat.name!r} is {view.ndim}-D, "
                    f"declared {mat.ndim}-D"
                )
            for expr, extent in zip(mat.dims, view.shape):
                equations.append((expr, extent, mat.name))
        progress = True
        while progress:
            progress = False
            for expr, extent, mat_name in equations:
                unknown = [v for v in expr.variables() if v not in env]
                if len(unknown) == 1:
                    var = unknown[0]
                    coeff = expr.coefficient(var)
                    rest = expr - Affine(0, {var: coeff})
                    value = (extent - rest.evaluate(env)) / coeff
                    if value.denominator != 1 or value < 0:
                        raise ExecutionError(
                            f"{self.name}: input {mat_name!r} extent "
                            f"{extent} does not satisfy {expr}"
                        )
                    env[var] = int(value)
                    progress = True
        for expr, extent, mat_name in equations:
            if any(v not in env for v in expr.variables()):
                raise ExecutionError(
                    f"{self.name}: cannot infer sizes from {mat_name!r} "
                    f"dimension {expr}"
                )
            if expr.eval_floor(env) != extent:
                raise ExecutionError(
                    f"{self.name}: input {mat_name!r} extent {extent} "
                    f"inconsistent with {expr} = {expr.eval_floor(env)}"
                )
        for var in self.ir.size_vars:
            if var not in env:
                raise ExecutionError(
                    f"{self.name}: size variable {var!r} unbound; pass "
                    f"sizes={{...}}"
                )
        return env

    # -- the engine -------------------------------------------------------------

    def _execute(
        self,
        state: _EngineState,
        input_views: Dict[str, MatrixView],
        explicit_sizes: Optional[Mapping[str, int]] = None,
    ) -> Tuple[Dict[str, Matrix], Dict[str, int]]:
        env = self._bind_sizes(input_views, explicit_sizes)

        for guard in self.grid.order_guards:
            if guard.evaluate(env) < 0:
                raise ExecutionError(
                    f"{self.name}: sizes {dict(env)} violate the assumed "
                    f"region ordering {guard} >= 0 (input too small for "
                    f"this program's choice grid)"
                )

        frame = (self.name, tuple(sorted(env.items())))
        if frame in state.call_stack:
            raise ExecutionError(
                f"{self.name}: infinite recursion — the configuration "
                f"selects a recursive rule at sizes {dict(env)}"
            )
        state.call_stack.append(frame)
        try:
            return self._execute_frame(state, input_views, env), env
        finally:
            state.call_stack.pop()

    def _execute_frame(
        self,
        state: _EngineState,
        input_views: Dict[str, MatrixView],
        env: Dict[str, int],
    ) -> Dict[str, Matrix]:
        # Allocate outputs and intermediates.
        views: Dict[str, MatrixView] = dict(input_views)
        outputs: Dict[str, Matrix] = {}
        for mat in self.ir.outputs + self.ir.throughs:
            shape = tuple(dim.eval_floor(env) for dim in mat.dims)
            storage = Matrix.zeros(shape, name=f"{self.name}.{mat.name}")
            views[mat.name] = storage.whole()
            if mat.role == ROLE_OUTPUT:
                outputs[mat.name] = storage

        # The problem size steering choice selection and the sequential
        # cutoff: total cells across every matrix of this call.  Using the
        # whole call footprint (not just outputs) makes the metric shrink
        # under *any* recursive decomposition, including splits along
        # reduction dimensions that keep the output size constant.
        problem_size = sum(view.size for view in views.values())
        cutoff = state.config.seq_cutoff(self.name)
        outer_inline = state.inline
        outer_problem_size = state.problem_size
        state.problem_size = problem_size
        if problem_size < cutoff:
            state.inline = True

        try:
            with state.recorder.task(label=self.name, inline=state.inline):
                node_tasks: Dict[str, Optional[int]] = {}
                for node in self.depgraph.schedule_order:
                    if node not in self._segments:
                        node_tasks[node] = None  # an input matrix
                        continue
                    segment = self._segments[node]
                    deps = sorted(
                        {
                            node_tasks[edge.src]
                            for edge in self.depgraph.edges_into(node)
                            if edge.src != node
                            and node_tasks.get(edge.src) is not None
                        }
                    )
                    node_tasks[node] = self._execute_segment(
                        state, segment, env, views, deps, problem_size
                    )
        finally:
            state.inline = outer_inline
            state.problem_size = outer_problem_size
        return outputs

    def _execute_segment(
        self,
        state: _EngineState,
        segment: Segment,
        env: Dict[str, int],
        views: Dict[str, MatrixView],
        deps: List[int],
        problem_size: int,
    ) -> Optional[int]:
        bounds = segment.box.concrete(env)
        volume = 1
        for lo, hi in bounds:
            volume *= max(0, hi - lo)
        if volume == 0:
            return None

        option = self._select_option(state.config, segment, problem_size)
        rule = self.ir.rules[option.primary]
        fallback = (
            self.ir.rules[option.fallback] if option.fallback is not None else None
        )
        self._check_size_guards(rule, env)

        with state.recorder.task(
            deps=deps, label=f"{self.name}.{segment.key}", inline=state.inline
        ) as segment_task:
            if rule.is_instance_rule:
                self._apply_instance_rule(
                    state, segment, rule, fallback, env, views, bounds
                )
            else:
                self._apply_whole_rule(state, rule, env, views)
        return segment_task

    def _select_option(
        self, config: ChoiceConfig, segment: Segment, volume: int
    ) -> ChoiceOption:
        key = site_key(self.name, segment.matrix, segment.index)
        selector = config.choice_for(key)
        if selector is None:
            selector = self._default_selector(segment)
        index = selector.pick(volume)
        if not (0 <= index < len(segment.options)):
            raise ExecutionError(
                f"{self.name}: configuration picks option {index} at "
                f"{key}, but the site has {len(segment.options)} options"
            )
        return segment.options[index]

    def _default_selector(self, segment: Segment) -> Selector:
        """Untuned default: the first non-recursive option (guaranteed to
        terminate); falls back to option 0."""
        for index, option in enumerate(segment.options):
            if not self.ir.rules[option.primary].is_recursive:
                return Selector.static(index)
        return Selector.static(0)

    def _check_size_guards(self, rule: RuleIR, env: Dict[str, int]) -> None:
        for guard in rule.size_guards:
            if guard.evaluate(env) < 0:
                raise ExecutionError(
                    f"{self.name} {rule.label}: size constraint "
                    f"{guard} >= 0 fails for {dict(env)}"
                )

    # -- instance rules --------------------------------------------------------

    def _apply_instance_rule(
        self,
        state: _EngineState,
        segment: Segment,
        rule: RuleIR,
        fallback: Optional[RuleIR],
        env: Dict[str, int],
        views: Dict[str, MatrixView],
        segment_bounds: Tuple[Tuple[int, int], ...],
    ) -> None:
        var_ranges = self._instance_ranges(segment, rule, env, segment_bounds)
        directions, var_order = self._var_directions(segment, rule)

        # Split the (priority-ordered) variables into the directional
        # outer loops — executed as sequential steps with a barrier
        # between them — and the free inner variables, whose instances
        # are data parallel within each step.
        chain_vars = [v for v in var_order if directions.get(v, 0) != 0]
        free_vars = [v for v in var_order if directions.get(v, 0) == 0]

        def values_of(var: str) -> List[int]:
            lo, hi = var_ranges[var]
            values = list(range(lo, hi))
            if directions.get(var, 0) < 0:
                values.reverse()
            return values

        free_ranges = [values_of(var) for var in free_vars]
        block = max(1, state.config.block_size(self.name))

        def run_instance(assignment: Dict[str, int]) -> None:
            instance_env = dict(env)
            instance_env.update(assignment)
            chosen = rule
            if rule.residual_where and not self._residual_ok(
                rule, instance_env
            ):
                if fallback is None:
                    raise ExecutionError(
                        f"{self.name} {rule.label}: where-clause fails "
                        f"at {assignment} and no fallback exists"
                    )
                chosen = fallback
            self._apply_once(state, chosen, instance_env, views)

        def run_step(step_env: Dict[str, int], deps: List[int]) -> List[int]:
            """One data-parallel step: blocked tasks over the free vars."""
            # product() of zero ranges yields one empty tuple (the single
            # instance of a chain-only rule); an empty *range* yields no
            # instances at all, as it should.
            instances = list(itertools.product(*free_ranges))
            block_tasks: List[int] = []
            for start in range(0, len(instances), block):
                with state.recorder.task(
                    deps=deps,
                    label=f"{rule.label}[{start}]",
                    inline=state.inline,
                ) as block_task:
                    for values in instances[start : start + block]:
                        assignment = dict(step_env)
                        assignment.update(zip(free_vars, values))
                        run_instance(assignment)
                if block_task is not None:
                    block_tasks.append(block_task)
            return block_tasks

        if not chain_vars:
            run_step({}, [])
            return
        previous: List[int] = []
        for chain_values in itertools.product(
            *(values_of(var) for var in chain_vars)
        ):
            step_env = dict(zip(chain_vars, chain_values))
            step_tasks = run_step(step_env, sorted(set(previous)))
            if step_tasks:
                previous = step_tasks

    def _instance_ranges(
        self,
        segment: Segment,
        rule: RuleIR,
        env: Dict[str, int],
        segment_bounds: Tuple[Tuple[int, int], ...],
    ) -> Dict[str, Tuple[int, int]]:
        """Concrete [lo, hi) per rule variable: the preimage of the
        segment under the to-binding, intersected with the applicable
        variable bounds."""
        ranges: Dict[str, Tuple[int, int]] = {}
        for var in rule.rule_vars:
            interval = rule.var_bounds[var]
            ranges[var] = interval.concrete(env)

        for region in rule.to_regions:
            if region.matrix != segment.matrix:
                continue
            for dim, interval in enumerate(region.box.intervals):
                expr = interval.lo  # cell bindings: lo is the coordinate
                seg_lo, seg_hi = segment_bounds[dim]
                rule_vars_here = [
                    v for v in expr.variables() if v in rule.var_bounds
                ]
                if not rule_vars_here:
                    continue
                if len(rule_vars_here) > 1:
                    raise ExecutionError(
                        f"{self.name} {rule.label}: output coordinate "
                        f"{expr} couples rule variables"
                    )
                var = rule_vars_here[0]
                solved = solve_bounds_for(var, expr, seg_lo, seg_hi)
                if solved is None:
                    continue
                lo, hi = solved.concrete(env)
                old_lo, old_hi = ranges[var]
                ranges[var] = (max(lo, old_lo), min(hi, old_hi))
        return ranges

    def _var_directions(
        self, segment: Segment, rule: RuleIR
    ) -> Tuple[Dict[str, int], List[str]]:
        """Iteration direction per rule variable, plus the loop-nesting
        order (outermost first), from the dependency analysis."""
        order = self.depgraph.rule_directions.get(
            (segment.key, rule.rule_id)
        )
        if order is None:
            return {}, list(rule.rule_vars)
        directions: Dict[str, int] = {}
        controlling_dim: Dict[str, int] = {}
        for region in rule.to_regions:
            if region.matrix != segment.matrix:
                continue
            for dim, interval in enumerate(region.box.intervals):
                for var in interval.lo.variables():
                    if var not in rule.var_bounds:
                        continue
                    controlling_dim.setdefault(var, dim)
                    if order.signs[dim] == 0:
                        continue
                    coeff = interval.lo.coefficient(var)
                    sign = 1 if coeff > 0 else -1
                    required = order.signs[dim] * sign
                    if directions.get(var, required) != required:
                        raise ExecutionError(
                            f"{self.name} {rule.label}: variable {var!r} "
                            f"has conflicting iteration directions"
                        )
                    directions[var] = required
        # Nest loops by the dependency analysis' dimension priority.
        rank = {dim: pos for pos, dim in enumerate(order.priority)}
        var_order = sorted(
            rule.rule_vars,
            key=lambda v: rank.get(controlling_dim.get(v, 0), 0),
        )
        return directions, var_order

    def _residual_ok(self, rule: RuleIR, env: Dict[str, int]) -> bool:
        scope = Scope(dict(env))
        return all(
            float(evaluate(cond, scope)) != 0 for cond in rule.residual_where
        )

    # -- rule application ------------------------------------------------------------

    def _apply_whole_rule(
        self,
        state: _EngineState,
        rule: RuleIR,
        env: Dict[str, int],
        views: Dict[str, MatrixView],
    ) -> None:
        self._apply_once(state, rule, dict(env), views)

    def _apply_once(
        self,
        state: _EngineState,
        rule: RuleIR,
        env: Dict[str, int],
        views: Dict[str, MatrixView],
    ) -> None:
        state.applications += 1
        bindings: Dict[str, object] = {}
        for region in rule.to_regions + rule.from_regions:
            bindings[region.bind_name] = _region_view(
                region, env, views[region.matrix]
            )
        tunables = {
            t.name: state.config.tunable_at(
                f"{self.name}.{t.name}",
                state.problem_size,
                t.default if t.default is not None else t.lo,
            )
            for t in self.ir.tunables
        }

        if rule.native_body is not None:
            context = NativeContext(
                engine=self,
                state=state,
                bindings=bindings,
                env=dict(env),
                tunables=tunables,
            )
            rule.native_body(context)
            state.recorder.charge(rule.base_work)
            return

        scope_bindings: Dict[str, object] = {}
        scope_bindings.update(env)
        scope_bindings.update(tunables)
        scope_bindings.update(bindings)
        scope = Scope(
            scope_bindings,
            call_transform=lambda name, args: self._call_sibling(
                state, name, args
            ),
        )
        execute(rule.body, scope)
        state.recorder.charge(rule.base_work + scope.ops)

    def _call_sibling(
        self, state: _EngineState, name: str, args: Sequence[MatrixView]
    ) -> MatrixView:
        callee = self.program.transform(name)
        outputs, _ = callee._execute(
            state, callee._coerce_inputs(list(args))
        )
        if len(outputs) != 1:
            raise ExecutionError(
                f"call to {name!r} in an expression requires exactly one "
                f"output, it has {len(outputs)}"
            )
        return next(iter(outputs.values())).whole()


# ---------------------------------------------------------------------------
# Native rule bodies
# ---------------------------------------------------------------------------


class NativeContext:
    """The interface handed to native (Python) rule bodies.

    Provides the bound region views, size variables, tunables, work
    accounting, parallel task structure, and calls to other transforms —
    everything the embedded C++ of the original could reach through the
    runtime library.
    """

    def __init__(
        self,
        engine: CompiledTransform,
        state: _EngineState,
        bindings: Dict[str, object],
        env: Dict[str, int],
        tunables: Dict[str, int],
    ) -> None:
        self._engine = engine
        self._state = state
        self._bindings = bindings
        self._env = env
        self._tunables = tunables

    def __getitem__(self, name: str) -> MatrixView:
        if name not in self._bindings:
            raise ExecutionError(f"no binding named {name!r}")
        return self._bindings[name]  # type: ignore[return-value]

    def var(self, name: str) -> int:
        if name not in self._env:
            raise ExecutionError(f"no variable named {name!r}")
        return int(self._env[name])

    def tunable(self, name: str, default: Optional[int] = None) -> int:
        if name in self._tunables:
            return self._tunables[name]
        if default is not None:
            return default
        raise ExecutionError(f"no tunable named {name!r}")

    @property
    def config(self) -> ChoiceConfig:
        return self._state.config

    def charge(self, work: float) -> None:
        """Charge abstract work units to the current task."""
        self._state.recorder.charge(work)

    def call(self, name: str, *inputs: ArrayLike) -> MatrixView:
        """Run another transform (or this one recursively) and return its
        single output as a view."""
        views = [_as_view(value) for value in inputs]
        return self._engine._call_sibling(self._state, name, views)

    def call_multi(self, name: str, *inputs: ArrayLike) -> Dict[str, Matrix]:
        """Run a transform with multiple outputs."""
        callee = self._engine.program.transform(name)
        views = [_as_view(value) for value in inputs]
        outputs, _ = callee._execute(
            self._state, callee._coerce_inputs(views)
        )
        return outputs

    def parallel(self, *thunks: Callable[[], object]) -> List[object]:
        """Run thunks as sibling tasks (parallel in the task graph; the
        scheduler simulator may overlap them)."""
        results: List[object] = []
        for index, thunk in enumerate(thunks):
            with self._state.recorder.task(
                label=f"par{index}", inline=self._state.inline
            ):
                results.append(thunk())
        return results

    def spawn(self, thunk: Callable[[], object]) -> object:
        """Run one thunk in a child task."""
        return self.parallel(thunk)[0]


# ---------------------------------------------------------------------------
# static specialization
# ---------------------------------------------------------------------------


def dead_choice_report(
    program: CompiledProgram, config: ChoiceConfig
) -> Dict[str, List[str]]:
    """Which options static specialization eliminates per choice site.

    The original fed the configuration back into the compiler "to
    eliminate unused choices and allow additional optimizations"; this
    reports, per site, the rule choices the given configuration can
    never select (by label), i.e. the dead code a static build strips.
    """
    report: Dict[str, List[str]] = {}
    for name, compiled in program.transforms.items():
        for key, segment in compiled.choice_sites():
            selector = config.choice_for(key)
            if selector is None:
                selector = compiled._default_selector(segment)
            used = set(selector.options_used())
            dead = [
                option.describe(compiled.ir)
                for index, option in enumerate(segment.options)
                if index not in used
            ]
            if dead:
                report[key] = dead
    return report


def specialize(
    program: CompiledProgram, config: ChoiceConfig
) -> CompiledProgram:
    """Static code generation mode: bake ``config`` into the program.

    The returned program ignores configs passed at run time (matching the
    original's statically-compiled binaries, where the C++ compiler could
    optimize away dead choices).
    """

    class _StaticTransform(CompiledTransform):
        def run(self, inputs=None, config_override=None, sizes=None, **kw):  # type: ignore[override]
            return CompiledTransform.run(self, inputs, config, sizes)

    static = CompiledProgram.__new__(CompiledProgram)
    static.ir = program.ir
    static.transforms = {}
    for name, compiled in program.transforms.items():
        clone = _StaticTransform.__new__(_StaticTransform)
        clone.ir = compiled.ir
        clone.program = static
        clone.grid = compiled.grid
        clone.depgraph = compiled.depgraph
        clone._segments = compiled._segments
        static.transforms[name] = clone
    return static


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _as_view(value: ArrayLike) -> MatrixView:
    if isinstance(value, MatrixView):
        return value
    if isinstance(value, Matrix):
        return value.whole()
    return Matrix.from_array(value).whole()


def _region_view(
    region: RegionIR, env: Dict[str, int], base: MatrixView
) -> MatrixView:
    bounds = region.box.concrete(env)
    if region.view_kind == "cell":
        return base.cell(*(lo for lo, _ in bounds))
    if region.view_kind == "row":
        return base.row(bounds[1][0])
    if region.view_kind == "column":
        return base.column(bounds[0][0])
    if region.view_kind == "all":
        return base
    los = [lo for lo, _ in bounds]
    his = [hi for _, hi in bounds]
    return base.region(*los, *his)
