"""Code generation and the execution engine (paper §3.1 phase 5, §3.2).

A :class:`CompiledTransform` is the executable artifact: the analogue of
the generated C++.  Running one:

1. binds the transform's size variables from the concrete input shapes,
2. allocates output and ``through`` matrices,
3. walks the choice dependency graph in schedule order; for each
   choice-grid segment it consults the :class:`ChoiceConfig` selector for
   that site (dynamic mode) to pick an option — possibly a different rule
   per region size, which is how autotuned recursive compositions arise,
4. applies the chosen rule: per-instance with the iteration order and
   blocking dictated by the dependency analysis, or once for whole-region
   rules, recursing into other transforms for calls in the body,
5. records the task graph a work-stealing runtime would execute — each
   block/application is a task with its dependency edges; below the
   tuned sequential cutoff, code switches to the sequential version
   (tasks are inlined, no spawn overhead), mirroring the dual code paths
   of §3.2.

Static mode (:func:`specialize`) bakes a configuration in: selectors are
frozen, unreachable options are stripped, and the result no longer
consults a config at run time.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.engine_fast import (
    LEAF_CLOSURE,
    LEAF_INTERP,
    LEAF_VECTOR,
    Geometry,
    LRUCache,
    RuleKernel,
    VectorPlan,
    build_geometry,
    geometry_key,
    lower_rule,
)
from repro.language import ast_nodes as ast
from repro.language import parse_program
from repro.language.errors import CompileError, PetaBricksError
from repro.language.interp import Scope, evaluate, execute
from repro.runtime.matrix import Matrix, MatrixView
from repro.runtime.task import TaskGraph, TaskRecorder
from repro.symbolic import Affine, solve_bounds_for

from repro.compiler.choicegrid import ChoiceGrid, ChoiceOption, Segment, build_choice_grid
from repro.compiler.applicable import analyze_applicable_regions
from repro.compiler.config import ChoiceConfig, Selector, site_key
from repro.compiler.depgraph import ChoiceDepGraph, build_dep_graph
from repro.compiler.ir import (
    ROLE_INPUT,
    ROLE_OUTPUT,
    ROLE_THROUGH,
    ProgramIR,
    RegionIR,
    RuleIR,
    TransformIR,
    build_ir,
)

ArrayLike = Union[Matrix, MatrixView, np.ndarray, Sequence[float]]

#: Simulated-work model for the vectorized leaf: one step charges
#: ``volume * (base_work + static_ops) * _VECTOR_WORK_FACTOR +
#: _VECTOR_STEP_WORK``.  The factor models the per-element speedup of
#: slice arithmetic over per-cell calls; the flat term models the fixed
#: slice-setup cost.  Together they make ``__leaf_path__`` a genuine
#: tradeoff for the autotuner: vector wins on large blocks, loses below
#: the (tunable) cutoff.
_VECTOR_WORK_FACTOR = 1.0 / 16.0
_VECTOR_STEP_WORK = 32.0

#: Geometry entries are small, but recursive transforms can visit many
#: distinct size-envs; cap the cache rather than grow without bound.
_GEOM_CACHE_LIMIT = 4096


class ExecutionError(PetaBricksError):
    """Raised for failures while running generated code (bad input
    shapes, unsatisfied size guards, runaway recursion...)."""


@dataclass
class RunResult:
    """Outputs plus the recorded task graph of one top-level run."""

    outputs: Dict[str, Matrix]
    graph: TaskGraph
    sizes: Dict[str, int]
    rule_applications: int

    def output(self, name: Optional[str] = None) -> np.ndarray:
        """Convenience: one output as a numpy array."""
        if name is None:
            if len(self.outputs) != 1:
                raise ValueError("transform has multiple outputs; pass a name")
            name = next(iter(self.outputs))
        return self.outputs[name].data


#: "fused variant not planned yet" marker (None is a valid cached plan).
_FUSED_UNSET = object()


class _EngineState:
    """Mutable state threaded through one top-level run."""

    __slots__ = (
        "config",
        "recorder",
        "inline",
        "call_stack",
        "applications",
        "problem_size",
    )

    def __init__(self, config: ChoiceConfig, recorder: TaskRecorder) -> None:
        self.config = config
        self.recorder = recorder
        self.inline = False
        self.call_stack: List[Tuple[str, Tuple[int, ...]]] = []
        self.applications = 0
        #: footprint of the innermost transform frame; used to resolve
        #: size-leveled tunables.
        self.problem_size = 0


class CompiledProgram:
    """A compiled set of transforms sharing one call graph."""

    def __init__(self, ir: ProgramIR) -> None:
        self.ir = ir
        self.transforms: Dict[str, CompiledTransform] = {}
        for name, tir in ir.transforms.items():
            self.transforms[name] = CompiledTransform(tir, self)

    def transform(self, name: str) -> "CompiledTransform":
        if name not in self.transforms:
            raise CompileError(f"unknown transform {name!r}")
        return self.transforms[name]


def compile_program(
    source: Union[str, ProgramIR, TransformIR, Sequence[TransformIR]],
    template_values: Optional[Dict[str, Sequence[int]]] = None,
    analyze: bool = True,
) -> CompiledProgram:
    """Compile DSL source text, a ProgramIR, or built TransformIR(s).

    ``template_values`` instantiates template transforms: e.g.
    ``{"T": [4, 64]}`` creates independently-tuned ``T_4`` and ``T_64``.

    With ``analyze`` (the default) the error-severity subset of the
    static verifier suite (:mod:`repro.analysis`) runs over the compiled
    transforms at a small witness budget; a finding becomes a
    :class:`CompileError` carrying the diagnostic's code, position, and
    hint.  Pass ``analyze=False`` to skip it — ``repro check`` does, so
    problems report as diagnostics instead of raising, and tests that
    build intentionally-broken transforms can too.
    """
    if isinstance(source, str):
        ir = build_ir(parse_program(source), template_values)
    elif isinstance(source, ProgramIR):
        ir = source
    elif isinstance(source, TransformIR):
        ir = ProgramIR({source.name: source})
    else:
        table = {t.name: t for t in source}
        ir = ProgramIR(table)
    program = CompiledProgram(ir)
    if analyze:
        # Local import: repro.analysis sits on top of this module.
        from repro.analysis.check import analyze_program
        from repro.analysis.witness import WitnessBudget

        budget = WitnessBudget(
            max_size=2, max_envs=4, max_instances=256, max_cells=512
        )
        report = analyze_program(program, budget, errors_only=True)
        for diag in report:
            raise CompileError(
                f"{diag.transform}.{diag.rule}: {diag.message}"
                if diag.rule
                else f"{diag.transform}: {diag.message}",
                line=diag.line,
                column=diag.column,
                code=diag.code,
                hint=diag.hint,
            )
    return program


class CompiledTransform:
    """One executable transform: IR + analyses + execution engine."""

    def __init__(self, ir: TransformIR, program: CompiledProgram) -> None:
        self.ir = ir
        self.program = program
        analyze_applicable_regions(ir)
        self.grid: ChoiceGrid = build_choice_grid(ir)
        # The grid's order guards are checked at run time, so downstream
        # analyses may assume them: fold single-variable guards (e.g.
        # ``n - 2 >= 0``) into the size assumptions before dependency
        # analysis — this prunes provably-empty conservative edges.
        for guard in self.grid.order_guards:
            variables = guard.variables()
            if len(variables) != 1:
                continue
            var = variables[0]
            coeff = guard.coefficient(var)
            if coeff <= 0:
                continue
            minimum = math.ceil(-guard.constant / coeff)
            ir.assumptions = ir.assumptions.with_at_least(var, int(minimum))
        self.depgraph: ChoiceDepGraph = build_dep_graph(ir, self.grid)
        self._segments: Dict[str, Segment] = {
            seg.key: seg for seg in self.grid.all_segments()
        }
        # Rule-kernel compilation (repro.engine_fast): each DSL body is
        # lowered to a closure once, on first use (lazily, so only rules
        # that actually execute pay lowering, and tooling that rewrites
        # rule IR after compilation still gets kernels for the rewritten
        # rules).  Rules the lowerer cannot prove bit-for-bit equivalent
        # keep the interpreter, so a failed lowering is a lost
        # optimization, never a wrong answer.
        self._kernels: Dict[int, Optional[RuleKernel]] = {}
        # Lazily-populated caches: iteration geometry per (segment, rule,
        # size-env), direction analysis per (segment, rule), and vector
        # plans per (segment, rule, fallback?).  The size-keyed caches
        # are LRU-bounded: a long-lived serve daemon sees arbitrarily
        # many distinct input shapes.
        self._geom_cache: LRUCache = LRUCache(_GEOM_CACHE_LIMIT)
        # Size-binding solutions per (input shapes, explicit sizes):
        # recursive transforms re-enter with a handful of distinct
        # shapes thousands of times, and the iterative affine solve in
        # _bind_sizes is pure in this key.
        self._size_cache: LRUCache = LRUCache(_GEOM_CACHE_LIMIT)
        self._dir_cache: Dict[
            Tuple[str, int], Tuple[Dict[str, int], List[str]]
        ] = {}
        self._vector_plans: Dict[
            Tuple[str, int, bool, bool], Tuple[Optional[VectorPlan], str]
        ] = {}
        # PB604 schedule-legality verdicts per (segment, rule): True
        # when tiling/interchange of the site is provably exact.
        self._sched_cache: Dict[Tuple[str, int], bool] = {}
        # The legality-gated fused rewrite (repro.rewrite), planned and
        # verified lazily on first request; None once planning decides
        # there is nothing (or nothing provably safe) to fuse.
        self._fused: object = _FUSED_UNSET

    # -- public API ------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.ir.name

    def choice_sites(self) -> List[Tuple[str, Segment]]:
        """All (config key, segment) choice sites of this transform."""
        return [
            (site_key(self.name, seg.matrix, seg.index), seg)
            for seg in self.grid.all_segments()
        ]

    def run(
        self,
        inputs: Union[Mapping[str, ArrayLike], Sequence[ArrayLike], None] = None,
        config: Optional[ChoiceConfig] = None,
        sizes: Optional[Mapping[str, int]] = None,
        sink=None,
    ) -> RunResult:
        """Execute the transform and record its task graph.

        ``sink`` (a :class:`repro.observe.trace.TraceSink`) receives the
        recorder's ``task_recorded`` events and counters when given.
        """
        config = config or ChoiceConfig()
        recorder = TaskRecorder(sink=sink)
        state = _EngineState(config, recorder)
        input_views = self._coerce_inputs(inputs)
        outputs, env = self._execute(state, input_views, sizes)
        return RunResult(
            outputs=outputs,
            graph=recorder.graph(),
            sizes={k: int(v) for k, v in env.items()},
            rule_applications=state.applications,
        )

    # -- input handling -----------------------------------------------------------

    def _coerce_inputs(
        self,
        inputs: Union[Mapping[str, ArrayLike], Sequence[ArrayLike], None],
    ) -> Dict[str, MatrixView]:
        declared = self.ir.inputs
        views: Dict[str, MatrixView] = {}
        if inputs is None:
            inputs = {}
        if isinstance(inputs, Mapping):
            items = dict(inputs)
            for mat in declared:
                if mat.name not in items:
                    raise ExecutionError(
                        f"{self.name}: missing input {mat.name!r}"
                    )
                views[mat.name] = _as_view(items.pop(mat.name))
            if items:
                raise ExecutionError(
                    f"{self.name}: unexpected inputs {sorted(items)}"
                )
        else:
            supplied = list(inputs)
            if len(supplied) != len(declared):
                raise ExecutionError(
                    f"{self.name}: expected {len(declared)} inputs, "
                    f"got {len(supplied)}"
                )
            for mat, value in zip(declared, supplied):
                views[mat.name] = _as_view(value)
        return views

    def _bind_sizes(
        self,
        input_views: Mapping[str, MatrixView],
        explicit: Optional[Mapping[str, int]],
    ) -> Dict[str, int]:
        key = (
            tuple(input_views[mat.name].shape for mat in self.ir.inputs),
            tuple(sorted(explicit.items())) if explicit else (),
        )
        cached = self._size_cache.get(key)
        if cached is not None:
            return dict(cached)
        env = self._bind_sizes_uncached(input_views, explicit)
        self._size_cache[key] = dict(env)
        return env

    def bind_sizes_from_shapes(
        self,
        shapes: Sequence[Tuple[int, ...]],
        explicit: Optional[Mapping[str, int]] = None,
    ) -> Dict[str, int]:
        """Size-variable binding from input *shapes* alone.

        Public handle for the batch request grouper (:mod:`repro.batch`):
        one bucket of same-shaped requests binds sizes once, through the
        same ``_size_cache`` the serial engine fills — the cache key is a
        function of shapes only, so serial and batched lookups share
        entries.  ``shapes`` follow the declared input order.
        """
        declared = self.ir.inputs
        if len(shapes) != len(declared):
            raise ExecutionError(
                f"{self.name}: expected {len(declared)} input shapes, "
                f"got {len(shapes)}"
            )
        stubs = {
            mat.name: _ShapeStub(tuple(int(d) for d in shape))
            for mat, shape in zip(declared, shapes)
        }
        return self._bind_sizes(stubs, explicit)

    def _bind_sizes_uncached(
        self,
        input_views: Mapping[str, MatrixView],
        explicit: Optional[Mapping[str, int]],
    ) -> Dict[str, int]:
        env: Dict[str, int] = dict(explicit or {})
        # Iteratively bind size variables from dimension equations.
        equations: List[Tuple[Affine, int, str]] = []
        for mat in self.ir.inputs:
            view = input_views[mat.name]
            if view.ndim != mat.ndim:
                raise ExecutionError(
                    f"{self.name}: input {mat.name!r} is {view.ndim}-D, "
                    f"declared {mat.ndim}-D"
                )
            for expr, extent in zip(mat.dims, view.shape):
                equations.append((expr, extent, mat.name))
        progress = True
        while progress:
            progress = False
            for expr, extent, mat_name in equations:
                unknown = [v for v in expr.variables() if v not in env]
                if len(unknown) == 1:
                    var = unknown[0]
                    coeff = expr.coefficient(var)
                    rest = expr - Affine(0, {var: coeff})
                    value = (extent - rest.evaluate(env)) / coeff
                    if value.denominator != 1 or value < 0:
                        raise ExecutionError(
                            f"{self.name}: input {mat_name!r} extent "
                            f"{extent} does not satisfy {expr}"
                        )
                    env[var] = int(value)
                    progress = True
        for expr, extent, mat_name in equations:
            if any(v not in env for v in expr.variables()):
                raise ExecutionError(
                    f"{self.name}: cannot infer sizes from {mat_name!r} "
                    f"dimension {expr}"
                )
            if expr.eval_floor(env) != extent:
                raise ExecutionError(
                    f"{self.name}: input {mat_name!r} extent {extent} "
                    f"inconsistent with {expr} = {expr.eval_floor(env)}"
                )
        for var in self.ir.size_vars:
            if var not in env:
                raise ExecutionError(
                    f"{self.name}: size variable {var!r} unbound; pass "
                    f"sizes={{...}}"
                )
        return env

    # -- the engine -------------------------------------------------------------

    def fused_variant(self) -> Optional["CompiledTransform"]:
        """The verified fused rewrite of this transform, or ``None``.

        Planned once: producer→consumer fusion is applied wherever the
        dependence analyzer proves PB601, the result is re-verified by
        the error-severity passes, and the compiled variant is cached.
        ``None`` (also cached) means the transform runs unfused no
        matter what ``__fuse__`` says.
        """
        if self._fused is _FUSED_UNSET:
            from repro.rewrite.fuse import build_fused_variant

            self._fused = build_fused_variant(self)
        return self._fused  # type: ignore[return-value]

    def has_fusion(self) -> bool:
        """Whether ``__fuse__ = 1`` would change anything."""
        return self.fused_variant() is not None

    def has_tiling(self) -> bool:
        """Whether the ``__tile_i__``/``__tile_j__``/``__interchange__``
        tunables can change anything: some (segment, rule) site is both
        PB604 schedule-legal and vectorizable.  Mirrors
        :meth:`has_fusion` — the tuner only searches knobs that exist."""
        for segment in self.grid.all_segments():
            for option in segment.options:
                rule = self.ir.rules[option.primary]
                if not self._schedule_legal(segment, rule):
                    continue
                plan, _reason = self._vector_plan(
                    segment, rule, option.fallback is not None
                )
                if plan is not None:
                    return True
        return False

    def _schedule_legal(self, segment: Segment, rule: RuleIR) -> bool:
        """Cached PB604 verdict for one (segment, rule) site: may the
        engine run the site's free variables tile-by-tile (and the chain
        per tile)?  Uses the same conservative dependence-delta check
        the ``repro check`` diagnostics report, so the knobs are a
        verified no-op everywhere the analyzer cannot prove safety."""
        key = (segment.key, rule.rule_id)
        cached = self._sched_cache.get(key)
        if cached is None:
            from repro.analysis.depend import _schedule_block_reason

            if (
                not rule.is_instance_rule
                or rule.native_body is not None
                or rule.where
                or rule.residual_where
            ):
                cached = False
            else:
                try:
                    directions, var_order = self._var_directions_cached(
                        segment, rule
                    )
                except ExecutionError:
                    cached = False
                else:
                    chain_vars = tuple(
                        v for v in var_order if directions.get(v, 0) != 0
                    )
                    free_vars = tuple(
                        v for v in var_order if directions.get(v, 0) == 0
                    )
                    if not chain_vars or not free_vars:
                        cached = False
                    else:
                        cached = not _schedule_block_reason(
                            rule, chain_vars, free_vars, directions
                        )
            self._sched_cache[key] = cached
        return cached

    def _execute(
        self,
        state: _EngineState,
        input_views: Dict[str, MatrixView],
        explicit_sizes: Optional[Mapping[str, int]] = None,
    ) -> Tuple[Dict[str, Matrix], Dict[str, int]]:
        if state.config.fuse_enabled(self.name):
            variant = self.fused_variant()
            if variant is not None:
                return variant._execute(state, input_views, explicit_sizes)
        env = self._bind_sizes(input_views, explicit_sizes)

        for guard in self.grid.order_guards:
            if guard.evaluate(env) < 0:
                raise ExecutionError(
                    f"{self.name}: sizes {dict(env)} violate the assumed "
                    f"region ordering {guard} >= 0 (input too small for "
                    f"this program's choice grid)"
                )

        frame = (self.name, tuple(sorted(env.items())))
        if frame in state.call_stack:
            raise ExecutionError(
                f"{self.name}: infinite recursion — the configuration "
                f"selects a recursive rule at sizes {dict(env)}"
            )
        state.call_stack.append(frame)
        try:
            return self._execute_frame(state, input_views, env), env
        finally:
            state.call_stack.pop()

    def _execute_frame(
        self,
        state: _EngineState,
        input_views: Dict[str, MatrixView],
        env: Dict[str, int],
    ) -> Dict[str, Matrix]:
        # Allocate outputs and intermediates.
        views: Dict[str, MatrixView] = dict(input_views)
        outputs: Dict[str, Matrix] = {}
        for mat in self.ir.outputs + self.ir.throughs:
            shape = tuple(dim.eval_floor(env) for dim in mat.dims)
            storage = Matrix.zeros(shape, name=f"{self.name}.{mat.name}")
            views[mat.name] = storage.whole()
            if mat.role == ROLE_OUTPUT:
                outputs[mat.name] = storage

        # The problem size steering choice selection and the sequential
        # cutoff: total cells across every matrix of this call.  Using the
        # whole call footprint (not just outputs) makes the metric shrink
        # under *any* recursive decomposition, including splits along
        # reduction dimensions that keep the output size constant.
        problem_size = sum(view.size for view in views.values())
        cutoff = state.config.seq_cutoff(self.name)
        outer_inline = state.inline
        outer_problem_size = state.problem_size
        state.problem_size = problem_size
        if problem_size < cutoff:
            state.inline = True

        try:
            with state.recorder.task(label=self.name, inline=state.inline):
                node_tasks: Dict[str, Optional[int]] = {}
                for node in self.depgraph.schedule_order:
                    if node not in self._segments:
                        node_tasks[node] = None  # an input matrix
                        continue
                    segment = self._segments[node]
                    deps = sorted(
                        {
                            node_tasks[edge.src]
                            for edge in self.depgraph.edges_into(node)
                            if edge.src != node
                            and node_tasks.get(edge.src) is not None
                        }
                    )
                    node_tasks[node] = self._execute_segment(
                        state, segment, env, views, deps, problem_size
                    )
        finally:
            state.inline = outer_inline
            state.problem_size = outer_problem_size
        return outputs

    def _execute_segment(
        self,
        state: _EngineState,
        segment: Segment,
        env: Dict[str, int],
        views: Dict[str, MatrixView],
        deps: List[int],
        problem_size: int,
    ) -> Optional[int]:
        bounds = segment.box.concrete(env)
        volume = 1
        for lo, hi in bounds:
            volume *= max(0, hi - lo)
        if volume == 0:
            return None

        option = self._select_option(state.config, segment, problem_size)
        rule = self.ir.rules[option.primary]
        fallback = (
            self.ir.rules[option.fallback] if option.fallback is not None else None
        )
        self._check_size_guards(rule, env)

        with state.recorder.task(
            deps=deps, label=f"{self.name}.{segment.key}", inline=state.inline
        ) as segment_task:
            if rule.is_instance_rule:
                self._apply_instance_rule(
                    state, segment, rule, fallback, env, views, bounds
                )
            else:
                self._apply_whole_rule(state, rule, env, views)
        return segment_task

    def _select_option(
        self, config: ChoiceConfig, segment: Segment, volume: int
    ) -> ChoiceOption:
        key = site_key(self.name, segment.matrix, segment.index)
        selector = config.choice_for(key)
        if selector is None:
            selector = self._default_selector(segment)
        index = selector.pick(volume)
        if not (0 <= index < len(segment.options)):
            raise ExecutionError(
                f"{self.name}: configuration picks option {index} at "
                f"{key}, but the site has {len(segment.options)} options"
            )
        return segment.options[index]

    def _default_selector(self, segment: Segment) -> Selector:
        """Untuned default: the first non-recursive option (guaranteed to
        terminate); falls back to option 0."""
        for index, option in enumerate(segment.options):
            if not self.ir.rules[option.primary].is_recursive:
                return Selector.static(index)
        return Selector.static(0)

    def _check_size_guards(self, rule: RuleIR, env: Dict[str, int]) -> None:
        for guard in rule.size_guards:
            if guard.evaluate(env) < 0:
                raise ExecutionError(
                    f"{self.name} {rule.label}: size constraint "
                    f"{guard} >= 0 fails for {dict(env)}"
                )

    # -- instance rules --------------------------------------------------------

    def _apply_instance_rule(
        self,
        state: _EngineState,
        segment: Segment,
        rule: RuleIR,
        fallback: Optional[RuleIR],
        env: Dict[str, int],
        views: Dict[str, MatrixView],
        segment_bounds: Tuple[Tuple[int, int], ...],
    ) -> None:
        geometry = self._segment_geometry(
            state, segment, rule, env, segment_bounds
        )
        tunables = self._tunable_values(state)
        leaf, plan = self._resolve_leaf(state, segment, rule, fallback, geometry)
        if leaf == LEAF_VECTOR:
            tiles = self._tile_spec(state, segment, rule, geometry)
            if tiles is not None:
                tile_sizes, interchange = tiles
                self._run_tiled_vector_steps(
                    state,
                    rule,
                    env,
                    views,
                    geometry,
                    plan,
                    tunables,
                    tile_sizes,
                    interchange,
                )
            else:
                self._run_vector_steps(
                    state, rule, env, views, geometry, plan, tunables
                )
            return
        if leaf == LEAF_CLOSURE:
            apply_block = self._closure_block_runner(
                state, rule, fallback, env, views, geometry, tunables
            )
        else:
            apply_block = self._interp_block_runner(
                state, rule, fallback, env, views, geometry, tunables
            )
        self._run_instance_steps(state, rule, geometry, apply_block)

    def _segment_geometry(
        self,
        state: _EngineState,
        segment: Segment,
        rule: RuleIR,
        env: Dict[str, int],
        segment_bounds: Tuple[Tuple[int, int], ...],
    ) -> Geometry:
        return self.geometry_for(
            segment, rule, env, segment_bounds, sink=state.recorder.sink
        )

    def geometry_for(
        self,
        segment: Segment,
        rule: RuleIR,
        env: Dict[str, int],
        segment_bounds: Tuple[Tuple[int, int], ...],
        sink=None,
    ) -> Geometry:
        """Iteration geometry, cached per (segment, rule, size-env) —
        ``segment_bounds`` is itself a function of ``env``, so it does
        not enter the key.  Public handle: the batch execution engine
        (:mod:`repro.batch`) plans against the same cache, so one bucket
        of requests re-solves nothing the serial engine already solved."""
        key = geometry_key(segment.key, rule.rule_id, env)
        geometry = self._geom_cache.get(key)
        if geometry is not None:
            if sink is not None:
                sink.count("exec.geom_cache_hits")
            return geometry
        var_ranges = self._instance_ranges(segment, rule, env, segment_bounds)
        directions, var_order = self._var_directions_cached(segment, rule)
        geometry = build_geometry(var_ranges, directions, var_order)
        before = self._geom_cache.evictions
        self._geom_cache[key] = geometry
        if sink is not None:
            sink.count("exec.geom_cache_misses")
            evicted = self._geom_cache.evictions - before
            if evicted:
                sink.count("exec.geom_cache_evictions", evicted)
        return geometry

    def _kernel(self, rule: RuleIR) -> Optional[RuleKernel]:
        """The rule's compiled closure kernel (lowered on first use)."""
        if rule.rule_id in self._kernels:
            return self._kernels[rule.rule_id]
        kernel = None
        if rule.is_instance_rule:
            try:
                kernel = lower_rule(rule, self.ir)
            except Exception:
                kernel = None
        self._kernels[rule.rule_id] = kernel
        return kernel

    def _var_directions_cached(
        self, segment: Segment, rule: RuleIR
    ) -> Tuple[Dict[str, int], List[str]]:
        key = (segment.key, rule.rule_id)
        cached = self._dir_cache.get(key)
        if cached is None:
            cached = self._dir_cache[key] = self._var_directions(
                segment, rule
            )
        return cached

    def _vector_plan(
        self,
        segment: Segment,
        rule: RuleIR,
        has_fallback: bool,
        batch: bool = False,
    ) -> Tuple[Optional[VectorPlan], str]:
        """The (cached) vector leaf plan or rejection reason for this
        (segment, rule) site; also the backing store for the PB501/PB502
        diagnostics (see :func:`repro.analysis.races.vector_leaf_status`).

        ``batch=True`` compiles/caches the batch-axis variant of the
        same plan (leading stacked-request axis on every matrix), used
        by :mod:`repro.batch` and the PB503 diagnostic."""
        key = (segment.key, rule.rule_id, bool(has_fallback), bool(batch))
        cached = self._vector_plans.get(key)
        if cached is None:
            from repro.engine_fast.vectorize import plan_vector_leaf

            try:
                directions, var_order = self._var_directions_cached(
                    segment, rule
                )
            except ExecutionError as error:
                cached = (None, str(error))
            else:
                cached = plan_vector_leaf(
                    self.ir,
                    rule,
                    directions,
                    var_order,
                    has_fallback,
                    batch=batch,
                )
            self._vector_plans[key] = cached
        return cached

    def _tunable_values(self, state: _EngineState) -> Dict[str, int]:
        """User tunables at the current problem size, computed once per
        segment application (not once per cell)."""
        return self.tunables_at(state.config, state.problem_size)

    def tunables_at(
        self, config: ChoiceConfig, problem_size: int
    ) -> Dict[str, int]:
        """Resolved user tunables at a problem size (public handle —
        the batch planner resolves them once per bucket)."""
        return {
            t.name: config.tunable_at(
                f"{self.name}.{t.name}",
                problem_size,
                t.default if t.default is not None else t.lo,
            )
            for t in self.ir.tunables
        }

    def _resolve_leaf(
        self,
        state: _EngineState,
        segment: Segment,
        rule: RuleIR,
        fallback: Optional[RuleIR],
        geometry: Geometry,
    ) -> Tuple[int, Optional[VectorPlan]]:
        """Pick the leaf execution path for this segment application.

        The configured path degrades gracefully: vector falls back to
        closure when the site is not vectorizable (or below the cutoff),
        closure falls back to the interpreter when the rule has no
        kernel.  The interpreter is always legal.
        """
        leaf = state.config.leaf_path(self.name, state.problem_size)
        if leaf == LEAF_VECTOR:
            plan, _reason = self._vector_plan(
                segment, rule, fallback is not None
            )
            if plan is not None:
                cutoff = state.config.vectorize_cutoff(
                    self.name, state.problem_size
                )
                if geometry.step_volume >= max(1, cutoff):
                    return LEAF_VECTOR, plan
            sink = state.recorder.sink
            if sink is not None:
                sink.count("exec.vector_fallbacks")
            leaf = LEAF_CLOSURE
        if leaf == LEAF_CLOSURE and self._kernel(rule) is None:
            leaf = LEAF_INTERP
        return leaf, None

    def _run_instance_steps(
        self,
        state: _EngineState,
        rule: RuleIR,
        geometry: Geometry,
        apply_block: Callable[[Tuple[int, ...], Sequence[Tuple[int, ...]]], None],
    ) -> None:
        """The shared per-instance driver: sequential chain steps, each a
        set of blocked data-parallel tasks.  Task labels, block deps, and
        barrier structure are identical for the interpreter and closure
        paths (and identical to the pre-kernel engine)."""
        block = max(1, state.config.block_size(self.name))
        instances = geometry.free_products

        def run_step(
            chain_values: Tuple[int, ...], deps: List[int]
        ) -> List[int]:
            block_tasks: List[int] = []
            for start in range(0, len(instances), block):
                with state.recorder.task(
                    deps=deps,
                    label=f"{rule.label}[{start}]",
                    inline=state.inline,
                ) as block_task:
                    apply_block(
                        chain_values, instances[start : start + block]
                    )
                if block_task is not None:
                    block_tasks.append(block_task)
            return block_tasks

        if not geometry.chain_vars:
            run_step((), [])
            return
        previous: List[int] = []
        for chain_values in itertools.product(*geometry.chain_value_lists):
            step_tasks = run_step(chain_values, sorted(set(previous)))
            if step_tasks:
                previous = step_tasks

    def _interp_block_runner(
        self,
        state: _EngineState,
        rule: RuleIR,
        fallback: Optional[RuleIR],
        env: Dict[str, int],
        views: Dict[str, MatrixView],
        geometry: Geometry,
        tunables: Dict[str, int],
    ) -> Callable[[Tuple[int, ...], Sequence[Tuple[int, ...]]], None]:
        """Reference path: the rule-body interpreter, one call per cell.

        One mutable instance env is reused across all instances (the old
        engine copied ``dict(env)`` per cell); ``_apply_once`` never
        leaks it into anything that outlives the call.
        """
        chain_vars = geometry.chain_vars
        free_vars = geometry.free_vars
        instance_env = dict(env)

        def apply_block(
            chain_values: Tuple[int, ...],
            block_instances: Sequence[Tuple[int, ...]],
        ) -> None:
            for var, value in zip(chain_vars, chain_values):
                instance_env[var] = value
            for values in block_instances:
                for var, value in zip(free_vars, values):
                    instance_env[var] = value
                chosen = rule
                if rule.residual_where and not self._residual_ok(
                    rule, instance_env
                ):
                    if fallback is None:
                        assignment = dict(zip(chain_vars, chain_values))
                        assignment.update(zip(free_vars, values))
                        raise ExecutionError(
                            f"{self.name} {rule.label}: where-clause fails "
                            f"at {assignment} and no fallback exists"
                        )
                    chosen = fallback
                self._apply_once(
                    state, chosen, instance_env, views, tunables
                )

        return apply_block

    def _closure_block_runner(
        self,
        state: _EngineState,
        rule: RuleIR,
        fallback: Optional[RuleIR],
        env: Dict[str, int],
        views: Dict[str, MatrixView],
        geometry: Geometry,
        tunables: Dict[str, int],
    ) -> Callable[[Tuple[int, ...], Sequence[Tuple[int, ...]]], None]:
        """Lowered path: one direct call into the rule's compiled closure
        per cell; work is charged in one batch per block (identical task
        totals, since per-instance charges are summed within the block's
        task either way)."""
        kernel = self._kernel(rule)
        assert kernel is not None
        arrays = {
            name: views[name].to_numpy() for name in kernel.matrices
        }
        call = (
            (lambda name, args: self._call_sibling(state, name, args))
            if kernel.uses_call
            else None
        )
        instance = kernel.maker(env, tunables, arrays, call)
        recorder = state.recorder
        sink = recorder.sink
        base_work = rule.base_work
        position = {var: i for i, var in enumerate(kernel.params)}
        chain_pos = [position[v] for v in geometry.chain_vars]
        free_pos = [position[v] for v in geometry.free_vars]
        args: List[int] = [0] * len(kernel.params)

        residual = None
        if rule.residual_where and kernel.residual_maker is not None:
            residual = kernel.residual_maker(env)
        # Fallback instances (and un-lowerable residuals) go through the
        # interpreter's `_apply_once`, sharing one mutable env.
        residual_env = dict(env) if rule.residual_where else None

        def apply_block(
            chain_values: Tuple[int, ...],
            block_instances: Sequence[Tuple[int, ...]],
        ) -> None:
            for pos, value in zip(chain_pos, chain_values):
                args[pos] = value
            total = 0.0
            count = 0
            if rule.residual_where:
                for var, value in zip(geometry.chain_vars, chain_values):
                    residual_env[var] = value
                for values in block_instances:
                    for pos, value in zip(free_pos, values):
                        args[pos] = value
                    for var, value in zip(geometry.free_vars, values):
                        residual_env[var] = value
                    if residual is not None:
                        ok = bool(residual(*args))
                    else:
                        ok = self._residual_ok(rule, residual_env)
                    if ok:
                        total += base_work + instance(*args)
                        count += 1
                        continue
                    if fallback is None:
                        assignment = dict(zip(geometry.chain_vars, chain_values))
                        assignment.update(zip(geometry.free_vars, values))
                        raise ExecutionError(
                            f"{self.name} {rule.label}: where-clause fails "
                            f"at {assignment} and no fallback exists"
                        )
                    self._apply_once(
                        state, fallback, residual_env, views, tunables
                    )
            else:
                for values in block_instances:
                    for pos, value in zip(free_pos, values):
                        args[pos] = value
                    total += base_work + instance(*args)
                    count += 1
            if count:
                state.applications += count
                recorder.charge(total)
                if sink is not None:
                    sink.count("exec.closure_calls", count)

        return apply_block

    def _run_vector_steps(
        self,
        state: _EngineState,
        rule: RuleIR,
        env: Dict[str, int],
        views: Dict[str, MatrixView],
        geometry: Geometry,
        plan: VectorPlan,
        tunables: Dict[str, int],
    ) -> None:
        """Vector path: one task and one NumPy slice expression per chain
        step.  Bit-identical results; a *different* (cheaper) task graph
        and work model — that difference is exactly what makes the leaf
        path worth tuning."""
        arrays = {name: views[name].to_numpy() for name in plan.matrices}
        step = plan.maker(env, tunables, arrays)
        free_args: List[int] = []
        for var in plan.free_vars:
            lo, hi = geometry.var_ranges[var]
            free_args.extend((lo, hi - lo))
        volume = geometry.step_volume
        work = (
            volume * (rule.base_work + plan.static_ops) * _VECTOR_WORK_FACTOR
            + _VECTOR_STEP_WORK
        )
        recorder = state.recorder
        sink = recorder.sink
        steps = (
            itertools.product(*geometry.chain_value_lists)
            if geometry.chain_vars
            else [()]
        )
        previous: List[int] = []
        for chain_values in steps:
            with recorder.task(
                deps=sorted(set(previous)),
                label=f"{rule.label}[vec]",
                inline=state.inline,
            ) as step_task:
                step(*chain_values, *free_args)
                recorder.charge(work)
            state.applications += volume
            if sink is not None:
                sink.count("exec.vectorized_blocks")
                sink.count("exec.vectorized_cells", volume)
            if step_task is not None:
                previous = [step_task]

    def _tile_spec(
        self,
        state: _EngineState,
        segment: Segment,
        rule: RuleIR,
        geometry: Geometry,
    ) -> Optional[Tuple[List[int], bool]]:
        """The effective (tile sizes per free var, interchange?) for this
        segment application, or ``None`` to run the untiled sweep.

        Sizes come from the ``__tile_i__``/``__tile_j__`` tunables, with
        the rule's declared ``tile(...)`` annotation as the default; a
        size of 0 (or one covering the whole extent) leaves that
        variable unblocked.  Engages only on PB604-legal sites — on any
        other site the knobs are a verified no-op."""
        if not geometry.chain_vars or not geometry.free_vars:
            return None
        config = state.config
        declared = rule.schedule
        declared_tiles = dict(declared.tile) if declared else {}
        tile_sizes: List[int] = []
        tiled = False
        for dim, var in enumerate(geometry.free_vars):
            size = declared_tiles.get(var, 0)
            if dim < 2:
                size = config.tile_size(self.name, dim, size)
            lo, hi = geometry.var_ranges[var]
            if size <= 0 or size >= hi - lo:
                tile_sizes.append(0)
            else:
                tile_sizes.append(size)
                tiled = True
        if not tiled:
            return None
        if not self._schedule_legal(segment, rule):
            return None
        interchange_default = 1 if declared and declared.interchange else 0
        interchange = bool(
            config.interchange_enabled(self.name, interchange_default)
        )
        return tile_sizes, interchange

    def _run_tiled_vector_steps(
        self,
        state: _EngineState,
        rule: RuleIR,
        env: Dict[str, int],
        views: Dict[str, MatrixView],
        geometry: Geometry,
        plan: VectorPlan,
        tunables: Dict[str, int],
        tile_sizes: List[int],
        interchange: bool,
    ) -> None:
        """Cache-blocked vector path: the free space is cut into tiles
        and each (chain step, tile) pair runs one bounded slice sweep.

        Plain tiling keeps the chain outermost (every tile per step);
        ``interchange`` runs tiles outermost — the whole chain sweeps
        one tile while it is cache-hot before moving to the next, which
        is the locality win on chain-heavy stacks like matmul.  Tiles
        execute in ascending lexicographic order, the order the PB604
        proof assumes; tasks form a single sequential chain, which is
        always a legal schedule of the recorded graph."""
        arrays = {name: views[name].to_numpy() for name in plan.matrices}
        step = plan.maker(env, tunables, arrays)
        size_by_var = dict(zip(geometry.free_vars, tile_sizes))
        chunk_lists: List[List[Tuple[int, int]]] = []
        for var in plan.free_vars:
            lo, hi = geometry.var_ranges[var]
            size = size_by_var.get(var, 0)
            if size <= 0:
                chunk_lists.append([(lo, hi - lo)])
            else:
                chunk_lists.append(
                    [(s, min(size, hi - s)) for s in range(lo, hi, size)]
                )
        tiles = list(itertools.product(*chunk_lists))
        chain_steps = (
            list(itertools.product(*geometry.chain_value_lists))
            if geometry.chain_vars
            else [()]
        )
        recorder = state.recorder
        sink = recorder.sink
        label = f"{rule.label}[vec:tiled]"
        per_cell = (rule.base_work + plan.static_ops) * _VECTOR_WORK_FACTOR
        previous: List[int] = []
        pairs = (
            ((chain, tile) for tile in tiles for chain in chain_steps)
            if interchange
            else ((chain, tile) for chain in chain_steps for tile in tiles)
        )
        for chain_values, tile in pairs:
            free_args = [bound for chunk in tile for bound in chunk]
            volume = 1
            for _lo, count in tile:
                volume *= count
            with recorder.task(
                deps=sorted(set(previous)),
                label=label,
                inline=state.inline,
            ) as step_task:
                step(*chain_values, *free_args)
                # The honest cost model: per-tile slice setup is a real
                # fixed cost, so over-tiling loses simulated work even
                # though each sweep is smaller.
                recorder.charge(volume * per_cell + _VECTOR_STEP_WORK)
            state.applications += volume
            if sink is not None:
                sink.count("exec.vectorized_blocks")
                sink.count("exec.vectorized_cells", volume)
                sink.count("exec.tiled_blocks")
            if step_task is not None:
                previous = [step_task]

    def _instance_ranges(
        self,
        segment: Segment,
        rule: RuleIR,
        env: Dict[str, int],
        segment_bounds: Tuple[Tuple[int, int], ...],
    ) -> Dict[str, Tuple[int, int]]:
        """Concrete [lo, hi) per rule variable: the preimage of the
        segment under the to-binding, intersected with the applicable
        variable bounds."""
        ranges: Dict[str, Tuple[int, int]] = {}
        for var in rule.rule_vars:
            interval = rule.var_bounds[var]
            ranges[var] = interval.concrete(env)

        for region in rule.to_regions:
            if region.matrix != segment.matrix:
                continue
            for dim, interval in enumerate(region.box.intervals):
                expr = interval.lo  # cell bindings: lo is the coordinate
                seg_lo, seg_hi = segment_bounds[dim]
                rule_vars_here = [
                    v for v in expr.variables() if v in rule.var_bounds
                ]
                if not rule_vars_here:
                    continue
                if len(rule_vars_here) > 1:
                    raise ExecutionError(
                        f"{self.name} {rule.label}: output coordinate "
                        f"{expr} couples rule variables"
                    )
                var = rule_vars_here[0]
                solved = solve_bounds_for(var, expr, seg_lo, seg_hi)
                if solved is None:
                    continue
                lo, hi = solved.concrete(env)
                old_lo, old_hi = ranges[var]
                ranges[var] = (max(lo, old_lo), min(hi, old_hi))
        return ranges

    def _var_directions(
        self, segment: Segment, rule: RuleIR
    ) -> Tuple[Dict[str, int], List[str]]:
        """Iteration direction per rule variable, plus the loop-nesting
        order (outermost first), from the dependency analysis."""
        order = self.depgraph.rule_directions.get(
            (segment.key, rule.rule_id)
        )
        if order is None:
            return {}, list(rule.rule_vars)
        directions: Dict[str, int] = {}
        controlling_dim: Dict[str, int] = {}
        for region in rule.to_regions:
            if region.matrix != segment.matrix:
                continue
            for dim, interval in enumerate(region.box.intervals):
                for var in interval.lo.variables():
                    if var not in rule.var_bounds:
                        continue
                    controlling_dim.setdefault(var, dim)
                    if order.signs[dim] == 0:
                        continue
                    coeff = interval.lo.coefficient(var)
                    sign = 1 if coeff > 0 else -1
                    required = order.signs[dim] * sign
                    if directions.get(var, required) != required:
                        raise ExecutionError(
                            f"{self.name} {rule.label}: variable {var!r} "
                            f"has conflicting iteration directions"
                        )
                    directions[var] = required
        # Nest loops by the dependency analysis' dimension priority.
        rank = {dim: pos for pos, dim in enumerate(order.priority)}
        var_order = sorted(
            rule.rule_vars,
            key=lambda v: rank.get(controlling_dim.get(v, 0), 0),
        )
        return directions, var_order

    def _residual_ok(self, rule: RuleIR, env: Dict[str, int]) -> bool:
        # Scope only reads its bindings, so no defensive copy is needed.
        scope = Scope(env)
        return all(
            float(evaluate(cond, scope)) != 0 for cond in rule.residual_where
        )

    # -- rule application ------------------------------------------------------------

    def _apply_whole_rule(
        self,
        state: _EngineState,
        rule: RuleIR,
        env: Dict[str, int],
        views: Dict[str, MatrixView],
    ) -> None:
        self._apply_once(state, rule, dict(env), views)

    def _apply_once(
        self,
        state: _EngineState,
        rule: RuleIR,
        env: Dict[str, int],
        views: Dict[str, MatrixView],
        tunables: Optional[Dict[str, int]] = None,
    ) -> None:
        state.applications += 1
        bindings: Dict[str, object] = {}
        for region in rule.all_regions:
            bindings[region.bind_name] = _region_view(
                region, env, views[region.matrix]
            )
        if tunables is None:
            tunables = self._tunable_values(state)

        if rule.native_body is not None:
            context = NativeContext(
                engine=self,
                state=state,
                bindings=bindings,
                env=dict(env),
                tunables=tunables,
            )
            rule.native_body(context)
            state.recorder.charge(rule.base_work)
            return

        scope_bindings: Dict[str, object] = {}
        scope_bindings.update(env)
        scope_bindings.update(tunables)
        scope_bindings.update(bindings)
        scope = Scope(
            scope_bindings,
            call_transform=lambda name, args: self._call_sibling(
                state, name, args
            ),
        )
        execute(rule.body, scope)
        state.recorder.charge(rule.base_work + scope.ops)

    def _call_sibling(
        self, state: _EngineState, name: str, args: Sequence[MatrixView]
    ) -> MatrixView:
        callee = self.program.transform(name)
        outputs, _ = callee._execute(
            state, callee._coerce_inputs(list(args))
        )
        if len(outputs) != 1:
            raise ExecutionError(
                f"call to {name!r} in an expression requires exactly one "
                f"output, it has {len(outputs)}"
            )
        return next(iter(outputs.values())).whole()


# ---------------------------------------------------------------------------
# Native rule bodies
# ---------------------------------------------------------------------------


class NativeContext:
    """The interface handed to native (Python) rule bodies.

    Provides the bound region views, size variables, tunables, work
    accounting, parallel task structure, and calls to other transforms —
    everything the embedded C++ of the original could reach through the
    runtime library.
    """

    def __init__(
        self,
        engine: CompiledTransform,
        state: _EngineState,
        bindings: Dict[str, object],
        env: Dict[str, int],
        tunables: Dict[str, int],
    ) -> None:
        self._engine = engine
        self._state = state
        self._bindings = bindings
        self._env = env
        self._tunables = tunables

    def __getitem__(self, name: str) -> MatrixView:
        if name not in self._bindings:
            raise ExecutionError(f"no binding named {name!r}")
        return self._bindings[name]  # type: ignore[return-value]

    def var(self, name: str) -> int:
        if name not in self._env:
            raise ExecutionError(f"no variable named {name!r}")
        return int(self._env[name])

    def tunable(self, name: str, default: Optional[int] = None) -> int:
        if name in self._tunables:
            return self._tunables[name]
        if default is not None:
            return default
        raise ExecutionError(f"no tunable named {name!r}")

    @property
    def config(self) -> ChoiceConfig:
        return self._state.config

    def charge(self, work: float) -> None:
        """Charge abstract work units to the current task."""
        self._state.recorder.charge(work)

    def call(self, name: str, *inputs: ArrayLike) -> MatrixView:
        """Run another transform (or this one recursively) and return its
        single output as a view."""
        views = [_as_view(value) for value in inputs]
        return self._engine._call_sibling(self._state, name, views)

    def call_multi(self, name: str, *inputs: ArrayLike) -> Dict[str, Matrix]:
        """Run a transform with multiple outputs."""
        callee = self._engine.program.transform(name)
        views = [_as_view(value) for value in inputs]
        outputs, _ = callee._execute(
            self._state, callee._coerce_inputs(views)
        )
        return outputs

    def parallel(self, *thunks: Callable[[], object]) -> List[object]:
        """Run thunks as sibling tasks (parallel in the task graph; the
        scheduler simulator may overlap them)."""
        results: List[object] = []
        for index, thunk in enumerate(thunks):
            with self._state.recorder.task(
                label=f"par{index}", inline=self._state.inline
            ):
                results.append(thunk())
        return results

    def spawn(self, thunk: Callable[[], object]) -> object:
        """Run one thunk in a child task."""
        return self.parallel(thunk)[0]


# ---------------------------------------------------------------------------
# static specialization
# ---------------------------------------------------------------------------


def dead_choice_report(
    program: CompiledProgram, config: ChoiceConfig
) -> Dict[str, List[str]]:
    """Which options static specialization eliminates per choice site.

    The original fed the configuration back into the compiler "to
    eliminate unused choices and allow additional optimizations"; this
    reports, per site, the rule choices the given configuration can
    never select (by label), i.e. the dead code a static build strips.
    """
    report: Dict[str, List[str]] = {}
    for name, compiled in program.transforms.items():
        for key, segment in compiled.choice_sites():
            selector = config.choice_for(key)
            if selector is None:
                selector = compiled._default_selector(segment)
            used = set(selector.options_used())
            dead = [
                option.describe(compiled.ir)
                for index, option in enumerate(segment.options)
                if index not in used
            ]
            if dead:
                report[key] = dead
    return report


def specialize(
    program: CompiledProgram, config: ChoiceConfig
) -> CompiledProgram:
    """Static code generation mode: bake ``config`` into the program.

    The returned program ignores configs passed at run time (matching the
    original's statically-compiled binaries, where the C++ compiler could
    optimize away dead choices).
    """

    class _StaticTransform(CompiledTransform):
        def run(self, inputs=None, config_override=None, sizes=None, **kw):  # type: ignore[override]
            return CompiledTransform.run(self, inputs, config, sizes)

    static = CompiledProgram.__new__(CompiledProgram)
    static.ir = program.ir
    static.transforms = {}
    for name, compiled in program.transforms.items():
        clone = _StaticTransform.__new__(_StaticTransform)
        clone.ir = compiled.ir
        clone.program = static
        clone.grid = compiled.grid
        clone.depgraph = compiled.depgraph
        clone._segments = compiled._segments
        clone._kernels = compiled._kernels
        clone._geom_cache = compiled._geom_cache
        clone._size_cache = compiled._size_cache
        clone._dir_cache = compiled._dir_cache
        clone._vector_plans = compiled._vector_plans
        clone._sched_cache = compiled._sched_cache
        clone._fused = compiled._fused
        static.transforms[name] = clone
    return static


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


class _ShapeStub:
    """Duck-typed stand-in for a MatrixView in size binding: shape/ndim
    are all ``_bind_sizes`` reads."""

    __slots__ = ("shape",)

    def __init__(self, shape: Tuple[int, ...]) -> None:
        self.shape = shape

    @property
    def ndim(self) -> int:
        return len(self.shape)


def _as_view(value: ArrayLike) -> MatrixView:
    if isinstance(value, MatrixView):
        return value
    if isinstance(value, Matrix):
        return value.whole()
    return Matrix.from_array(value).whole()


def _region_view(
    region: RegionIR, env: Dict[str, int], base: MatrixView
) -> MatrixView:
    bounds = region.box.concrete(env)
    if region.view_kind == "cell":
        return base.cell(*(lo for lo, _ in bounds))
    if region.view_kind == "row":
        return base.row(bounds[1][0])
    if region.view_kind == "column":
        return base.column(bounds[0][0])
    if region.view_kind == "all":
        return base
    los = [lo for lo, _ in bounds]
    his = [hi for _, hi in bounds]
    return base.region(*los, *his)
