"""Choice dependency graph analysis (paper §3.1, phase 4; §3.6 deadlocks).

Builds the graph whose nodes are input matrices and choice-grid segments
and whose edges are data dependencies annotated with (rule, direction,
offset) — the structure shown for RollingSum in the paper's Figure 4.

The graph serves three masters:

* the **scheduler** uses the topological order of nodes and, within a
  segment, the per-rule iteration directions derived from self-edges
  (an exact ``-1`` offset forces ascending iteration and permits
  pipelining; no self-edge means the segment is data parallel);
* the **autotuner** reads the per-segment choice sites off the grid;
* **deadlock/race freedom** (§3.6): a dependency cycle spanning several
  nodes, or a self-dependency with inconsistent directions, is reported
  as a compile error instead of hanging at run time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.language.errors import CompileError
from repro.symbolic import Affine, Box, Interval
from repro.symbolic.expr import SymbolicCompareError

from repro.compiler.choicegrid import ChoiceGrid, Segment
from repro.compiler.ir import ROLE_INPUT, RegionIR, RuleIR, TransformIR

#: Node identifiers: an input matrix name, or "Matrix.segmentIndex".
NodeKey = str


@dataclass(frozen=True)
class DepEdge:
    """A data dependency: ``dst`` reads data produced at ``src``.

    ``directions`` has one entry per dimension of the consumer's matrix:
    ``'<'`` (reads strictly earlier cells along that axis), ``'>'``,
    ``'='`` (same index, only meaningful with a non-zero other axis),
    or ``'*'`` (unknown/whole-region).  ``offsets`` carries the exact
    constant offset per dimension for cell-to-cell dependencies.
    """

    src: NodeKey
    dst: NodeKey
    rule_id: int
    directions: Tuple[str, ...] = ()
    offsets: Optional[Tuple[Fraction, ...]] = None


@dataclass(frozen=True)
class IterationOrder:
    """How a rule must sweep a segment it self-depends on.

    ``signs`` gives +1 (ascending), -1 (descending), or 0 (parallel) per
    matrix dimension; ``priority`` is the dimension nesting order
    (outermost first) that makes the lexicographic argument work.
    """

    signs: Tuple[int, ...]
    priority: Tuple[int, ...]

    @property
    def is_parallel(self) -> bool:
        return all(sign == 0 for sign in self.signs)


@dataclass
class ChoiceDepGraph:
    """The analyzed dependency structure of one transform."""

    nodes: List[NodeKey]
    edges: List[DepEdge]
    schedule_order: List[NodeKey]
    #: per (segment key, rule id): the required sweep of the segment.
    rule_directions: Dict[Tuple[str, int], IterationOrder]

    def edges_into(self, node: NodeKey) -> List[DepEdge]:
        return [e for e in self.edges if e.dst == node]


def build_dep_graph(transform: TransformIR, grid: ChoiceGrid) -> ChoiceDepGraph:
    assumptions = transform.assumptions
    nodes: List[NodeKey] = [
        m.name for m in transform.matrices.values() if m.role == ROLE_INPUT
    ]
    segment_lookup: Dict[str, List[Segment]] = grid.segments
    for segments in segment_lookup.values():
        nodes.extend(seg.key for seg in segments)

    edges: List[DepEdge] = []
    rule_directions: Dict[Tuple[str, int], IterationOrder] = {}

    for segments in segment_lookup.values():
        for segment in segments:
            rule_ids = sorted(
                {opt.primary for opt in segment.options}
                | {
                    opt.fallback
                    for opt in segment.options
                    if opt.fallback is not None
                }
            )
            for rule_id in rule_ids:
                rule = transform.rules[rule_id]
                self_directions = _add_rule_edges(
                    transform, segment, rule, segment_lookup, edges, assumptions
                )
                rule_directions[(segment.key, rule_id)] = self_directions

    schedule_order = _topological_order(transform, nodes, edges)
    return ChoiceDepGraph(
        nodes=nodes,
        edges=edges,
        schedule_order=schedule_order,
        rule_directions=rule_directions,
    )


# ---------------------------------------------------------------------------
# edge construction
# ---------------------------------------------------------------------------


def _add_rule_edges(
    transform: TransformIR,
    segment: Segment,
    rule: RuleIR,
    segment_lookup: Dict[str, List[Segment]],
    edges: List[DepEdge],
    assumptions,
) -> Tuple[int, ...]:
    """Add edges for one rule computing one segment; returns the iteration
    direction per dimension required by its self-dependencies."""
    center = _rule_center(rule, segment.matrix)
    ndim = transform.matrices[segment.matrix].ndim
    self_edges: List[Tuple[str, ...]] = []
    var_bounds = _segment_var_bounds(rule, segment, assumptions)

    for region in rule.from_regions:
        read_box = _swept_read_box(region, var_bounds)
        directions, offsets = _edge_annotation(
            region, center, ndim, assumptions
        )
        producers = _producer_nodes(
            transform, region.matrix, read_box, segment_lookup, assumptions
        )
        for producer in producers:
            edges.append(
                DepEdge(
                    src=producer,
                    dst=segment.key,
                    rule_id=rule.rule_id,
                    directions=directions,
                    offsets=offsets,
                )
            )
            if producer == segment.key:
                self_edges.append(directions)
    return _solve_iteration_order(transform, segment, rule, ndim, self_edges)


def _rule_center(rule: RuleIR, matrix: str) -> Optional[Tuple[Affine, ...]]:
    """The symbolic center: the cell coordinates the rule writes in
    ``matrix`` (None for whole-region rules)."""
    for region in rule.to_regions:
        if region.matrix == matrix and region.view_kind == "cell":
            return tuple(iv.lo for iv in region.box.intervals)
    return None


def _segment_var_bounds(
    rule: RuleIR, segment: Segment, assumptions
) -> Dict[str, Interval]:
    """Rule-variable bounds restricted to instances writing inside the
    segment (the preimage of the segment box under the to-bindings).

    Falls back to the full applicable bounds for any constraint that
    cannot be solved or intersected symbolically (conservative)."""
    from repro.symbolic import solve_bounds_for
    from repro.symbolic.solve import UnsatisfiableConstraint

    bounds = dict(rule.var_bounds)
    for region in rule.to_regions:
        if region.matrix != segment.matrix:
            continue
        for dim, interval in enumerate(region.box.intervals):
            expr = interval.lo
            vars_here = [v for v in expr.variables() if v in bounds]
            if len(vars_here) != 1:
                continue
            var = vars_here[0]
            seg_interval = segment.box.intervals[dim]
            try:
                solved = solve_bounds_for(
                    var, expr, seg_interval.lo, seg_interval.hi, assumptions
                )
                if solved is not None:
                    bounds[var] = bounds[var].intersect(solved, assumptions)
            except (SymbolicCompareError, UnsatisfiableConstraint):
                pass
    return bounds


def _swept_read_box(region: RegionIR, var_bounds: Dict[str, Interval]) -> Box:
    """Bounding box of the cells ``region`` reads as the rule variables
    sweep the given bounds (general affine sweep)."""
    intervals = []
    for interval in region.box.intervals:
        intervals.append(
            Interval(
                _sweep_expr(interval.lo, var_bounds, minimize=True),
                _sweep_expr(interval.hi, var_bounds, minimize=False),
            )
        )
    return Box(intervals)


def _sweep_expr(
    expr: Affine, var_bounds: Dict[str, Interval], minimize: bool
) -> Affine:
    swept = expr
    for var in expr.variables():
        bounds = var_bounds.get(var)
        if bounds is None:
            continue
        coeff = swept.coefficient(var)
        take_low = (coeff > 0) == minimize
        swept = swept.subs({var: bounds.lo if take_low else bounds.hi - 1})
    return swept


def _edge_annotation(
    region: RegionIR,
    center: Optional[Tuple[Affine, ...]],
    ndim: int,
    assumptions,
) -> Tuple[Tuple[str, ...], Optional[Tuple[Fraction, ...]]]:
    """Per-dimension direction chars and, for exact cell reads, offsets."""
    if center is None or region.box.ndim != len(center):
        return ("*",) * region.box.ndim, None
    directions: List[str] = []
    offsets: List[Fraction] = []
    exact = region.view_kind == "cell"
    for dim, interval in enumerate(region.box.intervals):
        lo_off = interval.lo - center[dim]
        hi_off = interval.hi - center[dim]
        if exact and lo_off.is_constant():
            offset = lo_off.as_constant()
            offsets.append(offset)
            if offset < 0:
                directions.append("<")
            elif offset > 0:
                directions.append(">")
            else:
                directions.append("=")
            continue
        exact = False
        if hi_off.always_le(0, assumptions):
            directions.append("<")
        elif Affine.const(1).always_le(lo_off, assumptions):
            directions.append(">")
        elif lo_off.always_le(0, assumptions) and Affine.const(1).always_le(
            hi_off, assumptions
        ):
            directions.append("*")
        else:
            directions.append("*")
    return tuple(directions), tuple(offsets) if exact else None


def _producer_nodes(
    transform: TransformIR,
    matrix: str,
    read_box: Box,
    segment_lookup: Dict[str, List[Segment]],
    assumptions,
) -> List[NodeKey]:
    if transform.matrices[matrix].role == ROLE_INPUT:
        return [matrix]
    producers = []
    for candidate in segment_lookup[matrix]:
        try:
            overlap = candidate.box.intersect(read_box, assumptions)
            empty = overlap.is_empty(assumptions)
        except SymbolicCompareError:
            empty = None  # cannot decide: keep the edge (conservative)
        if empty is not True:
            producers.append(candidate.key)
    return producers


def _solve_iteration_order(
    transform: TransformIR,
    segment: Segment,
    rule: RuleIR,
    ndim: int,
    self_edges: List[Tuple[str, ...]],
) -> IterationOrder:
    """Find an iteration order satisfying every self-dependency.

    A self-edge is satisfied by a lexicographic iteration order when the
    first dimension (in iteration priority) where the read is not at the
    center reads *earlier* cells: ``'<'`` under ascending or ``'>'``
    under descending iteration.  We search dimension permutations and
    sign assignments (ndim is tiny); each edge's resolving dimension
    contributes its sign, unconstrained dimensions stay 0 (parallel).

    An edge that reads exactly the written cell (all ``'='``) or whose
    potential resolving dimension spans the center (``'*'``) under every
    order has no valid schedule: that cycle is the §3.6 deadlock/race
    and is reported as a compile error.
    """
    import itertools as _it

    if not self_edges:
        return IterationOrder(
            signs=(0,) * ndim, priority=tuple(range(ndim))
        )

    def edge_resolution(dirs: Tuple[str, ...], perm, signs) -> Optional[int]:
        """The dim that resolves this edge under (perm, signs), or None."""
        for dim in perm:
            ch = dirs[dim]
            if ch == "=":
                continue
            if ch == "*":
                return None
            needed_sign = 1 if ch == "<" else -1
            return dim if signs[dim] == needed_sign else None
        return None  # all '=': reads its own cell

    for perm in _it.permutations(range(ndim)):
        for signs in _it.product((1, -1), repeat=ndim):
            used: List[Optional[int]] = []
            for dirs in self_edges:
                used.append(edge_resolution(dirs, perm, signs))
            if any(dim is None for dim in used):
                continue
            result = [0] * ndim
            for dim in used:
                result[dim] = signs[dim]
            return IterationOrder(signs=tuple(result), priority=perm)
    raise CompileError(
        f"{transform.name} {rule.label}: self-dependency on "
        f"{segment.matrix!r} has no schedulable iteration order "
        f"(cycle would deadlock)",
        line=getattr(rule, "line", 0),
        column=getattr(rule, "column", 0),
        code="PB205",
        hint=(
            "make the rule read strictly earlier cells along some axis "
            "(e.g. an offset like i-1), or split it into staged rules"
        ),
    )


# ---------------------------------------------------------------------------
# scheduling order / deadlock detection
# ---------------------------------------------------------------------------


def _topological_order(
    transform: TransformIR,
    nodes: Sequence[NodeKey],
    edges: Sequence[DepEdge],
) -> List[NodeKey]:
    """Topologically sort nodes (self-edges excluded); multi-node cycles
    are deadlocks (§3.6)."""
    successors: Dict[NodeKey, List[NodeKey]] = {node: [] for node in nodes}
    indegree: Dict[NodeKey, int] = {node: 0 for node in nodes}
    seen: Set[Tuple[NodeKey, NodeKey]] = set()
    for edge in edges:
        if edge.src == edge.dst:
            continue
        pair = (edge.src, edge.dst)
        if pair in seen:
            continue
        seen.add(pair)
        successors[edge.src].append(edge.dst)
        indegree[edge.dst] += 1

    order: List[NodeKey] = []
    ready = sorted(node for node, deg in indegree.items() if deg == 0)
    while ready:
        node = ready.pop(0)
        order.append(node)
        for succ in successors[node]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
        ready.sort()
    if len(order) != len(nodes):
        stuck = sorted(set(nodes) - set(order))
        raise CompileError(
            f"{transform.name}: dependency cycle between regions "
            f"{stuck} — program would deadlock",
            line=getattr(transform, "line", 0),
            column=getattr(transform, "column", 0),
            code="PB204",
            hint=(
                "break the cycle with a through-matrix staging the "
                "intermediate values, or reorder the reads"
            ),
        )
    return order
