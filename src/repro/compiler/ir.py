"""Intermediate representation of transforms after semantic analysis.

The IR is frontend-agnostic: the DSL parser and the Python builder API
both lower into :class:`TransformIR`.  All geometry is symbolic
(:class:`~repro.symbolic.Affine` / :class:`~repro.symbolic.Box`) over two
variable families:

* *size variables* — free variables of matrix dimension expressions
  (``n``, ``w``, ``h``, ``c``), bound at call time from input shapes;
* *rule variables* — free variables of a rule's region coordinates
  (``i``, ``x``, ``y``), bound per rule application.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.language import ast_nodes as ast
from repro.language.errors import CompileError
from repro.symbolic import Affine, Assumptions, Box, Interval

ROLE_INPUT = "from"
ROLE_OUTPUT = "to"
ROLE_THROUGH = "through"

#: A native rule body: called with a NativeContext (see builder module).
NativeBody = Callable[["object"], None]


@dataclass(frozen=True)
class MatrixIR:
    """A matrix declared in a transform header.

    ``dims`` are symbolic extents; a version range ``A<lo..hi>`` has been
    desugared into an extra leading dimension of extent ``hi - lo + 1``.
    """

    name: str
    role: str
    dims: Tuple[Affine, ...]
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)

    @property
    def ndim(self) -> int:
        return len(self.dims)

    def whole_box(self) -> Box:
        return Box.whole(self.dims)


@dataclass(frozen=True)
class RegionIR:
    """One region binding of a rule (either side).

    ``box`` is the covered region of ``matrix`` in matrix coordinates,
    symbolic over rule + size variables.  ``view_kind`` dictates the shape
    of the bound view (``cell`` -> 0-D, ``row``/``column`` -> 1-D, else
    the full box).
    """

    matrix: str
    view_kind: str  # cell | region | row | column | all
    box: Box
    bind_name: str
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)

    def ndim(self) -> int:
        return self.box.ndim


@dataclass(frozen=True)
class ScheduleIR:
    """A rule's declared schedule annotation: default tile sizes for
    its data-parallel instance variables and whether to interchange
    (run the whole sequential chain per tile instead of every tile per
    chain step).  Annotations are *requests* — the engine re-checks
    PB604 legality at execution and ignores the annotation on sites the
    analyzer cannot prove safe; tunables override the declared sizes."""

    tile: Tuple[Tuple[str, int], ...] = ()
    interchange: bool = False


@dataclass
class RuleIR:
    """One rule after semantic analysis.

    Exactly one of ``body`` (DSL statements) or ``native_body`` (Python
    callable) is set.  ``applicable`` (per output matrix, in matrix
    coordinates) is filled in by the applicable-regions pass.
    """

    rule_id: int
    label: str
    priority: int
    to_regions: Tuple[RegionIR, ...]
    from_regions: Tuple[RegionIR, ...]
    rule_vars: Tuple[str, ...]
    body: Tuple[ast.Statement, ...] = ()
    native_body: Optional[NativeBody] = None
    where: Tuple[ast.ExprNode, ...] = ()
    #: work-units charged per application before body accounting; native
    #: bodies normally charge explicitly through the context instead.
    base_work: float = 1.0
    #: True when the rule (directly) calls its own transform — used by
    #: default-configuration synthesis to guarantee termination.  Native
    #: rules set this through the builder's ``recursive=`` flag.
    is_recursive: bool = False
    #: Source position of the rule header (0 for builder-made rules), and
    #: per-where-clause positions parallel to ``where``.
    line: int = 0
    column: int = 0
    where_positions: Tuple[Tuple[int, int], ...] = ()
    #: Declared schedule annotation (``tile(...)`` / ``interchange``
    #: clauses), if any; legality-gated at execution, never trusted.
    schedule: Optional[ScheduleIR] = None
    # Filled by analysis passes:
    applicable: Dict[str, Box] = field(default_factory=dict)
    var_bounds: Dict[str, Interval] = field(default_factory=dict)
    residual_where: Tuple[ast.ExprNode, ...] = ()
    size_guards: Tuple[Affine, ...] = ()

    @property
    def is_instance_rule(self) -> bool:
        """True when the rule is applied per point of an instance space
        (it has rule variables); False for whole-region rules."""
        return bool(self.rule_vars)

    @property
    def all_regions(self) -> Tuple[RegionIR, ...]:
        """Every region binding in engine order: to-regions first, then
        from-regions — the order bodies see their bindings built in (and
        the order the lowered kernels must replicate for error parity)."""
        return self.to_regions + self.from_regions

    def region(self, bind_name: str) -> Optional[RegionIR]:
        """The region bound to ``bind_name``, or None."""
        for reg in self.all_regions:
            if reg.bind_name == bind_name:
                return reg
        return None

    def where_position(self, index: int) -> Optional[Tuple[int, int]]:
        """(line, column) of the index-th where clause, if known."""
        if index < len(self.where_positions):
            line, column = self.where_positions[index]
            if line:
                return (line, column)
        return None

    def writes_matrices(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(r.matrix for r in self.to_regions))

    def reads_matrices(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(r.matrix for r in self.from_regions))


@dataclass
class TransformIR:
    """A transform after semantic analysis."""

    name: str
    matrices: Dict[str, MatrixIR]
    rules: List[RuleIR]
    size_vars: Tuple[str, ...]
    tunables: Tuple[ast.TunableDecl, ...] = ()
    generator: Optional[str] = None
    assumptions: Assumptions = field(default_factory=Assumptions)
    line: int = 0
    column: int = 0

    def matrices_with_role(self, role: str) -> List[MatrixIR]:
        return [m for m in self.matrices.values() if m.role == role]

    @property
    def inputs(self) -> List[MatrixIR]:
        return self.matrices_with_role(ROLE_INPUT)

    @property
    def outputs(self) -> List[MatrixIR]:
        return self.matrices_with_role(ROLE_OUTPUT)

    @property
    def throughs(self) -> List[MatrixIR]:
        return self.matrices_with_role(ROLE_THROUGH)


@dataclass
class ProgramIR:
    """A set of transforms compiled together (call graph unit)."""

    transforms: Dict[str, TransformIR]

    def transform(self, name: str) -> TransformIR:
        if name not in self.transforms:
            raise CompileError(f"unknown transform {name!r}")
        return self.transforms[name]


# ---------------------------------------------------------------------------
# AST -> IR lowering
# ---------------------------------------------------------------------------


def build_ir(
    program: ast.Program,
    template_values: Optional[Dict[str, Sequence[int]]] = None,
) -> ProgramIR:
    """Semantic analysis: lower a parsed program to IR.

    Template transforms (paper §2: "each template instance is autotuned
    separately") are instantiated for every value listed in
    ``template_values[name]``; each instance becomes an independent
    transform named ``Name_<value>`` with its own choice sites.  A
    template transform with no requested values is skipped (it cannot
    execute unbound).
    """
    transforms: Dict[str, TransformIR] = {}
    for decl in program.transforms:
        if decl.template_params:
            for value in (template_values or {}).get(decl.name, ()):
                instance = instantiate_template(decl, value)
                if instance.name in transforms:
                    raise CompileError(
                        f"duplicate transform {instance.name!r}"
                    )
                transforms[instance.name] = _build_transform(instance)
            continue
        if decl.name in transforms:
            raise CompileError(f"duplicate transform {decl.name!r}")
        transforms[decl.name] = _build_transform(decl)
    return ProgramIR(transforms)


def instantiate_template(
    decl: ast.TransformDecl, value: int
) -> ast.TransformDecl:
    """One concrete instance of a template transform: the template
    parameter becomes the literal ``value`` everywhere, and the instance
    is renamed ``Name_<value>`` so it is tuned independently."""
    if len(decl.template_params) != 1:
        raise CompileError(
            f"{decl.name}: exactly one template parameter is supported"
        )
    param, lo, hi = decl.template_params[0]
    if not (lo <= value <= hi):
        raise CompileError(
            f"{decl.name}: template value {value} outside [{lo}, {hi}]"
        )
    env = {param: ast.Num(value)}

    def subst_expr(node: ast.ExprNode) -> ast.ExprNode:
        if isinstance(node, ast.Var):
            return env.get(node.name, node)
        if isinstance(node, ast.Num):
            return node
        if isinstance(node, ast.BinOp):
            return ast.BinOp(node.op, subst_expr(node.left), subst_expr(node.right))
        if isinstance(node, ast.UnaryOp):
            return ast.UnaryOp(node.op, subst_expr(node.operand))
        if isinstance(node, ast.Ternary):
            return ast.Ternary(
                subst_expr(node.cond),
                subst_expr(node.if_true),
                subst_expr(node.if_false),
            )
        if isinstance(node, ast.Call):
            return ast.Call(node.name, tuple(subst_expr(a) for a in node.args))
        if isinstance(node, ast.CellAccess):
            return ast.CellAccess(
                node.base, tuple(subst_expr(a) for a in node.args)
            )
        return node

    def subst_matrix(mat: ast.MatrixDecl) -> ast.MatrixDecl:
        return ast.MatrixDecl(
            name=mat.name,
            dims=tuple(subst_expr(d) for d in mat.dims),
            version=None
            if mat.version is None
            else (subst_expr(mat.version[0]), subst_expr(mat.version[1])),
            line=mat.line,
            column=mat.column,
        )

    def subst_bind(b: ast.RegionBind) -> ast.RegionBind:
        return ast.RegionBind(
            b.matrix,
            b.accessor,
            tuple(subst_expr(a) for a in b.args),
            b.name,
            line=b.line,
            column=b.column,
        )

    def subst_rule(rule: ast.RuleDecl) -> ast.RuleDecl:
        return ast.RuleDecl(
            to_bindings=tuple(subst_bind(b) for b in rule.to_bindings),
            from_bindings=tuple(subst_bind(b) for b in rule.from_bindings),
            body=tuple(
                ast.Assign(subst_expr(s.target), s.op, subst_expr(s.value))
                for s in rule.body
            ),
            where=tuple(
                ast.WhereClause(subst_expr(w.condition), w.line, w.column)
                for w in rule.where
            ),
            priority=rule.priority,
            label=rule.label,
            escapes=rule.escapes,
            tile=rule.tile,
            interchange=rule.interchange,
            line=rule.line,
            column=rule.column,
        )

    return ast.TransformDecl(
        name=f"{decl.name}_{value}",
        to_matrices=tuple(subst_matrix(m) for m in decl.to_matrices),
        from_matrices=tuple(subst_matrix(m) for m in decl.from_matrices),
        through_matrices=tuple(subst_matrix(m) for m in decl.through_matrices),
        rules=tuple(subst_rule(r) for r in decl.rules),
        tunables=decl.tunables,
        generator=decl.generator,
        template_params=(),
        line=decl.line,
        column=decl.column,
    )


def _build_transform(decl: ast.TransformDecl) -> TransformIR:
    matrices: Dict[str, MatrixIR] = {}
    for role, decls in (
        (ROLE_INPUT, decl.from_matrices),
        (ROLE_OUTPUT, decl.to_matrices),
        (ROLE_THROUGH, decl.through_matrices),
    ):
        for mat in decls:
            if mat.name in matrices:
                raise CompileError(
                    f"matrix {mat.name!r} declared twice in {decl.name}"
                )
            matrices[mat.name] = MatrixIR(
                name=mat.name,
                role=role,
                dims=_matrix_dims(mat),
                line=mat.line,
                column=mat.column,
            )

    size_vars = decl.size_variables
    assumptions = Assumptions()
    for var in size_vars:
        assumptions = assumptions.with_at_least(var, 1)

    tunable_names = {t.name for t in decl.tunables}
    rules: List[RuleIR] = []
    for index, rule in enumerate(decl.rules):
        built = _build_rule(
            decl.name, index, rule, matrices, size_vars, tunable_names
        )
        built.is_recursive = _calls_transform(rule.body, decl.name)
        rules.append(built)

    return TransformIR(
        name=decl.name,
        matrices=matrices,
        rules=rules,
        size_vars=size_vars,
        tunables=decl.tunables,
        generator=decl.generator,
        assumptions=assumptions,
        line=decl.line,
        column=decl.column,
    )


def _calls_transform(statements, name: str) -> bool:
    """Does any statement call ``name`` (direct recursion detection)?"""

    def expr_calls(node: ast.ExprNode) -> bool:
        if isinstance(node, ast.Call):
            if node.name == name:
                return True
            return any(expr_calls(arg) for arg in node.args)
        if isinstance(node, ast.BinOp):
            return expr_calls(node.left) or expr_calls(node.right)
        if isinstance(node, ast.UnaryOp):
            return expr_calls(node.operand)
        if isinstance(node, ast.Ternary):
            return (
                expr_calls(node.cond)
                or expr_calls(node.if_true)
                or expr_calls(node.if_false)
            )
        if isinstance(node, ast.CellAccess):
            return any(expr_calls(arg) for arg in node.args)
        return False

    return any(
        expr_calls(stmt.value) or expr_calls(stmt.target)
        for stmt in statements
    )


def _matrix_dims(mat: ast.MatrixDecl) -> Tuple[Affine, ...]:
    dims: List[Affine] = []
    if mat.version is not None:
        lo, hi = (expr.to_affine() for expr in mat.version)
        dims.append(hi - lo + 1)  # versions become a leading dimension
    for dim in mat.dims:
        try:
            dims.append(dim.to_affine())
        except ValueError as err:
            raise CompileError(
                f"matrix {mat.name!r}: non-affine dimension ({err})"
            ) from err
    return tuple(dims)


def _build_rule(
    transform_name: str,
    index: int,
    rule: ast.RuleDecl,
    matrices: Mapping[str, MatrixIR],
    size_vars: Tuple[str, ...],
    tunable_names: set,
) -> RuleIR:
    reserved = set(size_vars) | tunable_names
    rule_vars: List[str] = []

    def coord_exprs(bind: ast.RegionBind) -> List[Affine]:
        exprs = []
        for arg in bind.args:
            try:
                exprs.append(arg.to_affine())
            except ValueError as err:
                raise CompileError(
                    f"{transform_name} rule {index}: non-affine region "
                    f"coordinate for {bind.matrix!r} ({err})"
                ) from err
        return exprs

    def collect_vars(exprs: Sequence[Affine]) -> None:
        for expr in exprs:
            for var in expr.variables():
                if var not in reserved and var not in rule_vars:
                    rule_vars.append(var)

    def region_ir(bind: ast.RegionBind) -> RegionIR:
        if bind.matrix not in matrices:
            raise CompileError(
                f"{transform_name} rule {index}: unknown matrix "
                f"{bind.matrix!r}",
                line=bind.line,
                column=bind.column,
            )
        mat = matrices[bind.matrix]
        exprs = coord_exprs(bind)
        collect_vars(exprs)
        box = _binding_box(mat, bind.accessor, exprs, transform_name, index)
        return RegionIR(
            matrix=bind.matrix,
            view_kind=bind.accessor,
            box=box,
            bind_name=bind.name,
            line=bind.line,
            column=bind.column,
        )

    to_regions = tuple(region_ir(b) for b in rule.to_bindings)
    from_regions = tuple(region_ir(b) for b in rule.from_bindings)

    target_matrices = {r.matrix for r in to_regions}
    if len(target_matrices) > 1:
        raise CompileError(
            f"{transform_name} rule {index}: rules writing multiple "
            f"matrices are not supported (targets {sorted(target_matrices)})",
            line=rule.line,
            column=rule.column,
        )

    seen_names = set()
    for region in to_regions + from_regions:
        if region.bind_name in seen_names:
            raise CompileError(
                f"{transform_name} rule {index}: duplicate binding name "
                f"{region.bind_name!r}",
                line=region.line or rule.line,
                column=region.column or rule.column,
            )
        seen_names.add(region.bind_name)

    for region in to_regions:
        if matrices[region.matrix].role == ROLE_INPUT:
            raise CompileError(
                f"{transform_name} rule {index}: writes to input matrix "
                f"{region.matrix!r}",
                line=region.line or rule.line,
                column=region.column or rule.column,
            )

    schedule = None
    if rule.tile or rule.interchange:
        for var, size in rule.tile:
            if var not in rule_vars:
                raise CompileError(
                    f"{transform_name} rule {index}: tile() names "
                    f"{var!r}, which is not an instance variable",
                    line=rule.line,
                    column=rule.column,
                )
            if size < 1:
                raise CompileError(
                    f"{transform_name} rule {index}: tile size for "
                    f"{var!r} must be positive",
                    line=rule.line,
                    column=rule.column,
                )
        schedule = ScheduleIR(
            tile=tuple(rule.tile), interchange=rule.interchange
        )

    return RuleIR(
        rule_id=index,
        label=rule.label or f"rule{index}",
        priority=rule.priority,
        to_regions=to_regions,
        from_regions=from_regions,
        rule_vars=tuple(rule_vars),
        body=rule.body,
        where=tuple(w.condition for w in rule.where),
        line=rule.line,
        column=rule.column,
        where_positions=tuple((w.line, w.column) for w in rule.where),
        schedule=schedule,
    )


def _binding_box(
    mat: MatrixIR,
    accessor: str,
    exprs: Sequence[Affine],
    transform_name: str,
    rule_index: int,
) -> Box:
    """The matrix-coordinate box a binding covers."""
    k = mat.ndim

    def arity_error(expected: int) -> CompileError:
        return CompileError(
            f"{transform_name} rule {rule_index}: {mat.name}.{accessor} "
            f"takes {expected} coordinates, got {len(exprs)}"
        )

    if accessor == "all":
        if exprs:
            raise arity_error(0)
        return mat.whole_box()
    if accessor == "cell":
        if len(exprs) != k:
            raise arity_error(k)
        return Box.cell(exprs)
    if accessor == "region":
        if len(exprs) != 2 * k:
            raise arity_error(2 * k)
        los, his = exprs[:k], exprs[k:]
        return Box([Interval(lo, hi) for lo, hi in zip(los, his)])
    if accessor == "row":
        if k != 2:
            raise CompileError(
                f"{transform_name} rule {rule_index}: .row() on "
                f"{k}-D matrix {mat.name}"
            )
        if len(exprs) != 1:
            raise arity_error(1)
        (y,) = exprs
        return Box([Interval(0, mat.dims[0]), Interval.point(y)])
    if accessor == "column":
        if k != 2:
            raise CompileError(
                f"{transform_name} rule {rule_index}: .column() on "
                f"{k}-D matrix {mat.name}"
            )
        if len(exprs) != 1:
            raise arity_error(1)
        (x,) = exprs
        return Box([Interval.point(x), Interval(0, mat.dims[1])])
    raise CompileError(f"unknown accessor {accessor!r}")
