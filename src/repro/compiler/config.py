"""Choice configuration files (paper §3.1 Figure 2, §3.3).

Autotuning emits an *application configuration file* that controls when
different choices are made.  A configuration holds:

* one :class:`Selector` per choice site (a segment of a matrix in some
  transform) — a multi-level algorithm: an ordered list of
  ``(max_input_size, option)`` levels, so different options fire at
  different region sizes (this is how recursive compositions such as
  "quicksort above 600, insertion sort below" are encoded);
* integer tunables, including the runtime's sequential cutoff and
  per-site parallel block sizes, plus user ``tunable`` declarations.

Configurations serialize to JSON (the original used a flat text format;
the structure — a flat key/value space — is preserved) and can be fed
back into the compiler for static specialization.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

INFINITE = None  # marker: level applies to all sizes


@dataclass(frozen=True)
class Selector:
    """A multi-level choice: ordered ``(max_size, option)`` levels.

    ``pick(size)`` returns the option of the first level whose
    ``max_size`` (exclusive) exceeds the region size; the final level
    should use ``None`` (infinity).  A selector with one ``(None, k)``
    level is a static choice of option ``k``.
    """

    levels: Tuple[Tuple[Optional[int], int], ...]

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("selector needs at least one level")
        thresholds = [t for t, _ in self.levels[:-1]]
        if any(t is None for t in thresholds):
            raise ValueError("only the last level may be unbounded")
        if self.levels[-1][0] is not None:
            raise ValueError("last level must be unbounded (max_size=None)")
        if any(
            thresholds[i] >= thresholds[i + 1]
            for i in range(len(thresholds) - 1)
        ):
            raise ValueError("level thresholds must be strictly increasing")

    @staticmethod
    def static(option: int) -> "Selector":
        """A selector that always picks ``option``."""
        return Selector(((None, option),))

    def pick(self, size: int) -> int:
        for max_size, option in self.levels:
            if max_size is None or size < max_size:
                return option
        return self.levels[-1][1]

    def options_used(self) -> Tuple[int, ...]:
        return tuple(dict.fromkeys(option for _, option in self.levels))

    def describe(self) -> str:
        parts = []
        for max_size, option in self.levels:
            bound = "inf" if max_size is None else str(max_size)
            parts.append(f"{option}(<{bound})")
        return " ".join(parts)


@dataclass
class ChoiceConfig:
    """A complete application configuration.

    Keys are flat strings (the paper's flat configuration space):
    choice sites are ``"Transform.Matrix.segment"``, tunables are
    ``"Transform.name"`` plus the reserved runtime tunables
    ``"Transform.__seq_cutoff__"``, ``"Transform.__block_size__"``,
    ``"Transform.__leaf_path__"`` (0 interp / 1 closure / 2 vector),
    ``"Transform.__vectorize_cutoff__"``, ``"Transform.__fuse__"``
    (run the verified fused rewrite when one exists), and the schedule
    tunables ``"Transform.__tile_i__"`` / ``"Transform.__tile_j__"``
    (tile sizes for the first/second data-parallel instance variable;
    0 disables tiling) and ``"Transform.__interchange__"`` (run the
    sequential chain per tile instead of every tile per chain step).
    """

    choices: Dict[str, Selector] = field(default_factory=dict)
    tunables: Dict[str, int] = field(default_factory=dict)
    #: size-leveled tunables: like choice selectors, the tuned value may
    #: depend on the problem size (e.g. iteration counts per grid size in
    #: the variable-accuracy Poisson solver).  A leveled entry shadows
    #: the flat entry of the same name.
    leveled_tunables: Dict[str, Selector] = field(default_factory=dict)

    # -- choice sites --------------------------------------------------------

    def set_choice(self, site: str, selector: Selector) -> None:
        self.choices[site] = selector

    def choice_for(self, site: str) -> Optional[Selector]:
        return self.choices.get(site)

    # -- tunables ------------------------------------------------------------

    def set_tunable(self, name: str, value: int) -> None:
        self.tunables[name] = int(value)

    def set_leveled_tunable(self, name: str, selector: Selector) -> None:
        """Set a tunable whose value depends on the problem size; the
        selector's "options" are the tunable's values per size band."""
        self.leveled_tunables[name] = selector

    def tunable(self, name: str, default: int) -> int:
        return self.tunables.get(name, default)

    def tunable_at(self, name: str, size: int, default: int) -> int:
        """Resolve a tunable at a problem size (leveled entries win)."""
        leveled = self.leveled_tunables.get(name)
        if leveled is not None:
            return leveled.pick(size)
        return self.tunables.get(name, default)

    def seq_cutoff(self, transform: str, default: int = 64) -> int:
        """Region size below which generated code runs the sequential
        (non-task-spawning) version (paper §3.2)."""
        return self.tunable(f"{transform}.__seq_cutoff__", default)

    def block_size(self, transform: str, default: int = 64) -> int:
        """Granularity for splitting data-parallel regions into tasks."""
        return self.tunable(f"{transform}.__block_size__", default)

    def leaf_path(self, transform: str, size: int, default: int = 1) -> int:
        """Leaf execution path for rule instances at a problem size:
        0 = reference interpreter, 1 = compiled closure (the default),
        2 = vectorized NumPy leaves (see :mod:`repro.engine_fast`).
        Leveled entries make the path itself size-dependent."""
        value = self.tunable_at(f"{transform}.__leaf_path__", size, default)
        return min(2, max(0, int(value)))

    def vectorize_cutoff(self, transform: str, size: int, default: int = 0) -> int:
        """Minimum data-parallel step volume before the vector leaf path
        engages; below it the engine demotes to the closure path."""
        return max(
            0,
            int(
                self.tunable_at(
                    f"{transform}.__vectorize_cutoff__", size, default
                )
            ),
        )

    def fuse_enabled(self, transform: str, default: int = 0) -> int:
        """Whether the engine dispatches to the transform's verified
        fused rewrite (:mod:`repro.rewrite`) when one exists: 0 runs the
        program as written (the default), 1 runs the fused variant.  A
        no-op on transforms with no legal fusion."""
        return 1 if self.tunable(f"{transform}.__fuse__", default) else 0

    def tile_size(self, transform: str, dim: int, default: int = 0) -> int:
        """Tile size for the ``dim``-th data-parallel (free) instance
        variable of a PB604-legal site: ``__tile_i__`` for the first,
        ``__tile_j__`` for the second.  0 (the default) disables tiling
        of that variable; the engine ignores the knob entirely on sites
        the dependence analyzer cannot prove safe."""
        name = "__tile_i__" if dim == 0 else "__tile_j__"
        return max(0, int(self.tunable(f"{transform}.{name}", default)))

    def interchange_enabled(self, transform: str, default: int = 0) -> int:
        """Whether tiled sites run tiles outermost — the whole
        sequential chain sweeps each tile while it is cache-hot —
        instead of re-visiting every tile at every chain step.  Only
        meaningful with a nonzero tile size; a no-op on sites without a
        PB604 legality proof."""
        return 1 if self.tunable(f"{transform}.__interchange__", default) else 0

    # -- serialization ---------------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "choices": {
                site: [
                    [max_size, option] for max_size, option in sel.levels
                ]
                for site, sel in sorted(self.choices.items())
            },
            "tunables": dict(sorted(self.tunables.items())),
            "leveled_tunables": {
                name: [
                    [max_size, value] for max_size, value in sel.levels
                ]
                for name, sel in sorted(self.leveled_tunables.items())
            },
        }
        return json.dumps(payload, indent=2)

    @staticmethod
    def from_json(text: str) -> "ChoiceConfig":
        payload = json.loads(text)
        config = ChoiceConfig()

        def parse_levels(levels) -> Selector:
            return Selector(
                tuple(
                    (None if max_size is None else int(max_size), int(value))
                    for max_size, value in levels
                )
            )

        for site, levels in payload.get("choices", {}).items():
            config.choices[site] = parse_levels(levels)
        for name, value in payload.get("tunables", {}).items():
            config.tunables[name] = int(value)
        for name, levels in payload.get("leveled_tunables", {}).items():
            config.leveled_tunables[name] = parse_levels(levels)
        return config

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @staticmethod
    def load(path: str) -> "ChoiceConfig":
        with open(path, "r", encoding="utf-8") as handle:
            return ChoiceConfig.from_json(handle.read())

    def merged_with(self, other: "ChoiceConfig") -> "ChoiceConfig":
        """A new config where ``other``'s entries win on conflicts."""
        merged = ChoiceConfig(
            dict(self.choices),
            dict(self.tunables),
            dict(self.leveled_tunables),
        )
        merged.choices.update(other.choices)
        merged.tunables.update(other.tunables)
        merged.leveled_tunables.update(other.leveled_tunables)
        return merged

    def copy(self) -> "ChoiceConfig":
        return ChoiceConfig(
            dict(self.choices),
            dict(self.tunables),
            dict(self.leveled_tunables),
        )


def site_key(transform: str, matrix: str, segment_index: int) -> str:
    """The flat configuration key of a choice site."""
    return f"{transform}.{matrix}.{segment_index}"
