"""The PetaBricks compiler.

Pipeline (paper §3.1), operating on symbolic regions of unknown size:

1. **IR construction** (:mod:`repro.compiler.ir`) — semantic analysis of
   the parsed AST (or of a :class:`~repro.compiler.builder.TransformBuilder`
   program) into :class:`TransformIR`.
2. **Normalization + applicable regions**
   (:mod:`repro.compiler.applicable`) — each rule gets a symbolic center
   and the region where it may legally be applied.
3. **Choice grid** (:mod:`repro.compiler.choicegrid`) — each matrix is cut
   into rectilinear segments with a uniform applicable-rule set; rule
   priorities filter each segment; where-restricted rules become
   meta-rules.
4. **Choice dependency graph** (:mod:`repro.compiler.depgraph`) — edges
   between segments annotated with (rule, direction, offset); cycle
   detection doubles as the deadlock-freedom guarantee of §3.6.
5. **Code generation** (:mod:`repro.compiler.codegen`) — an executable
   :class:`CompiledTransform`.  Dynamic mode consults a
   :class:`~repro.compiler.config.ChoiceConfig` at run time; static mode
   (:func:`~repro.compiler.codegen.specialize`) bakes the configuration
   in and strips unused choices.
"""

from repro.compiler.builder import TransformBuilder, NativeContext
from repro.compiler.codegen import CompiledProgram, CompiledTransform, compile_program
from repro.compiler.config import ChoiceConfig, Selector
from repro.compiler.ir import ProgramIR, RegionIR, RuleIR, TransformIR, build_ir

__all__ = [
    "ChoiceConfig",
    "CompiledProgram",
    "CompiledTransform",
    "NativeContext",
    "ProgramIR",
    "RegionIR",
    "RuleIR",
    "Selector",
    "TransformBuilder",
    "TransformIR",
    "build_ir",
    "compile_program",
]
