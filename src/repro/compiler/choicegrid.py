"""Choice grid construction (paper §3.1, phase 3).

The choice grid divides every non-input matrix into rectilinear segments
within which a uniform set of rules is applicable.  Segment boundaries
come from sorting the symbolic bounds of all rules' applicable regions
(the inference-system sort the paper delegates to Maxima).

Rule priorities are applied per segment: only rules of minimal priority
survive.  Rules carrying residual ``where`` predicates are *restricted*:
they cannot stand alone, so each is packaged into a meta-rule pairing it
with an unrestricted fallback that covers the cells the predicate
rejects (the paper's meta-rule construction).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.language.errors import CompileError
from repro.symbolic import Box, Interval
from repro.symbolic.expr import Affine, SymbolicCompareError, sort_bounds

from repro.compiler.ir import ROLE_INPUT, TransformIR


@dataclass(frozen=True)
class ChoiceOption:
    """One selectable way to compute a segment.

    ``primary`` is a rule id; ``fallback`` (when set) handles instances
    where the primary's residual where-predicate fails — i.e. this option
    is a meta-rule.
    """

    primary: int
    fallback: Optional[int] = None

    def describe(self, transform: TransformIR) -> str:
        primary = transform.rules[self.primary].label
        if self.fallback is None:
            return primary
        return f"{primary}|{transform.rules[self.fallback].label}"


@dataclass
class Segment:
    """A rectilinear region of a matrix with its uniform choice set."""

    matrix: str
    index: int
    box: Box
    options: Tuple[ChoiceOption, ...]

    @property
    def key(self) -> str:
        """Stable identifier used in configuration files."""
        return f"{self.matrix}.{self.index}"


@dataclass
class ChoiceGrid:
    """Choice grids of every computed (non-input) matrix.

    ``order_guards`` holds affine expressions that must be >= 0 at run
    time: they record boundary orderings that could not be proven
    symbolically and were assumed from a large probe size (e.g. ``n - 1
    >= 1`` when a rule's applicable region starts at 1 and another ends
    at ``n - 1``).  The engine rejects inputs violating them instead of
    silently mis-partitioning the matrix.
    """

    segments: Dict[str, List[Segment]]
    order_guards: List[Affine]

    def all_segments(self) -> List[Segment]:
        return [seg for segs in self.segments.values() for seg in segs]

    def segment(self, matrix: str, index: int) -> Segment:
        return self.segments[matrix][index]


def build_choice_grid(transform: TransformIR) -> ChoiceGrid:
    """Build the choice grid (applicable regions must be computed).

    Two passes: the first orders every boundary (collecting runtime
    guards for orderings that needed the probe-size heuristic); the
    guards are then folded into the transform's size assumptions — they
    are checked at run time, so the rest of compilation may rely on
    them — and the second pass builds segments and their option sets
    under the strengthened assumptions.
    """
    computed = [
        m for m in transform.matrices.values() if m.role != ROLE_INPUT
    ]
    guards: List[Affine] = []
    for matrix in computed:
        _collect_cut_guards(transform, matrix.name, guards)
    for guard in guards:
        variables = guard.variables()
        if len(variables) != 1:
            continue
        var = variables[0]
        coeff = guard.coefficient(var)
        if coeff > 0:
            minimum = math.ceil(-guard.constant / coeff)
            transform.assumptions = transform.assumptions.with_at_least(
                var, int(minimum)
            )
    grids: Dict[str, List[Segment]] = {}
    for matrix in computed:
        grids[matrix.name] = _grid_for_matrix(transform, matrix.name, [])
    return ChoiceGrid(grids, guards)


def _collect_cut_guards(
    transform: TransformIR, matrix_name: str, guards: List[Affine]
) -> None:
    """Pass 1: order the boundaries of one matrix, recording guards."""
    matrix = transform.matrices[matrix_name]
    assumptions = transform.assumptions
    relevant = [
        rule for rule in transform.rules if matrix_name in rule.applicable
    ]
    for dim in range(matrix.ndim):
        cuts = [Affine.const(0), matrix.dims[dim]]
        for rule in relevant:
            interval = rule.applicable[matrix_name].intervals[dim]
            cuts.extend(_clamped(interval, matrix.dims[dim], assumptions))
        _ordered_cuts(
            cuts, assumptions, guards, f"{transform.name}.{matrix_name}[{dim}]"
        )


#: probe value per size variable for heuristic boundary ordering
_PROBE = 1009


def _ordered_cuts(
    cuts: List[Affine],
    assumptions,
    guards: List[Affine],
    context: str,
) -> Tuple[Affine, ...]:
    """Sort boundary cuts, falling back to a probe-size ordering.

    When the exact symbolic sort fails, cuts are ordered by their value
    at a large probe size; every consecutive pair that is not provably
    ordered is recorded as a runtime guard (``next - prev >= 0``)."""
    try:
        return sort_bounds(cuts, assumptions)
    except SymbolicCompareError:
        pass
    unique: List[Affine] = []
    for cut in cuts:
        if not any(cut == seen for seen in unique):
            unique.append(cut)
    env = {
        var: _PROBE
        for cut in unique
        for var in cut.variables()
    }
    unique.sort(key=lambda cut: cut.evaluate(env))
    for prev, nxt in zip(unique, unique[1:]):
        if not prev.always_le(nxt, assumptions):
            guards.append(nxt - prev)
    return tuple(unique)


def _grid_for_matrix(
    transform: TransformIR, matrix_name: str, guards: List[Affine]
) -> List[Segment]:
    matrix = transform.matrices[matrix_name]
    assumptions = transform.assumptions
    relevant = [
        rule for rule in transform.rules if matrix_name in rule.applicable
    ]
    if not relevant:
        raise CompileError(
            f"{transform.name}: no rule computes matrix {matrix_name!r}",
            line=matrix.line or transform.line,
            column=matrix.column or transform.column,
            code="PB301",
            hint=(
                f"add a rule with a to({matrix_name}...) binding, or drop "
                f"the matrix from the transform header"
            ),
        )

    # Boundary expressions per dimension: matrix edges plus every rule's
    # applicable-region bounds, clamped into [0, size].
    per_dim_cuts: List[Tuple[Affine, ...]] = []
    for dim in range(matrix.ndim):
        cuts = [Affine.const(0), matrix.dims[dim]]
        for rule in relevant:
            interval = rule.applicable[matrix_name].intervals[dim]
            cuts.extend(_clamped(interval, matrix.dims[dim], assumptions))
        per_dim_cuts.append(
            _ordered_cuts(
                cuts,
                assumptions,
                guards,
                f"{transform.name}.{matrix_name}[{dim}]",
            )
        )

    segments: List[Segment] = []
    dim_intervals = [
        [Interval(lo, hi) for lo, hi in zip(cuts, cuts[1:])]
        for cuts in per_dim_cuts
    ]
    if matrix.ndim == 0:
        cells = [Box([])]
    else:
        cells = [Box(combo) for combo in itertools.product(*dim_intervals)]

    for box in cells:
        options = _options_for_segment(transform, matrix_name, box, relevant)
        if not options:
            if box.is_empty(assumptions) is True:
                continue  # provably empty sliver, drop it
            raise CompileError(
                f"{transform.name}: no rule covers region {box} of "
                f"matrix {matrix_name!r}",
                line=matrix.line or transform.line,
                column=matrix.column or transform.column,
                code="PB301",
                hint=(
                    "extend an existing rule's applicable region or add a "
                    "(possibly secondary) rule covering the gap"
                ),
            )
        segments.append(
            Segment(
                matrix=matrix_name,
                index=len(segments),
                box=box,
                options=options,
            )
        )
    return segments


def _clamped(interval: Interval, size: Affine, assumptions) -> List[Affine]:
    """Applicable bounds clipped to the matrix extent [0, size]."""
    bounds = []
    for expr in (interval.lo, interval.hi):
        if expr.always_le(0, assumptions):
            expr = Affine.const(0)
        elif size.always_le(expr, assumptions):
            expr = size
        bounds.append(expr)
    return bounds


def _options_for_segment(
    transform: TransformIR,
    matrix_name: str,
    box: Box,
    relevant,
) -> Tuple[ChoiceOption, ...]:
    assumptions = transform.assumptions
    applicable = []
    for rule in relevant:
        rule_box = rule.applicable[matrix_name]
        if rule.is_instance_rule:
            # Instance rules apply per cell: any segment inside the
            # applicable region may choose them.
            if rule_box.contains(box, assumptions):
                applicable.append(rule)
        else:
            # Whole-region rules write their entire to-region in one
            # application, so they are valid only for the segment that
            # exactly matches it (otherwise they would write outside
            # the segment being computed).
            if rule_box.contains(box, assumptions) and box.contains(
                rule_box, assumptions
            ):
                applicable.append(rule)
    if not applicable:
        return ()
    min_priority = min(rule.priority for rule in applicable)
    top = [rule for rule in applicable if rule.priority == min_priority]
    lower = [rule for rule in applicable if rule.priority > min_priority]

    options: List[ChoiceOption] = []
    for rule in top:
        if not rule.residual_where:
            options.append(ChoiceOption(primary=rule.rule_id))
    # Meta-rules: a restricted top-priority rule needs an unrestricted
    # fallback (same or lower priority) for the cells its predicate rejects.
    unrestricted_fallbacks = [
        rule for rule in top + lower if not rule.residual_where
    ]
    for rule in top:
        if rule.residual_where:
            for fallback in unrestricted_fallbacks:
                if fallback.rule_id != rule.rule_id:
                    options.append(
                        ChoiceOption(
                            primary=rule.rule_id, fallback=fallback.rule_id
                        )
                    )
    return tuple(options)
