"""Normalization and applicable-region inference (paper §3.1, phases 1-2).

For every rule we compute:

* **rule-variable bounds** — for each rule variable, the half-open
  interval of values for which *every* region the rule touches stays
  inside its matrix (the intersection of the per-dependency applicable
  regions the paper describes), further constrained by affine ``where``
  clauses;
* **size guards** — constraints that involve only size variables (e.g.
  that a recursive decomposition's sub-regions are well-formed); provably
  violated guards are compile errors, undecidable ones are checked at
  run time;
* **per-matrix applicable regions** — the image of the rule-variable box
  under each ``to`` binding, in matrix coordinates, which feeds the
  choice-grid pass.

``where`` clauses that cannot be folded into affine single-variable
bounds are kept as *residual* predicates; the choice-grid pass treats
such rules as restricted (bounding-box + meta-rule semantics, §3.1).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.language import ast_nodes as ast
from repro.language.errors import CompileError
from repro.symbolic import Affine, Assumptions, Box, Interval
from repro.symbolic.expr import SymbolicCompareError
from repro.symbolic.interval import _symbolic_max, _symbolic_min

from repro.compiler.ir import RuleIR, TransformIR


def analyze_applicable_regions(transform: TransformIR) -> None:
    """Fill ``rule.var_bounds``, ``rule.size_guards``, ``rule.applicable``
    and ``rule.residual_where`` for every rule of ``transform``."""
    for rule in transform.rules:
        _analyze_rule(transform, rule)


class _Bounds:
    """Accumulates lower/upper bounds for one rule variable."""

    def __init__(self) -> None:
        self.lo: Optional[Affine] = None
        self.hi: Optional[Affine] = None

    def add_lower(self, bound: Affine, assumptions: Assumptions) -> None:
        self.lo = bound if self.lo is None else _symbolic_max(self.lo, bound, assumptions)

    def add_upper(self, bound: Affine, assumptions: Assumptions) -> None:
        self.hi = bound if self.hi is None else _symbolic_min(self.hi, bound, assumptions)

    def interval(self, var: str, line: int = 0, column: int = 0) -> Interval:
        if self.lo is None or self.hi is None:
            raise CompileError(
                f"rule variable {var!r} has an unbounded instance space",
                line=line,
                column=column,
                code="PB102",
                hint=(
                    f"add a region read/write or an affine where-clause "
                    f"that bounds {var!r} on both sides"
                ),
            )
        return Interval(self.lo, self.hi)


def _analyze_rule(transform: TransformIR, rule: RuleIR) -> None:
    assumptions = transform.assumptions
    bounds: Dict[str, _Bounds] = {var: _Bounds() for var in rule.rule_vars}
    guards: List[Affine] = []
    # Source position of the constraint currently being folded, so errors
    # raised inside add_ge_zero point at the offending binding/clause.
    pos = (rule.line, rule.column)

    def add_ge_zero(expr: Affine, strict: bool = False) -> None:
        """Record constraint expr >= 0 (or > 0), splitting by rule vars."""
        if strict:
            # Integer-valued variables make expr a multiple of 1/L, so
            # e > 0  <=>  e >= 1/L  <=>  e - 1/L >= 0 (exact; the old
            # "e - 1" form over-tightened fractional expressions).
            expr = expr - Fraction(1, expr.denominator_lcm())
        rule_var_list = [v for v in expr.variables() if v in bounds]
        if not rule_var_list:
            if expr.always_ge(0, assumptions):
                return  # trivially satisfied
            if expr.always_lt(0, assumptions):
                raise CompileError(
                    f"{transform.name} {rule.label}: constraint "
                    f"{expr} >= 0 is never satisfiable",
                    line=pos[0],
                    column=pos[1],
                    code="PB401",
                    hint=(
                        "the rule can never apply; fix the region bounds "
                        "or where-clause, or delete the rule"
                    ),
                )
            guards.append(expr)
            return
        if len(rule_var_list) > 1:
            # Couple multiple rule variables: keep as residual predicate.
            residual.append(_ge_zero_node(expr))
            return
        var = rule_var_list[0]
        coeff = expr.coefficient(var)
        rest = expr - Affine(0, {var: coeff})
        bound = (-rest) / coeff
        if coeff > 0:
            bounds[var].add_lower(_ceil_for_integers(bound), assumptions)
        else:
            # var <= bound over integers is var < bound + 1/L where L is
            # the LCM of bound's denominators: concrete evaluation rounds
            # the half-open hi with ceil, and ceil(bound + 1/L) is exactly
            # floor(bound) + 1.  (The previous flat +1 shift admitted one
            # extra instance whenever bound evaluated to a non-integer —
            # an out-of-bounds read at even sizes for strides like 2*i.)
            bounds[var].add_upper(
                bound + Fraction(1, bound.denominator_lcm()), assumptions
            )

    residual: List[ast.ExprNode] = []

    # 1. Every region must fit inside its matrix: 0 <= lo, hi <= size,
    #    and lo <= hi for region bindings.
    for region in rule.to_regions + rule.from_regions:
        mat = transform.matrices[region.matrix]
        pos = (region.line or rule.line, region.column or rule.column)
        for dim, interval in enumerate(region.box.intervals):
            size = mat.dims[dim]
            add_ge_zero(interval.lo)
            add_ge_zero(size - interval.hi)
            if region.view_kind == "region":
                add_ge_zero(interval.hi - interval.lo)

    # 2. where clauses: affine single-variable conditions tighten bounds,
    #    everything else is residual.
    for index, condition in enumerate(rule.where):
        pos = rule.where_position(index) or (rule.line, rule.column)
        folded = _fold_where(condition, add_ge_zero)
        if not folded:
            residual.append(condition)
    pos = (rule.line, rule.column)

    # 3. Materialize per-variable intervals.
    for var in rule.rule_vars:
        rule.var_bounds[var] = bounds[var].interval(var, rule.line, rule.column)
    rule.size_guards = tuple(guards)
    rule.residual_where = tuple(residual)

    # 4. Applicable matrix regions: image of the variable box under each
    #    to-binding, per output matrix (bounding box across bindings).
    applicable: Dict[str, Box] = {}
    for region in rule.to_regions:
        image = _image_box(region.box, rule.var_bounds, transform, rule)
        if region.matrix in applicable:
            applicable[region.matrix] = _bounding_box(
                applicable[region.matrix], image, assumptions
            )
        else:
            applicable[region.matrix] = image
    rule.applicable = applicable


def _ceil_for_integers(bound: Affine) -> Affine:
    """Lower bounds from division keep exact rational form; concrete
    evaluation rounds with ceil (Interval.concrete), so no rewrite is
    needed — kept as a named hook for clarity."""
    return bound


def _ge_zero_node(expr: Affine) -> ast.ExprNode:
    """Rebuild ``expr >= 0`` as an AST predicate for runtime filtering."""
    node: ast.ExprNode = ast.Num(int(expr.constant)) if expr.constant.denominator == 1 else ast.Num(float(expr.constant))
    for var, coeff in expr.coefficients.items():
        if coeff.denominator == 1:
            term: ast.ExprNode = ast.BinOp("*", ast.Num(int(coeff)), ast.Var(var))
        else:
            term = ast.BinOp(
                "/",
                ast.BinOp("*", ast.Num(coeff.numerator), ast.Var(var)),
                ast.Num(coeff.denominator),
            )
        node = ast.BinOp("+", node, term)
    return ast.BinOp(">=", node, ast.Num(0))


def _fold_where(condition: ast.ExprNode, add_ge_zero) -> bool:
    """Try to fold an affine comparison into variable bounds.

    Returns True when fully folded; False leaves it residual.
    """
    if not isinstance(condition, ast.BinOp):
        return False
    if condition.op not in ("<", "<=", ">", ">=", "=="):
        return False
    try:
        lhs = condition.left.to_affine()
        rhs = condition.right.to_affine()
    except ValueError:
        return False
    try:
        if condition.op == "<":
            add_ge_zero(rhs - lhs, strict=True)
        elif condition.op == "<=":
            add_ge_zero(rhs - lhs)
        elif condition.op == ">":
            add_ge_zero(lhs - rhs, strict=True)
        elif condition.op == ">=":
            add_ge_zero(lhs - rhs)
        else:  # ==
            add_ge_zero(lhs - rhs)
            add_ge_zero(rhs - lhs)
    except SymbolicCompareError:
        return False
    return True


def _image_box(
    box: Box,
    var_bounds: Dict[str, Interval],
    transform: TransformIR,
    rule: RuleIR,
) -> Box:
    """Image of a to-binding box as rule variables sweep their bounds.

    Each bound expression may reference at most one rule variable and its
    coefficient must be ±1 (unit stride) so that the swept union stays a
    contiguous interval; the paper's programs satisfy this, anything else
    is rejected.
    """
    intervals: List[Interval] = []
    for interval in box.intervals:
        lo = _sweep(interval.lo, var_bounds, transform, rule, is_upper=False)
        hi = _sweep(interval.hi, var_bounds, transform, rule, is_upper=True)
        intervals.append(Interval(lo, hi))
    return Box(intervals)


def _sweep(
    expr: Affine,
    var_bounds: Dict[str, Interval],
    transform: TransformIR,
    rule: RuleIR,
    is_upper: bool,
) -> Affine:
    swept = expr
    for var in expr.variables():
        if var not in var_bounds:
            continue  # a size variable
        coeff = swept.coefficient(var)
        if abs(coeff) != 1:
            raise CompileError(
                f"{transform.name} {rule.label}: output coordinate {expr} "
                f"has non-unit stride in {var!r}"
            )
        vb = var_bounds[var]
        increasing = coeff > 0
        # For the union's lower bound take the minimizing end of var's
        # range; for the upper bound the maximizing end.  The variable
        # interval is half-open, so its maximum value is hi - 1.
        if is_upper == increasing:
            swept = swept.subs({var: vb.hi - 1})
        else:
            swept = swept.subs({var: vb.lo})
    return swept


def _bounding_box(a: Box, b: Box, assumptions: Assumptions) -> Box:
    intervals = []
    for iv_a, iv_b in zip(a.intervals, b.intervals):
        intervals.append(
            Interval(
                _symbolic_min(iv_a.lo, iv_b.lo, assumptions),
                _symbolic_max(iv_a.hi, iv_b.hi, assumptions),
            )
        )
    return Box(intervals)
