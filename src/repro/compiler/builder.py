"""Programmatic frontend: build transforms from Python.

The :class:`TransformBuilder` mirrors the DSL one-to-one — the same IR
and every compiler pass downstream are shared — but rule bodies may be
*native* Python callables operating on numpy-backed region views.  This
is the production path for the benchmark applications (per-cell DSL
interpretation is orders of magnitude too slow for realistic sizes; the
original had the same split between PetaBricks code and embedded C++).

Region specifications are ``(matrix, accessor, *coordinates)`` tuples
with coordinates given as affine strings, e.g.::

    b = TransformBuilder("RollingSum")
    b.input("A", "n")
    b.output("B", "n")
    b.rule(to=[("B", "cell", "i", "b")],
           from_=[("A", "region", "0", "i", "in")],
           body="b = sum(in);")
    b.rule(to=[("B", "cell", "i", "b")],
           from_=[("A", "cell", "i", "a"), ("B", "cell", "i-1", "leftSum")],
           body="b = a + leftSum;")
    program = b.build()

The last element of a spec tuple is the binding name when it parses as a
bare identifier distinct from the coordinate count; otherwise the matrix
name is used.

Native bodies receive a :class:`NativeContext`::

    def quick_sort(ctx):
        data = ctx["in"].to_numpy()
        ...
        ctx.charge(work)
        ctx.call("Sort", left_view, out=left_out)
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.language import ast_nodes as ast
from repro.language.errors import CompileError
from repro.language.parser import parse_expression, parse_rule_body

from repro.compiler.ir import (
    NativeBody,
    ProgramIR,
    TransformIR,
    _build_transform,
)

RegionSpec = Sequence[str]


class TransformBuilder:
    """Declarative construction of one transform (see module docstring)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._from: List[ast.MatrixDecl] = []
        self._to: List[ast.MatrixDecl] = []
        self._through: List[ast.MatrixDecl] = []
        self._tunables: List[ast.TunableDecl] = []
        self._generator: Optional[str] = None
        self._rules: List[ast.RuleDecl] = []
        self._native_bodies: Dict[int, NativeBody] = {}
        self._base_work: Dict[int, float] = {}
        self._recursive_flags: Dict[int, bool] = {}

    # -- header ------------------------------------------------------------

    def input(self, name: str, *dims: str) -> "TransformBuilder":
        self._from.append(_matrix_decl(name, dims))
        return self

    def output(self, name: str, *dims: str) -> "TransformBuilder":
        self._to.append(_matrix_decl(name, dims))
        return self

    def through(self, name: str, *dims: str) -> "TransformBuilder":
        self._through.append(_matrix_decl(name, dims))
        return self

    def tunable(
        self, name: str, lo: int = 1, hi: int = 2**20, default: Optional[int] = None
    ) -> "TransformBuilder":
        self._tunables.append(ast.TunableDecl(name, lo, hi, default))
        return self

    def generator(self, name: str) -> "TransformBuilder":
        self._generator = name
        return self

    # -- rules ---------------------------------------------------------------

    def rule(
        self,
        to: Sequence[RegionSpec],
        from_: Sequence[RegionSpec] = (),
        body: Union[str, NativeBody, None] = None,
        where: Sequence[str] = (),
        priority: int = 1,
        label: str = "",
        work: float = 1.0,
        recursive: Optional[bool] = None,
    ) -> "TransformBuilder":
        """Add a rule.

        ``body`` is either DSL statement text or a Python callable taking
        a :class:`NativeContext`.  ``work`` is the base work charged per
        application before body accounting (native bodies usually charge
        explicitly instead).
        """
        index = len(self._rules)
        statements: Tuple[ast.Assign, ...] = ()
        native: Optional[NativeBody] = None
        if isinstance(body, str):
            statements = parse_rule_body(body)
        elif callable(body):
            native = body
        elif body is not None:
            raise TypeError("body must be DSL text or a callable")
        decl = ast.RuleDecl(
            to_bindings=tuple(_region_bind(spec) for spec in to),
            from_bindings=tuple(_region_bind(spec) for spec in from_),
            body=statements,
            where=tuple(ast.WhereClause(parse_expression(w)) for w in where),
            priority=priority,
            label=label or f"rule{index}",
        )
        self._rules.append(decl)
        if native is not None:
            self._native_bodies[index] = native
        self._base_work[index] = work
        if recursive is not None:
            self._recursive_flags[index] = recursive
        return self

    # -- output ----------------------------------------------------------------

    def build(self) -> TransformIR:
        """Lower to IR (semantic analysis included)."""
        if not self._to:
            raise CompileError(f"transform {self.name} declares no outputs")
        if not self._rules:
            raise CompileError(f"transform {self.name} has no rules")
        decl = ast.TransformDecl(
            name=self.name,
            to_matrices=tuple(self._to),
            from_matrices=tuple(self._from),
            through_matrices=tuple(self._through),
            rules=tuple(self._rules),
            tunables=tuple(self._tunables),
            generator=self._generator,
        )
        transform = _build_transform(decl)
        for index, native in self._native_bodies.items():
            transform.rules[index].native_body = native
        for index, work in self._base_work.items():
            transform.rules[index].base_work = work
        for index, flag in self._recursive_flags.items():
            transform.rules[index].is_recursive = flag
        return transform


def _matrix_decl(name: str, dims: Sequence[str]) -> ast.MatrixDecl:
    return ast.MatrixDecl(
        name=name,
        dims=tuple(_coord_expr(d) for d in dims),
    )


def _coord_expr(text: str) -> ast.ExprNode:
    return parse_expression(str(text))


_ARITY = {"cell": None, "region": None, "row": 1, "column": 1, "all": 0}


def _region_bind(spec: RegionSpec) -> ast.RegionBind:
    """Convert ``(matrix, accessor, *coords[, name])`` to a RegionBind.

    The final element is treated as the binding name when it is a bare
    identifier and the accessor's coordinate arity allows it; otherwise
    the matrix name doubles as the binding name.
    """
    spec = [str(part) for part in spec]
    if len(spec) < 2:
        raise CompileError(f"region spec too short: {spec}")
    matrix, accessor, *rest = spec
    if accessor not in ("cell", "region", "row", "column", "all"):
        raise CompileError(f"unknown accessor {accessor!r} in region spec")
    name = matrix
    coords = rest
    if accessor == "all":
        if rest:
            name = rest[-1]
            coords = rest[:-1]
        if coords:
            raise CompileError("'all' accessor takes no coordinates")
    elif accessor in ("row", "column"):
        if len(rest) == 2:
            name = rest[-1]
            coords = rest[:-1]
        elif len(rest) != 1:
            raise CompileError(f"{accessor} takes one coordinate: {spec}")
    else:
        # cell/region: an explicit binding name is required (last element)
        if len(rest) < 2:
            raise CompileError(
                f"{accessor} spec needs coordinates plus a binding name: {spec}"
            )
        name = rest[-1]
        coords = rest[:-1]
    return ast.RegionBind(
        matrix=matrix,
        accessor=accessor,
        args=tuple(parse_expression(c) for c in coords),
        name=name,
    )


def program_from_transforms(transforms: Sequence[TransformIR]) -> ProgramIR:
    """Bundle built transforms into a program IR."""
    table: Dict[str, TransformIR] = {}
    for transform in transforms:
        if transform.name in table:
            raise CompileError(f"duplicate transform {transform.name!r}")
        table[transform.name] = transform
    return ProgramIR(table)


# NativeContext lives in codegen (it needs the execution engine); it is
# re-exported here because builder users reference it in body signatures.
from repro.compiler.codegen import NativeContext  # noqa: E402

__all__ = ["TransformBuilder", "NativeContext", "program_from_transforms"]
