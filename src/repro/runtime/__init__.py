"""PetaBricks runtime: matrices, tasks, scheduling, and machines.

The runtime owns everything that happens after compilation:

* :mod:`repro.runtime.matrix` — n-dimensional matrix storage and the
  region views (``cell``/``region``/``row``/``column``) that rule bodies
  receive.
* :mod:`repro.runtime.task` — the task abstraction produced by generated
  code: work units, dependency edges, and the spawn tree.
* :mod:`repro.runtime.scheduler` — a Cilk-style work-stealing scheduler
  (per-worker deques, THE protocol, random victim selection) run as a
  deterministic discrete-event simulation over recorded task graphs.
* :mod:`repro.runtime.machine` — architecture profiles (core count,
  relative cycle cost, spawn/steal overheads) standing in for the paper's
  Mobile / Xeon / Niagara testbeds.
* :mod:`repro.runtime.batchqueue` — the deterministic bucket queue the
  batch execution engine (:mod:`repro.batch`) drains.
"""

from repro.runtime.batchqueue import BucketQueue
from repro.runtime.machine import MACHINES, Machine
from repro.runtime.matrix import Matrix, MatrixView
from repro.runtime.scheduler import ScheduleResult, WorkStealingScheduler
from repro.runtime.task import Task, TaskGraph, TaskRecorder

__all__ = [
    "MACHINES",
    "Machine",
    "BucketQueue",
    "Matrix",
    "MatrixView",
    "ScheduleResult",
    "Task",
    "TaskGraph",
    "TaskRecorder",
    "WorkStealingScheduler",
]
