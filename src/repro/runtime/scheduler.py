"""Work-stealing scheduler, run as a deterministic discrete-event simulation.

Faithful to the runtime described in paper §3.2/§3.4:

* one deque per worker; the owner treats the top as a stack (push/pop
  newest — depth-first order, maximizing locality),
* an idle worker selects a random victim and steals the *oldest* task
  from the bottom of the victim's deque (stealing the outermost
  continuation, Cilk-style THE protocol),
* a task becomes schedulable only when its spawner has finished and all
  of its dependency edges are satisfied; the worker that satisfies the
  last dependency pushes the task onto its own deque (no barriers),
* spawning costs ``machine.spawn_time`` per child (paid by the spawner)
  and each successful steal costs ``machine.steal_time``; the purely
  sequential code path pays neither.

Because CPython cannot exhibit real multicore speedup, the scheduler runs
over *recorded* task graphs (see :mod:`repro.runtime.task`) in simulated
time.  The simulation is event-driven and fully deterministic given the
RNG seed, so autotuning decisions are reproducible.
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Set

from repro.runtime.machine import Machine
from repro.runtime.task import TaskGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (observe -> runtime)
    from repro.observe.trace import TraceSink


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of simulating a task graph on a machine.

    Attributes:
        makespan: simulated parallel completion time.
        sequential_time: time the pure sequential code path would take
            (total work x cycle_time, zero scheduling overhead).
        total_work: sum of task work units.
        critical_path: span (T_inf) in simulated time units.
        steals: number of successful steals.
        tasks: number of scheduled tasks.
        workers: worker count used.
    """

    makespan: float
    sequential_time: float
    total_work: float
    critical_path: float
    steals: int
    tasks: int
    workers: int

    @property
    def speedup(self) -> float:
        """Sequential time over parallel makespan."""
        if self.makespan == 0:
            return 1.0
        return self.sequential_time / self.makespan

    @property
    def utilization(self) -> float:
        """Fraction of worker-time spent on useful work."""
        if self.makespan == 0:
            return 1.0
        return self.sequential_time / (self.makespan * self.workers)


class WorkStealingScheduler:
    """Simulates the PetaBricks dynamic scheduler on a :class:`Machine`."""

    def __init__(
        self,
        machine: Machine,
        seed: int = 0x5eed,
        sink: Optional["TraceSink"] = None,
    ) -> None:
        self.machine = machine
        self.seed = seed
        #: optional observability sink (see :mod:`repro.observe.trace`);
        #: when None the simulation pays only an ``is None`` test per event
        #: site, so tracing is zero-cost unless requested.
        self.sink = sink

    def run(
        self,
        graph: TaskGraph,
        workers: Optional[int] = None,
        sink: Optional["TraceSink"] = None,
    ) -> ScheduleResult:
        """Simulate ``graph`` on ``workers`` cores (default: all cores).

        ``sink`` overrides the scheduler's own sink for this run.
        Tracing never perturbs the schedule: the event stream is derived
        from the same deterministic simulation, so results with and
        without a sink are identical.
        """
        machine = self.machine
        trace = sink if sink is not None else self.sink
        worker_count = machine.cores if workers is None else workers
        if worker_count < 1:
            raise ValueError("need at least one worker")

        tasks = graph.tasks
        sequential_time = machine.compute_time(graph.total_work())
        if not tasks:
            return ScheduleResult(
                makespan=0.0,
                sequential_time=0.0,
                total_work=0.0,
                critical_path=0.0,
                steals=0,
                tasks=0,
                workers=worker_count,
            )

        rng = random.Random(self.seed)
        pending_deps: Dict[int, int] = {}
        parent_pending: Set[int] = set()
        dependents: Dict[int, List[int]] = {}
        for task in tasks:
            pending_deps[task.tid] = len(task.deps)
            for dep in task.deps:
                dependents.setdefault(dep, []).append(task.tid)
            if task.parent is not None:
                parent_pending.add(task.tid)

        deques: List[Deque[int]] = [deque() for _ in range(worker_count)]
        worker_free_at = [0.0] * worker_count
        idle: Set[int] = set(range(worker_count))
        done: Set[int] = set()
        steals = 0
        makespan = 0.0
        # Per-worker idle/busy state mirrored for transition events only.
        was_idle = [True] * worker_count if trace is not None else None

        if trace is not None:
            trace.count("scheduler.runs")
            trace.emit(
                "run_begin",
                t=0.0,
                machine=machine.name,
                workers=worker_count,
                tasks=len(tasks),
                total_work=graph.total_work(),
            )

        # Event heap of (time, sequence, worker, task) completions.
        events: List = []
        seq = 0

        def enabled(tid: int) -> bool:
            return pending_deps[tid] == 0 and tid not in parent_pending

        def push(worker: int, tid: int, now: float = 0.0) -> None:
            deques[worker].append(tid)
            if trace is not None:
                trace.count("scheduler.pushes")
                trace.observe("scheduler.deque_depth", len(deques[worker]))
                trace.emit(
                    "spawn",
                    t=now,
                    worker=worker,
                    task=tid,
                    depth=len(deques[worker]),
                )

        def start(worker: int, tid: int, now: float) -> None:
            nonlocal seq
            task = tasks[tid]
            duration = machine.compute_time(task.work)
            duration += task.spawns * machine.spawn_time
            finish = now + duration
            worker_free_at[worker] = finish
            idle.discard(worker)
            seq += 1
            heapq.heappush(events, (finish, seq, worker, tid))
            if trace is not None:
                if was_idle[worker]:
                    was_idle[worker] = False
                    trace.emit("busy", t=now, worker=worker)
                trace.count("scheduler.tasks_started")
                trace.observe("scheduler.task_duration", duration)
                trace.emit(
                    "task_start",
                    t=now,
                    worker=worker,
                    task=tid,
                    label=task.label,
                )

        def try_dispatch(worker: int, now: float) -> bool:
            """Give an idle worker something to run; True on success."""
            nonlocal steals
            if deques[worker]:
                start(worker, deques[worker].pop(), now)  # LIFO: own top
                return True
            victims = [
                w for w in range(worker_count) if w != worker and deques[w]
            ]
            if not victims:
                return False
            victim = rng.choice(victims)
            stolen = deques[victim].popleft()  # FIFO end: oldest task
            steals += 1
            if trace is not None:
                trace.count("scheduler.steals")
                trace.emit(
                    "steal", t=now, thief=worker, victim=victim, task=stolen
                )
            start(worker, stolen, now + machine.steal_time)
            return True

        def mark_idle_transitions(now: float) -> None:
            """Emit idle events for workers that failed to find work."""
            for worker in idle:
                if not was_idle[worker]:
                    was_idle[worker] = True
                    trace.emit("idle", t=now, worker=worker)

        # Seed: enabled roots start on worker 0's deque (the main thread
        # creates the initial tasks).
        for task in tasks:
            if task.parent is None and pending_deps[task.tid] == 0:
                push(0, task.tid)
        for worker in sorted(idle):
            try_dispatch(worker, 0.0)

        while events:
            now, _, worker, tid = heapq.heappop(events)
            makespan = max(makespan, now)
            done.add(tid)
            if trace is not None:
                trace.count("scheduler.tasks_finished")
                trace.emit("task_finish", t=now, worker=worker, task=tid)

            # Children become spawnable once the parent finishes; newly
            # enabled tasks go on this worker's deque.  Reverse order puts
            # the first spawn on top so the owner executes depth-first in
            # program order.
            newly_ready: List[int] = []
            for child in graph.children_of(tid):
                parent_pending.discard(child)
                if enabled(child):
                    newly_ready.append(child)
            for dependent in dependents.get(tid, ()):
                pending_deps[dependent] -= 1
                if enabled(dependent):
                    newly_ready.append(dependent)
            for ready in reversed(newly_ready):
                push(worker, ready, now)

            idle.add(worker)
            # Wake idle workers (including this one): any that can take or
            # steal a task does so at the current time.  sorted() snapshots
            # the set; try_dispatch removes workers it occupies.
            for candidate in sorted(idle):
                if candidate in idle:
                    try_dispatch(candidate, now)
            if trace is not None:
                mark_idle_transitions(now)

        if len(done) != len(tasks):
            raise RuntimeError(
                f"schedule deadlock: {len(tasks) - len(done)} tasks never ran"
            )

        if trace is not None:
            trace.emit(
                "run_end", t=makespan, makespan=makespan, steals=steals,
                tasks=len(done),
            )

        return ScheduleResult(
            makespan=makespan,
            sequential_time=sequential_time,
            total_work=graph.total_work(),
            critical_path=machine.compute_time(graph.critical_path()),
            steals=steals,
            tasks=len(tasks),
            workers=worker_count,
        )
