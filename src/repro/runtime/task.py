"""Tasks, task graphs, and the recorder used by generated code.

The generated (dynamic-mode) code of a PetaBricks program does not execute
work directly: it creates *tasks* with dependency edges and feeds them to
the work-stealing scheduler (paper §3.2).  In this reproduction the
program logic executes eagerly in a valid sequential order for
*correctness*, while a :class:`TaskRecorder` captures the task graph the
generated code would have produced — every spawned task, its abstract work,
its dependency edges, and the spawn tree.  The scheduler
(:mod:`repro.runtime.scheduler`) then replays that graph on a simulated
machine to obtain parallel timings.

A task below the sequential cutoff is *inlined*: its work is charged to
the task that would have spawned it and no scheduling overhead is paid.
This models the paper's dual sequential/dynamic code versions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (observe -> runtime)
    from repro.observe.trace import TraceSink


@dataclass
class Task:
    """One schedulable unit of work.

    Attributes:
        tid: dense integer id (spawn order).
        work: abstract work units executed by the task body (inlined
            descendants included).
        deps: ids of tasks that must complete before this one may run.
        parent: id of the spawning task (None for roots).
        label: diagnostic tag (rule name, region, ...).
        spawns: number of child tasks this task pushed (each costs
            ``machine.spawn_time`` at simulation).
    """

    tid: int
    work: float = 0.0
    deps: Tuple[int, ...] = ()
    parent: Optional[int] = None
    label: str = ""
    spawns: int = 0


class TaskGraph:
    """An immutable DAG of tasks plus the spawn tree."""

    def __init__(self, tasks: Sequence[Task]) -> None:
        self.tasks: Tuple[Task, ...] = tuple(tasks)
        self._children: Dict[int, List[int]] = {}
        for task in self.tasks:
            if task.parent is not None:
                self._children.setdefault(task.parent, []).append(task.tid)

    def __len__(self) -> int:
        return len(self.tasks)

    def children_of(self, tid: int) -> Tuple[int, ...]:
        return tuple(self._children.get(tid, ()))

    def total_work(self) -> float:
        """Sum of all task work: the sequential execution time in work
        units (no scheduling overhead)."""
        return sum(task.work for task in self.tasks)

    def critical_path(self) -> float:
        """Longest work-weighted path through dependency + spawn edges:
        the span (T_inf) of the computation."""
        finish: Dict[int, float] = {}
        for task in self.tasks:  # tasks are recorded in topological order
            start = 0.0
            for dep in task.deps:
                start = max(start, finish.get(dep, 0.0))
            if task.parent is not None:
                # a child cannot start before its spawner has started;
                # approximate with the parent's start (parent work may
                # continue after the spawn).
                parent = self.tasks[task.parent]
                parent_start = finish.get(parent.tid, parent.work) - parent.work
                start = max(start, parent_start)
            finish[task.tid] = start + task.work
        return max(finish.values(), default=0.0)

    def validate(self) -> None:
        """Check topological recording order and edge sanity."""
        seen = set()
        for task in self.tasks:
            for dep in task.deps:
                if dep not in seen:
                    raise ValueError(
                        f"task {task.tid} depends on later/unknown task {dep}"
                    )
            if task.parent is not None and task.parent not in seen:
                raise ValueError(
                    f"task {task.tid} spawned by unknown task {task.parent}"
                )
            if task.work < 0:
                raise ValueError(f"task {task.tid} has negative work")
            seen.add(task.tid)


class TaskRecorder:
    """Builds a :class:`TaskGraph` while generated code runs.

    Usage from the execution engine::

        recorder = TaskRecorder()
        with recorder.task(label="root") as root:
            recorder.charge(50)                  # work in the current task
            with recorder.task(deps=[...]):      # a spawned child
                recorder.charge(500)
        graph = recorder.graph()

    ``charge`` adds work to the innermost open task.  When ``inline=True``
    (below the sequential cutoff) ``task`` does not create a node: the
    block's work accumulates into the enclosing task, modelling the
    sequential code path.
    """

    def __init__(self, sink: Optional["TraceSink"] = None) -> None:
        self._tasks: List[Task] = []
        self._stack: List[int] = []
        self._inline_depth = 0
        #: optional observability sink; None (the default) costs one
        #: ``is None`` test per recorded task and nothing else.
        self.sink = sink

    # -- recording ---------------------------------------------------------

    def charge(self, work: float) -> None:
        """Add abstract work units to the innermost open task."""
        if work < 0:
            raise ValueError("work must be non-negative")
        if not self._stack:
            raise RuntimeError("charge() outside any open task")
        self._tasks[self._stack[-1]].work += work
        if self.sink is not None:
            self.sink.count("recorder.work_charged", int(work))

    def task(
        self,
        deps: Iterable[int] = (),
        label: str = "",
        inline: bool = False,
    ) -> "_TaskContext":
        """Open a task scope (a context manager yielding the task id).

        ``deps`` are ids of previously closed tasks.  With ``inline=True``
        no node is created and the scope's work folds into the parent.
        """
        return _TaskContext(self, tuple(deps), label, inline)

    def current_task(self) -> Optional[int]:
        return self._stack[-1] if self._stack else None

    # -- internals used by _TaskContext -------------------------------------

    def _open(self, deps: Tuple[int, ...], label: str) -> int:
        tid = len(self._tasks)
        parent = self._stack[-1] if self._stack else None
        self._tasks.append(Task(tid=tid, deps=deps, parent=parent, label=label))
        if parent is not None:
            self._tasks[parent].spawns += 1
        self._stack.append(tid)
        if self.sink is not None:
            self.sink.count("recorder.tasks")
            self.sink.emit(
                "task_recorded",
                task=tid,
                parent=parent,
                deps=len(deps),
                label=label,
            )
        return tid

    def _close(self, tid: int) -> None:
        if not self._stack or self._stack[-1] != tid:
            raise RuntimeError("task scopes closed out of order")
        self._stack.pop()

    # -- output ------------------------------------------------------------

    def graph(self) -> TaskGraph:
        """The recorded task graph (recorder must be fully unwound)."""
        if self._stack:
            raise RuntimeError("graph() called with open task scopes")
        graph = TaskGraph(self._tasks)
        graph.validate()
        return graph


class _TaskContext:
    """Context manager for one task scope (see :meth:`TaskRecorder.task`)."""

    __slots__ = ("_recorder", "_deps", "_label", "_inline", "tid")

    def __init__(
        self,
        recorder: TaskRecorder,
        deps: Tuple[int, ...],
        label: str,
        inline: bool,
    ) -> None:
        self._recorder = recorder
        self._deps = deps
        self._label = label
        # Inline when requested, or when nested inside an inlined scope
        # with no recorder stack to attach to: once sequential, everything
        # below stays sequential (paper §3.2).
        self._inline = inline
        self.tid: Optional[int] = None

    def __enter__(self) -> Optional[int]:
        recorder = self._recorder
        if self._inline and recorder._stack:
            recorder._inline_depth += 1
            if recorder.sink is not None:
                recorder.sink.count("recorder.inlined")
            return recorder._stack[-1]
        if self._inline and not recorder._stack:
            # Nothing to inline into: promote to a real root task.
            self._inline = False
        self.tid = recorder._open(self._deps, self._label)
        return self.tid

    def __exit__(self, exc_type, exc, tb) -> None:
        recorder = self._recorder
        if self._inline:
            recorder._inline_depth -= 1
            return
        assert self.tid is not None
        recorder._close(self.tid)
