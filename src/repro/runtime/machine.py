"""Architecture profiles — the simulated stand-ins for the paper's testbeds.

The paper evaluates on three machines (Table 2):

* ``Mobile``   — Intel Core 2 Duo Mobile, 1.6 GHz, 2 cores
* ``Xeon 1-way`` / ``Xeon 8-way`` — Intel Xeon E7340, 2.4 GHz, 2x4 cores
* ``Niagara``  — Sun Fire T200, 1.2 GHz, 8 hardware threads

Real multicore timing is unavailable here (CPython's GIL serializes
threads), so each machine is modelled by a :class:`Machine` cost profile:
how long one abstract work unit takes on one core (``cycle_time``), how
many cores exist, and the fixed time costs of spawning a task into the
scheduler and of one steal operation.  The *ratios* between compute speed
and scheduling overhead are what drive the paper's architecture-dependent
tuning results: the Niagara's slow cores make its relative spawn overhead
small, so fine-grained parallel algorithms win there, while the fast
Xeon cores favour coarser, less parallel compositions — exactly the
qualitative story of Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Machine:
    """A simulated architecture.

    Attributes:
        name: human-readable identifier.
        cores: number of worker threads available.
        cycle_time: simulated seconds per abstract work unit on one core.
        spawn_time: fixed cost, paid by the spawning worker, to package a
            task and push it on the deque (the paper's "dynamic scheduling
            overhead").
        steal_time: fixed cost for one successful steal (includes the THE
            protocol handshake and cache migration).
        memory_time: additional per-work-unit cost applied to
            memory-bound work (used by apps that distinguish compute- vs
            memory-bound rules; 0 folds it into cycle_time).
    """

    name: str
    cores: int
    cycle_time: float
    spawn_time: float
    steal_time: float
    memory_time: float = 0.0

    def with_cores(self, cores: int) -> "Machine":
        """The same silicon restricted to ``cores`` workers (e.g. the
        paper's Xeon 1-way vs Xeon 8-way)."""
        return Machine(
            name=f"{self.name}-{cores}way",
            cores=cores,
            cycle_time=self.cycle_time,
            spawn_time=self.spawn_time,
            steal_time=self.steal_time,
            memory_time=self.memory_time,
        )

    def compute_time(self, work: float) -> float:
        """Simulated time to execute ``work`` units on one core."""
        return work * self.cycle_time


def _build_default_machines() -> Dict[str, Machine]:
    # cycle_time is normalized so the Xeon core == 1.0 time units per work
    # unit.  Clock ratios follow the paper's hardware table; overheads are
    # chosen so that spawn costs are worth roughly a few hundred work units
    # on the Intel parts (matching the cutoffs the paper reports, e.g.
    # sequential cutoffs in the hundreds of elements).
    xeon8 = Machine(
        name="xeon8", cores=8, cycle_time=1.0, spawn_time=150.0, steal_time=600.0
    )
    xeon1 = Machine(
        name="xeon1", cores=1, cycle_time=1.0, spawn_time=150.0, steal_time=600.0
    )
    mobile = Machine(
        name="mobile", cores=2, cycle_time=1.5, spawn_time=200.0, steal_time=700.0
    )
    # Niagara: ~2x slower clock and far lower IPC per thread (in-order,
    # shared FPU); relative scheduling overhead is small, which is what
    # made the paper's Niagara configs exclusively recursive/parallel.
    niagara = Machine(
        name="niagara", cores=8, cycle_time=6.0, spawn_time=120.0, steal_time=350.0
    )
    return {m.name: m for m in (xeon8, xeon1, mobile, niagara)}


#: The four architecture profiles used throughout the benchmark suite.
MACHINES: Dict[str, Machine] = _build_default_machines()
