"""Matrix storage and region views.

PetaBricks matrices are dense n-dimensional arrays addressed with the
coordinate convention of the paper: for a 2-D matrix ``A[w, h]`` the first
coordinate is the column index ``x`` and the second the row index ``y``,
so ``A.cell(x, y)``, ``A.row(y)`` (a 1-D slice across ``x``) and
``A.column(x)`` (a 1-D slice across ``y``).

:class:`Matrix` owns a numpy buffer; :class:`MatrixView` is a window into
a matrix (or into another view) through which rule bodies read inputs and
write outputs.  Views share storage, so writes through a view are visible
everywhere — exactly the aliasing model of the original runtime.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

Index = Union[int, Sequence[int]]


class Matrix:
    """Dense n-dimensional matrix backed by a numpy array.

    ``Matrix.zeros((w, h))`` allocates storage; ``Matrix.from_array`` wraps
    an existing array (sharing its buffer).  A 0-dimensional matrix holds a
    single scalar value.
    """

    __slots__ = ("data", "name")

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        self.data = data
        self.name = name

    # -- constructors ------------------------------------------------------

    @staticmethod
    def zeros(shape: Sequence[int], name: str = "", dtype=np.float64) -> "Matrix":
        return Matrix(np.zeros(tuple(shape), dtype=dtype), name)

    @staticmethod
    def from_array(array, name: str = "") -> "Matrix":
        return Matrix(np.asarray(array, dtype=np.float64), name)

    @staticmethod
    def scalar(value: float = 0.0, name: str = "") -> "Matrix":
        return Matrix(np.array(value, dtype=np.float64), name)

    # -- geometry ----------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def whole(self) -> "MatrixView":
        """A view covering the entire matrix."""
        return MatrixView(
            self.data,
            tuple((0, extent) for extent in self.data.shape),
            self.name,
        )

    # The region API mirrors MatrixView's; delegate through a whole-view.

    def cell(self, *coords: int) -> "MatrixView":
        return self.whole().cell(*coords)

    def region(self, *bounds: int) -> "MatrixView":
        return self.whole().region(*bounds)

    def row(self, y: int) -> "MatrixView":
        return self.whole().row(y)

    def column(self, x: int) -> "MatrixView":
        return self.whole().column(x)

    def __repr__(self) -> str:
        label = self.name or "Matrix"
        return f"<{label} shape={self.shape}>"


class MatrixView:
    """A rectangular window into matrix storage.

    A view of ``k`` dimensions supports:

    * ``cell(*coords)`` — a 0-D view of one element (``.value`` to read,
      ``.set(v)`` to write),
    * ``region(lo_0, .., lo_{k-1}, hi_0, .., hi_{k-1})`` — PetaBricks
      region syntax: the first ``k`` arguments are the low corner, the
      last ``k`` the (exclusive) high corner — for 2-D,
      ``region(x1, y1, x2, y2)``,
    * ``row(y)`` / ``column(x)`` — 1-D slices of a 2-D view,
    * numpy interop via ``to_numpy()`` / ``assign()``.

    Coordinates are always *view-relative*; the view applies its own
    offsets, so recursive rules never see absolute indices.
    """

    __slots__ = ("_data", "_bounds", "name", "_window")

    def __init__(
        self,
        data: np.ndarray,
        bounds: Tuple[Tuple[int, int], ...],
        name: str = "",
    ) -> None:
        if len(bounds) != data.ndim:
            raise ValueError(
                f"bounds arity {len(bounds)} != array ndim {data.ndim}"
            )
        for axis, (lo, hi) in enumerate(bounds):
            if not (0 <= lo <= hi <= data.shape[axis]):
                raise IndexError(
                    f"bounds {bounds} out of range for shape {data.shape}"
                )
        self._data = data
        self._bounds = bounds
        self.name = name
        self._window: np.ndarray = None  # lazily built by to_numpy()

    # -- geometry ----------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(hi - lo for lo, hi in self._bounds)

    @property
    def ndim(self) -> int:
        return len(self._bounds)

    @property
    def size(self) -> int:
        total = 1
        for extent in self.shape:
            total *= extent
        return total

    def _axis_slice(self) -> Tuple[slice, ...]:
        return tuple(slice(lo, hi) for lo, hi in self._bounds)

    # -- sub-views -----------------------------------------------------------

    def cell(self, *coords: int) -> "MatrixView":
        """A 0-D view of the single element at view-relative ``coords``."""
        if len(coords) != self.ndim:
            raise ValueError(
                f"cell() takes {self.ndim} coordinates, got {len(coords)}"
            )
        bounds = []
        for axis, c in enumerate(coords):
            lo, hi = self._bounds[axis]
            absolute = lo + int(c)
            if not (lo <= absolute < hi):
                raise IndexError(
                    f"cell{coords} outside view of shape {self.shape}"
                )
            bounds.append((absolute, absolute + 1))
        window = self._data[tuple(slice(lo, hi) for lo, hi in bounds)]
        return MatrixView(window.reshape(()), (), self.name)

    def region(self, *args: int) -> "MatrixView":
        """A sub-view ``[lo, hi)`` per axis, PetaBricks argument order."""
        k = self.ndim
        if len(args) != 2 * k:
            raise ValueError(
                f"region() takes {2 * k} bounds for a {k}-D view"
            )
        los, his = args[:k], args[k:]
        new_bounds = []
        for axis in range(k):
            base_lo, base_hi = self._bounds[axis]
            lo = base_lo + int(los[axis])
            hi = base_lo + int(his[axis])
            if not (base_lo <= lo <= hi <= base_hi):
                raise IndexError(
                    f"region{args} outside view of shape {self.shape}"
                )
            new_bounds.append((lo, hi))
        return MatrixView(self._data, tuple(new_bounds), self.name)

    def row(self, y: int) -> "MatrixView":
        """The 1-D slice with second coordinate fixed (2-D views only)."""
        if self.ndim != 2:
            raise ValueError("row() requires a 2-D view")
        (x_lo, x_hi), (y_lo, y_hi) = self._bounds
        absolute = y_lo + int(y)
        if not (y_lo <= absolute < y_hi):
            raise IndexError(f"row({y}) outside view of shape {self.shape}")
        window = self._data[x_lo:x_hi, absolute]
        return MatrixView(window, ((0, window.shape[0]),), self.name)

    def column(self, x: int) -> "MatrixView":
        """The 1-D slice with first coordinate fixed (2-D views only)."""
        if self.ndim != 2:
            raise ValueError("column() requires a 2-D view")
        (x_lo, x_hi), (y_lo, y_hi) = self._bounds
        absolute = x_lo + int(x)
        if not (x_lo <= absolute < x_hi):
            raise IndexError(f"column({x}) outside view of shape {self.shape}")
        window = self._data[absolute, y_lo:y_hi]
        return MatrixView(window, ((0, window.shape[0]),), self.name)

    def slice_axis(self, axis: int, index: int) -> "MatrixView":
        """Generalized row/column: drop ``axis`` at view-relative ``index``.

        Used for matrix versions ``A<t>`` where the version dimension is
        collapsed after analysis.
        """
        lo, hi = self._bounds[axis]
        absolute = lo + int(index)
        if not (lo <= absolute < hi):
            raise IndexError(f"slice_axis({axis}, {index}) out of range")
        slicer = [slice(b_lo, b_hi) for b_lo, b_hi in self._bounds]
        slicer[axis] = absolute
        window = self._data[tuple(slicer)]
        return MatrixView(
            window, tuple((0, extent) for extent in window.shape), self.name
        )

    # -- element access --------------------------------------------------------

    @property
    def value(self) -> float:
        """The scalar value of a 0-D view."""
        if self.ndim != 0:
            raise ValueError(f"value on {self.ndim}-D view; use to_numpy()")
        return float(self._data[()])

    def set(self, value: float) -> None:
        """Write the scalar value of a 0-D view."""
        if self.ndim != 0:
            raise ValueError("set() on non-scalar view; use assign()")
        self._data[()] = value

    def __getitem__(self, index: Index) -> float:
        coords = (index,) if isinstance(index, int) else tuple(index)
        return self.cell(*coords).value

    def __setitem__(self, index: Index, value: float) -> None:
        coords = (index,) if isinstance(index, int) else tuple(index)
        self.cell(*coords).set(value)

    # -- bulk access -------------------------------------------------------------

    def to_numpy(self) -> np.ndarray:
        """The underlying numpy window (a *view*, writes pass through).

        The window is cached: a view's bounds are immutable, so building
        the slice once is enough (the lowered execution paths call this
        on every segment application).
        """
        window = self._window
        if window is None:
            window = self._window = self._data[self._axis_slice()]
        return window

    @property
    def bounds(self) -> Tuple[Tuple[int, int], ...]:
        """Absolute ``(lo, hi)`` bounds per axis into the backing array."""
        return self._bounds

    def assign(self, values) -> None:
        """Bulk write ``values`` (array-like of matching shape)."""
        self._data[self._axis_slice()] = values

    def copy_from(self, other: "MatrixView") -> None:
        """Copy the contents of another view of identical shape."""
        if other.shape != self.shape:
            raise ValueError(f"shape mismatch {self.shape} vs {other.shape}")
        self.assign(other.to_numpy())

    def iter_cells(self) -> Iterable[Tuple[int, ...]]:
        """All view-relative coordinates in row-major order."""
        return np.ndindex(*self.shape)

    def __repr__(self) -> str:
        label = self.name or "view"
        return f"<{label} bounds={self._bounds}>"
