"""Deterministic bucket queue for the batch execution engine.

:class:`BucketQueue` groups submitted items under a bucket key and
drains whole buckets in an order *scrambled* relative to submission:
buckets complete in the hash order of their keys, not the order their
first request arrived.  The scramble is deterministic (a blake2b digest
of the key, no wall clock, no randomness), so runs replay identically —
but it deliberately interleaves buckets the way a real multi-queue
server would, which is exactly the condition ``gather()``'s
submission-order guarantee must survive (and what the batch stress test
exercises).

Items *within* a bucket keep their submission order: stacked execution
assigns lane ``i`` of the batch axis to the bucket's ``i``-th request.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Generic, Hashable, Iterator, List, Tuple, TypeVar

T = TypeVar("T")


def scramble(key: Hashable) -> str:
    """The deterministic drain-order digest for a bucket key."""
    return hashlib.blake2b(repr(key).encode(), digest_size=8).hexdigest()


class BucketQueue(Generic[T]):
    """Insertion-ordered buckets, drained in scrambled key order."""

    def __init__(self) -> None:
        self._buckets: Dict[Hashable, List[T]] = {}

    def add(self, key: Hashable, item: T) -> None:
        self._buckets.setdefault(key, []).append(item)

    def __len__(self) -> int:
        return sum(len(items) for items in self._buckets.values())

    @property
    def bucket_count(self) -> int:
        return len(self._buckets)

    def drain(self) -> Iterator[Tuple[Hashable, List[T]]]:
        """Yield ``(key, items)`` per bucket and empty the queue.

        Buckets come out sorted by :func:`scramble` digest (ties broken
        by insertion order — practically unreachable with an 8-byte
        digest); items within a bucket keep submission order.
        """
        order = sorted(
            enumerate(self._buckets.items()),
            key=lambda pair: (scramble(pair[1][0]), pair[0]),
        )
        self._buckets = {}
        for _, (key, items) in order:
            yield key, items
