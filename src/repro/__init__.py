"""PetaBricks — a language and compiler for algorithmic choice.

Python reproduction of Ansel et al., PLDI 2009.  The package makes
*algorithmic choice* a first-class construct: programs declare multiple
rules for computing the same data, the compiler analyzes where each rule
applies and what it depends on, and an autotuner picks the hybrid
composition (plus cutoffs and tunables) that is fastest on the target
machine.

Quickstart::

    from repro import compile_program, ChoiceConfig

    program = compile_program('''
        transform RollingSum
        from A[n] to B[n]
        {
          to (B.cell(i) b) from (A.region(0, i+1) in) { b = sum(in); }
          to (B.cell(i) b) from (A.cell(i) a, B.cell(i-1) s) { b = a + s; }
        }
    ''')
    result = program.transform("RollingSum").run([[1.0, 2.0, 3.0]])
    print(result.output("B"))          # [1. 3. 6.]

Layers (bottom-up): :mod:`repro.symbolic` (affine region algebra),
:mod:`repro.runtime` (matrices, tasks, the work-stealing scheduler and
machine models), :mod:`repro.language` (the DSL), :mod:`repro.compiler`
(analysis passes + execution engine + builder API),
:mod:`repro.autotuner` (genetic bottom-up tuning, n-ary search,
consistency checking, accuracy bins), :mod:`repro.linalg` (the LAPACK
stand-in), :mod:`repro.apps` (the paper's benchmark suite), and
:mod:`repro.observe` (structured tracing/metrics plus the scheduler
stress harness).
"""

from repro.autotuner import Evaluator, GeneticTuner, check_consistency
from repro.compiler import (
    ChoiceConfig,
    CompiledProgram,
    CompiledTransform,
    NativeContext,
    Selector,
    TransformBuilder,
    compile_program,
)
from repro.language import parse_program, parse_transform
from repro.observe import TraceSink
from repro.runtime import MACHINES, Machine, Matrix, WorkStealingScheduler

__version__ = "1.0.0"

__all__ = [
    "ChoiceConfig",
    "CompiledProgram",
    "CompiledTransform",
    "Evaluator",
    "GeneticTuner",
    "MACHINES",
    "Machine",
    "Matrix",
    "NativeContext",
    "Selector",
    "TraceSink",
    "TransformBuilder",
    "WorkStealingScheduler",
    "check_consistency",
    "compile_program",
    "parse_program",
    "parse_transform",
]
