"""Canonical JSON result records shared by ``repro batch`` and the
serve daemon.

Both the direct CLI and the daemon's ``/batch`` endpoint must emit the
*same bytes* for the same requests — the bit-parity acceptance check of
the serve layer — so the record shape lives here and is built in exactly
one place.  Records serialize with ``json.dumps(record, sort_keys=True)``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.batch.request import BatchResult


def result_record(
    result: BatchResult, record_id: Optional[int] = None
) -> Dict[str, Any]:
    """One JSONL-able record for a batch result.

    ``record_id`` overrides the engine-assigned request id — the daemon
    passes the position within the incoming request list so a long-lived
    engine (whose internal ids keep growing across calls) still emits
    the ids a fresh ``repro batch`` process would.
    """
    record_id = result.request_id if record_id is None else record_id
    if result.ok:
        assert result.outputs is not None
        return {
            "id": record_id,
            "ok": True,
            "stacked": result.stacked,
            "outputs": {
                name: matrix.data.tolist()
                for name, matrix in result.outputs.items()
            },
        }
    return {
        "id": record_id,
        "ok": False,
        "error": f"{type(result.error).__name__}: {result.error}",
    }


def malformed_record(lineno: int, message: str) -> Dict[str, Any]:
    """The record a malformed (unparseable / unknown-transform) request
    line degrades to when ``--strict`` is off."""
    return {"id": None, "line": lineno, "ok": False, "error": message}


def error_body(
    message: str,
    reason: Optional[str] = None,
    retry_after: Optional[float] = None,
) -> Dict[str, Any]:
    """The structured HTTP error body every non-2xx daemon response
    carries: ``error`` (human text) plus, when known, a machine-readable
    ``reason`` (``capacity`` | ``queue_timeout`` | ``draining`` |
    ``deadline_exceeded`` | ``store_io`` | ...) and a ``retry_after``
    hint in seconds (mirrored in the ``Retry-After`` header).  The chaos
    harness validates shed/deadline errors against this shape."""
    body: Dict[str, Any] = {"error": message}
    if reason is not None:
        body["reason"] = reason
    if retry_after is not None:
        body["retry_after"] = retry_after
    return body
