"""Transport-independent serve-daemon logic.

:class:`ServeApp` implements every endpoint as a plain
``payload dict → response dict`` method, so the HTTP layer
(:mod:`repro.serve.daemon`) is pure marshaling and the test suite can
drive the daemon — including its concurrency — without sockets.

The contract (see README "Serving" for the client view):

===========  ======  ====================================================
endpoint     method  semantics
===========  ======  ====================================================
/health      GET     liveness + registry sizes
/compile     POST    ``{source}`` → compile-once registration
/run         POST    ``{program, transform, inputs, sizes?, machine?,
                     config?}`` → outputs (registry config on the hot
                     path; inline ``config`` overrides)
/batch       POST    ``{program, lines, strict?, config?}`` → the exact
                     records ``repro batch`` would emit for those lines
/tune        POST    enqueue a background tuning job → ``{job}``
/jobs/<id>   GET     job state; ``done`` carries the published version
/check       POST    ``{program}`` → static-verifier diagnostics
/stats       GET     counters, histograms, registry + job snapshots
/shutdown    POST    clean stop (drain jobs, flush artifacts)
===========  ======  ====================================================

Hot path (``/run`` and ``/batch`` with a registered config): program
lookup and config lookup are dict reads of immutable entries, execution
reuses the resident :class:`CompiledTransform` and the per-program
:class:`BatchEngine` — **zero program parsing and zero config
serialization per request** (the config digest was computed once at
publish).  Cold paths (first compile, inline configs, tuning) pay their
costs once and register the result.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.check import check_source
from repro.autotuner import GeneticTuner
from repro.autotuner.parallel import EvaluatorSpec, ParallelEvaluator
from repro.compiler import ChoiceConfig
from repro.observe import ThreadSafeSink
from repro.runtime import MACHINES

from repro.serve.jobs import Job, JobQueue
from repro.serve.records import malformed_record, result_record
from repro.serve.registry import (
    ANY_BUCKET,
    ConfigEntry,
    ProgramEntry,
    ServeRegistry,
    bucket_for,
)
from repro.serve.store import ArtifactStore


class ServeError(Exception):
    """An error with an HTTP status; the daemon maps it to a JSON body."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class ServeApp:
    """The daemon's brain: registry + artifact store + job queue."""

    def __init__(
        self,
        store_dir: Optional[str] = None,
        sink=None,
        machine: str = "xeon8",
        tune_workers: int = 1,
    ) -> None:
        if machine not in MACHINES:
            raise ValueError(f"unknown machine profile {machine!r}")
        self.sink = sink if sink is not None else ThreadSafeSink()
        self.machine = machine
        self.registry = ServeRegistry(sink=self.sink)
        self.store = ArtifactStore(store_dir) if store_dir else None
        self.jobs = JobQueue(self._run_job, workers=tune_workers)
        self.recovered = (
            self.store.recover_into(self.registry)
            if self.store is not None
            else {"programs": 0, "configs": 0, "skipped": 0}
        )
        self._closed = threading.Event()

    # -- endpoints ----------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return {
            "ok": True,
            "programs": len(self.registry.programs()),
            "entries": len(self.registry.entries()),
            "machine": self.machine,
            "recovered": self.recovered,
        }

    def compile(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        source = payload.get("source")
        if not isinstance(source, str) or not source.strip():
            raise ServeError(400, "compile needs a non-empty 'source'")
        started = time.perf_counter()
        try:
            entry, cached = self.registry.register_program(source)
        except Exception as exc:
            raise ServeError(400, f"compile failed: {exc}")
        if self.store is not None and not cached:
            self.store.save_program(
                entry.phash, source, {"transforms": entry.transforms()}
            )
        self._observe("serve.compile_ms", started)
        self.sink.count("serve.requests")
        return {
            "program": entry.phash,
            "transforms": entry.transforms(),
            "cached": cached,
        }

    def run(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        started = time.perf_counter()
        entry = self._program(payload)
        transform = self._transform(entry, payload)
        machine = self._machine(payload)
        inputs = self._inputs(payload.get("inputs"))
        sizes = payload.get("sizes") or None
        arrays = (
            list(inputs.values()) if isinstance(inputs, dict) else inputs
        ) or []
        bucket = bucket_for([a.shape for a in arrays], sizes)

        config, version, hit = self._resolve_config(
            payload, entry.phash, machine, bucket
        )
        try:
            result = transform.run(inputs, config, sizes=sizes)
        except Exception as exc:
            raise ServeError(400, f"{type(exc).__name__}: {exc}")
        self._observe("serve.run_ms", started)
        self.sink.count("serve.requests")
        self.sink.count("serve.runs")
        return {
            "outputs": {
                name: matrix.data.tolist()
                for name, matrix in result.outputs.items()
            },
            "meta": {
                "bucket": bucket,
                "machine": machine,
                "version": version,
                "registry_hit": hit,
                "rule_applications": result.rule_applications,
                "tasks": len(result.graph),
                "sizes": result.sizes,
            },
        }

    def batch(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        started = time.perf_counter()
        entry = self._program(payload)
        machine = self._machine(payload)
        strict = bool(payload.get("strict"))
        lines = payload.get("lines")
        if not isinstance(lines, list):
            raise ServeError(400, "batch needs 'lines': a list of JSONL strings")
        default_config: Optional[ChoiceConfig] = None
        if payload.get("config") is not None:
            default_config = self._parse_config(payload["config"])

        # Parse outside the engine lock; only submit/gather hold it.
        entries: List[Tuple] = []  # ("submit", t, inputs, cfg, sizes, digest)
        for lineno, line in enumerate(lines, start=1):
            line = line.strip() if isinstance(line, str) else json.dumps(line)
            if not line or line.startswith("#"):
                continue
            try:
                request = json.loads(line)
                transform = entry.program.transform(request["transform"])
            except Exception as exc:
                if strict:
                    raise ServeError(400, f"request line {lineno}: {exc}")
                entries.append(
                    (
                        "malformed",
                        lineno,
                        f"{type(exc).__name__}: {exc}",
                    )
                )
                continue
            digest = None
            if request.get("config") is not None:
                config: Optional[ChoiceConfig] = self._parse_config(
                    request["config"]
                )
            elif default_config is not None:
                config = default_config
            else:
                registered = self.registry.lookup(
                    entry.phash,
                    machine,
                    self._request_bucket(transform, request),
                )
                config = registered.config if registered else None
                if registered is not None:
                    # Registry configs are immutable: reuse the digest
                    # computed at publish (zero serialization).
                    digest = registered.digest
            entries.append(
                (
                    "submit",
                    transform,
                    request.get("inputs"),
                    config,
                    request.get("sizes"),
                    digest,
                )
            )

        with entry.engine_lock:
            submitted: List[int] = []  # engine ids, in submission order
            for item in entries:
                if item[0] != "submit":
                    continue
                _, transform, inputs, config, sizes, digest = item
                submitted.append(
                    entry.engine.submit(
                        transform, inputs, config, sizes, digest=digest
                    )
                )
            results = {
                result.request_id: result
                for result in entry.engine.gather()
            }

        # Records in line order; submitted requests are renumbered from
        # 0 so a long-lived engine emits the ids a fresh CLI run would.
        records: List[Dict[str, Any]] = []
        position = 0
        for item in entries:
            if item[0] == "malformed":
                records.append(malformed_record(item[1], item[2]))
            else:
                records.append(
                    result_record(results[submitted[position]], position)
                )
                position += 1

        failed = sum(1 for record in records if not record["ok"])
        self._observe("serve.batch_ms", started)
        self.sink.count("serve.requests")
        self.sink.count("serve.batches")
        self.sink.count("serve.batch_requests", len(records))
        return {
            "results": records,
            "failed": failed,
            "machine": machine,
        }

    def tune(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        entry = self._program(payload)
        transform = self._transform(entry, payload)
        machine = self._machine(payload)
        job_payload = {
            "program": entry.phash,
            "transform": transform.name,
            "machine": machine,
            "bucket": str(payload.get("bucket") or ANY_BUCKET),
            "min_size": int(payload.get("min_size", 16)),
            "max_size": int(payload.get("max_size", 64)),
            "population": int(payload.get("population", 6)),
            "jobs": int(payload.get("jobs", 1)),
        }
        job_id = self.jobs.submit("tune", job_payload)
        self.sink.count("serve.requests")
        self.sink.count("serve.tune_jobs")
        return {"job": job_id, "state": "queued"}

    def program_info(self, phash: str) -> Dict[str, Any]:
        """``GET /programs/<hash>``: the client's ensure-program probe."""
        entry = self._program({"program": phash})
        return {"program": entry.phash, "transforms": entry.transforms()}

    def job(self, job_id: str) -> Dict[str, Any]:
        try:
            return self.jobs.get(job_id)
        except KeyError as exc:
            raise ServeError(404, str(exc))

    def check(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        entry = self._program(payload)
        report = check_source(entry.source, path=entry.phash)
        self.sink.count("serve.requests")
        return {
            "clean": report.clean,
            "summary": report.summary_line(),
            "diagnostics": [d.to_dict() for d in report.sorted()],
        }

    def stats(self) -> Dict[str, Any]:
        return {
            "counters": dict(sorted(self.sink.counters.items())),
            "histograms": {
                name: hist.summary()
                for name, hist in sorted(self.sink.histograms.items())
            },
            "programs": self.registry.programs(),
            "entries": self.registry.entries(),
            "jobs": self.jobs.jobs(),
        }

    def close(self) -> None:
        """Drain job workers; artifacts are already durable (atomic
        per-publish writes), so close is idempotent and fast."""
        if not self._closed.is_set():
            self._closed.set()
            self.jobs.close()

    # -- tuning worker ------------------------------------------------------

    def _run_job(self, job: Job) -> Dict[str, Any]:
        if job.kind != "tune":
            raise ValueError(f"unknown job kind {job.kind!r}")
        payload = job.payload
        entry = self.registry.program(payload["program"])
        spec = EvaluatorSpec.make(
            "repro.autotuner.parallel:evaluator_from_source",
            entry.source,
            payload["transform"],
            payload["machine"],
            max_size=payload["max_size"],
        )
        evaluator = ParallelEvaluator.from_spec(spec, jobs=payload["jobs"])
        try:
            result = GeneticTuner(
                evaluator,
                min_size=payload["min_size"],
                max_size=payload["max_size"],
                population_size=payload["population"],
                refine_passes=0,
            ).tune()
        finally:
            evaluator.close()
        published = self.publish_config(
            payload["program"],
            payload["machine"],
            payload["bucket"],
            result.config,
            origin="tune",
            meta={
                "transform": payload["transform"],
                "best_time": result.best_time,
            },
        )
        return {
            "program": payload["program"],
            "transform": payload["transform"],
            "machine": payload["machine"],
            "bucket": payload["bucket"],
            "version": published.version,
            "digest": published.digest,
            "best_time": result.best_time,
        }

    def publish_config(
        self,
        phash: str,
        machine: str,
        bucket: str,
        config: ChoiceConfig,
        origin: str = "publish",
        meta: Optional[Mapping[str, Any]] = None,
    ) -> ConfigEntry:
        """Version-bump the registry and persist the artifact — the one
        write path shared by tune jobs, recovery reseeding, and tests."""
        published = self.registry.publish(
            phash, machine, bucket, config, origin=origin, meta=meta
        )
        if self.store is not None:
            self.store.save_config(
                phash,
                machine,
                bucket,
                config,
                meta={
                    "version": published.version,
                    "digest": published.digest,
                    "origin": origin,
                    **dict(meta or {}),
                },
            )
        return published

    # -- shared request plumbing --------------------------------------------

    def _program(self, payload: Mapping[str, Any]) -> ProgramEntry:
        phash = payload.get("program")
        if not isinstance(phash, str):
            raise ServeError(400, "missing 'program' hash")
        try:
            return self.registry.program(phash)
        except KeyError as exc:
            raise ServeError(404, str(exc))

    def _transform(self, entry: ProgramEntry, payload: Mapping[str, Any]):
        name = payload.get("transform")
        if not isinstance(name, str):
            raise ServeError(400, "missing 'transform' name")
        try:
            return entry.program.transform(name)
        except Exception as exc:
            raise ServeError(404, str(exc))

    def _machine(self, payload: Mapping[str, Any]) -> str:
        machine = payload.get("machine") or self.machine
        if machine not in MACHINES:
            raise ServeError(400, f"unknown machine profile {machine!r}")
        return machine

    @staticmethod
    def _inputs(
        raw: Union[Mapping[str, Any], Sequence[Any], None]
    ) -> Union[Dict[str, np.ndarray], List[np.ndarray], None]:
        """JSON input payloads as float64 arrays (converted once; the
        engine's asarray on an ndarray is then a no-op)."""
        if raw is None:
            return None
        try:
            if isinstance(raw, Mapping):
                return {
                    name: np.asarray(value, dtype=np.float64)
                    for name, value in raw.items()
                }
            if isinstance(raw, (list, tuple)):
                return [
                    np.asarray(value, dtype=np.float64) for value in raw
                ]
        except Exception as exc:
            raise ServeError(400, f"bad input arrays: {exc}")
        raise ServeError(400, "inputs must be an object, a list, or null")

    def _parse_config(self, raw: Any) -> ChoiceConfig:
        try:
            return ChoiceConfig.from_json(json.dumps(raw))
        except Exception as exc:
            raise ServeError(400, f"bad config: {exc}")

    def _resolve_config(
        self, payload: Mapping[str, Any], phash: str, machine: str, bucket: str
    ) -> Tuple[Optional[ChoiceConfig], Optional[int], bool]:
        """(config, registry version, registry hit) for one request —
        an inline config wins and is never registered."""
        if payload.get("config") is not None:
            return self._parse_config(payload["config"]), None, False
        entry = self.registry.lookup(phash, machine, bucket)
        if entry is None:
            return None, None, False
        return entry.config, entry.version, True

    def _request_bucket(self, transform, request: Mapping[str, Any]) -> str:
        raw = request.get("inputs")
        values = (
            list(raw.values())
            if isinstance(raw, Mapping)
            else (raw if isinstance(raw, (list, tuple)) else [])
        )
        shapes = []
        for value in values:
            try:
                shapes.append(np.asarray(value, dtype=np.float64).shape)
            except Exception:
                shapes.append(())
        return bucket_for(shapes, request.get("sizes"))

    def _observe(self, name: str, started: float) -> None:
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        self.sink.observe(name, elapsed_ms)
        self.sink.observe("serve.request_ms", elapsed_ms)
