"""Transport-independent serve-daemon logic.

:class:`ServeApp` implements every endpoint as a plain
``payload dict → response dict`` method, so the HTTP layer
(:mod:`repro.serve.daemon`) is pure marshaling and the test suite can
drive the daemon — including its concurrency — without sockets.

The contract (see README "Serving" for the client view):

===========  ======  ====================================================
endpoint     method  semantics
===========  ======  ====================================================
/health      GET     liveness + registry sizes
/compile     POST    ``{source}`` → compile-once registration
/run         POST    ``{program, transform, inputs, sizes?, machine?,
                     config?}`` → outputs (registry config on the hot
                     path; inline ``config`` overrides)
/batch       POST    ``{program, lines, strict?, config?}`` → the exact
                     records ``repro batch`` would emit for those lines
/tune        POST    enqueue a background tuning job → ``{job}``
/jobs/<id>   GET     job state; ``done`` carries the published version
/check       POST    ``{program}`` → static-verifier diagnostics
/stats       GET     counters, histograms, registry + job snapshots
/shutdown    POST    clean stop (drain jobs, flush artifacts)
===========  ======  ====================================================

Hot path (``/run`` and ``/batch`` with a registered config): program
lookup and config lookup are dict reads of immutable entries, execution
reuses the resident :class:`CompiledTransform` and the per-program
:class:`BatchEngine` — **zero program parsing and zero config
serialization per request** (the config digest was computed once at
publish).  Cold paths (first compile, inline configs, tuning) pay their
costs once and register the result.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.check import check_source
from repro.autotuner import GeneticTuner
from repro.autotuner.parallel import EvaluatorSpec, ParallelEvaluator
from repro.batch.request import config_digest
from repro.compiler import ChoiceConfig
from repro.observe import ThreadSafeSink
from repro.runtime import MACHINES

from repro.serve.jobs import Job, JobQueue, QueueDraining
from repro.serve.records import malformed_record, result_record
from repro.serve.registry import (
    ANY_BUCKET,
    ConfigEntry,
    ProgramEntry,
    ServeRegistry,
    bucket_for,
)
from repro.serve.resilience import (
    AdmissionController,
    Deadline,
    ResilienceConfig,
    ServeError,
    ShedError,
)
from repro.serve.store import ArtifactStore

__all__ = ["ServeApp", "ServeError", "ShedError"]


class ServeApp:
    """The daemon's brain: registry + artifact store + job queue, with
    an :class:`AdmissionController` in front of the work routes.

    ``injector`` (dev/test only) enables the deterministic serve-side
    fault kinds of :mod:`repro.faults`: ``slow-handler`` and
    ``drain-race`` fire here at dispatch, ``shed-storm`` forces an
    admission shed, ``store-io-fail`` fires inside the artifact store
    (``conn-drop`` is transport-level and lives in the daemon).  Fault
    identities key off the request's optional ``rid`` payload field so
    a fault plan replays identically across runs.
    """

    def __init__(
        self,
        store_dir: Optional[str] = None,
        sink=None,
        machine: str = "xeon8",
        tune_workers: int = 1,
        resilience: Optional[ResilienceConfig] = None,
        injector=None,
    ) -> None:
        if machine not in MACHINES:
            raise ValueError(f"unknown machine profile {machine!r}")
        self.sink = sink if sink is not None else ThreadSafeSink()
        self.machine = machine
        self.resilience = resilience or ResilienceConfig()
        self.injector = injector
        self.admission = AdmissionController(self.resilience, sink=self.sink)
        self.registry = ServeRegistry(sink=self.sink)
        self.store = (
            ArtifactStore(store_dir, injector=injector) if store_dir else None
        )
        self.jobs = JobQueue(self._run_job, workers=tune_workers)
        self.recovered = (
            self.store.recover_into(self.registry)
            if self.store is not None
            else {"programs": 0, "configs": 0, "skipped": 0}
        )
        self._publish_lock = threading.Lock()
        self._closed = threading.Event()

    # -- endpoints ----------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """Liveness: always answers while the process is up, draining
        or not (readiness is :meth:`ready_probe`'s job)."""
        return {
            "ok": True,
            "programs": len(self.registry.programs()),
            "entries": len(self.registry.entries()),
            "machine": self.machine,
            "recovered": self.recovered,
            "draining": self.admission.draining,
        }

    def ready_probe(self) -> Dict[str, Any]:
        """Readiness: accepting new work (not draining, accept queue
        below high-water).  The daemon maps ``ready=False`` to 503 so
        load balancers stop routing here before requests get shed."""
        verdict = self.admission.ready()
        verdict["admission"] = self.admission.snapshot()
        return verdict

    def compile(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        source = payload.get("source")
        if not isinstance(source, str) or not source.strip():
            raise ServeError(400, "compile needs a non-empty 'source'")
        started = time.perf_counter()
        try:
            entry, cached = self.registry.register_program(source)
        except Exception as exc:
            raise ServeError(400, f"compile failed: {exc}")
        if self.store is not None:
            # Unconditionally (re)persist: content-addressed writes are
            # idempotent, and acknowledging a compile that isn't on disk
            # would let a crash forget it — a retried compile after a
            # store failure must land the artifact even though the
            # registry already has the program cached.
            try:
                self.store.save_program(
                    entry.phash, source, {"transforms": entry.transforms()}
                )
            except OSError as exc:
                self.sink.count("serve.store.write_failures")
                raise ServeError(
                    503,
                    f"artifact store write failed: {exc}",
                    code="store_io",
                    retry_after=self.resilience.retry_after_s,
                )
        self._observe("serve.compile_ms", started)
        self.sink.count("serve.requests")
        return {
            "program": entry.phash,
            "transforms": entry.transforms(),
            "cached": cached,
        }

    def run(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        started = time.perf_counter()
        deadline = Deadline.from_payload(
            payload, self.resilience.default_deadline_ms
        )
        with self.admission.admit(
            "run",
            cost=1,
            deadline=deadline,
            forced_shed=self._injected_shed("run", payload),
        ):
            self._inject_dispatch_faults("run", payload)
            entry = self._program(payload)
            transform = self._transform(entry, payload)
            machine = self._machine(payload)
            inputs = self._inputs(payload.get("inputs"))
            sizes = payload.get("sizes") or None
            arrays = (
                list(inputs.values()) if isinstance(inputs, dict) else inputs
            ) or []
            bucket = bucket_for([a.shape for a in arrays], sizes)

            config, version, hit = self._resolve_config(
                payload, entry.phash, machine, bucket
            )
            if deadline is not None and deadline.expired():
                # The execution boundary: queueing/admission consumed
                # the whole budget, so don't start work that nobody is
                # waiting for.
                self.sink.count("serve.deadline.expired")
                raise deadline.serve_error()
            try:
                result = transform.run(inputs, config, sizes=sizes)
            except Exception as exc:
                raise ServeError(400, f"{type(exc).__name__}: {exc}")
        self._observe("serve.run_ms", started)
        self.sink.count("serve.requests")
        self.sink.count("serve.runs")
        return {
            "outputs": {
                name: matrix.data.tolist()
                for name, matrix in result.outputs.items()
            },
            "meta": {
                "bucket": bucket,
                "machine": machine,
                "version": version,
                "registry_hit": hit,
                "rule_applications": result.rule_applications,
                "tasks": len(result.graph),
                "sizes": result.sizes,
            },
        }

    def batch(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        started = time.perf_counter()
        lines = payload.get("lines")
        if not isinstance(lines, list):
            raise ServeError(400, "batch needs 'lines': a list of JSONL strings")
        deadline = Deadline.from_payload(
            payload, self.resilience.default_deadline_ms
        )
        # Cost-aware admission: a batch weighs its request count, so a
        # 1024-line batch and 1024 /run calls occupy the limiter alike
        # (clamped so one maximal batch fills — not exceeds — it).
        with self.admission.admit(
            "batch",
            cost=len(lines),
            deadline=deadline,
            forced_shed=self._injected_shed("batch", payload),
        ):
            self._inject_dispatch_faults("batch", payload)
            return self._batch_admitted(payload, lines, deadline, started)

    def _batch_admitted(
        self,
        payload: Mapping[str, Any],
        lines: List[Any],
        deadline: Optional[Deadline],
        started: float,
    ) -> Dict[str, Any]:
        entry = self._program(payload)
        machine = self._machine(payload)
        strict = bool(payload.get("strict"))
        default_config: Optional[ChoiceConfig] = None
        if payload.get("config") is not None:
            default_config = self._parse_config(payload["config"])

        # Parse outside the engine lock; only submit/gather hold it.
        entries: List[Tuple] = []  # ("submit", t, inputs, cfg, sizes, digest)
        for lineno, line in enumerate(lines, start=1):
            line = line.strip() if isinstance(line, str) else json.dumps(line)
            if not line or line.startswith("#"):
                continue
            try:
                request = json.loads(line)
                transform = entry.program.transform(request["transform"])
            except Exception as exc:
                if strict:
                    raise ServeError(400, f"request line {lineno}: {exc}")
                entries.append(
                    (
                        "malformed",
                        lineno,
                        f"{type(exc).__name__}: {exc}",
                    )
                )
                continue
            digest = None
            if request.get("config") is not None:
                config: Optional[ChoiceConfig] = self._parse_config(
                    request["config"]
                )
            elif default_config is not None:
                config = default_config
            else:
                registered = self.registry.lookup(
                    entry.phash,
                    machine,
                    self._request_bucket(transform, request),
                )
                config = registered.config if registered else None
                if registered is not None:
                    # Registry configs are immutable: reuse the digest
                    # computed at publish (zero serialization).
                    digest = registered.digest
            entries.append(
                (
                    "submit",
                    transform,
                    request.get("inputs"),
                    config,
                    request.get("sizes"),
                    digest,
                )
            )

        with entry.engine_lock:
            submitted: List[int] = []  # engine ids, in submission order
            for item in entries:
                if item[0] != "submit":
                    continue
                _, transform, inputs, config, sizes, digest = item
                submitted.append(
                    entry.engine.submit(
                        transform, inputs, config, sizes, digest=digest
                    )
                )
            results = {
                result.request_id: result
                for result in entry.engine.gather(deadline=deadline)
            }

        # Records in line order; submitted requests are renumbered from
        # 0 so a long-lived engine emits the ids a fresh CLI run would.
        records: List[Dict[str, Any]] = []
        position = 0
        for item in entries:
            if item[0] == "malformed":
                records.append(malformed_record(item[1], item[2]))
            else:
                records.append(
                    result_record(results[submitted[position]], position)
                )
                position += 1

        failed = sum(1 for record in records if not record["ok"])
        expired = sum(
            1
            for record in records
            if not record["ok"]
            and str(record.get("error", "")).startswith("DeadlineExceeded")
        )
        if expired:
            self.sink.count("serve.deadline.batch_requests", expired)
        self._observe("serve.batch_ms", started)
        self.sink.count("serve.requests")
        self.sink.count("serve.batches")
        self.sink.count("serve.batch_requests", len(records))
        return {
            "results": records,
            "failed": failed,
            "machine": machine,
        }

    def tune(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        with self.admission.admit(
            "tune",
            cost=1,
            forced_shed=self._injected_shed("tune", payload),
        ):
            self._inject_dispatch_faults("tune", payload)
            entry = self._program(payload)
            transform = self._transform(entry, payload)
            machine = self._machine(payload)
            job_payload = {
                "program": entry.phash,
                "transform": transform.name,
                "machine": machine,
                "bucket": str(payload.get("bucket") or ANY_BUCKET),
                "min_size": int(payload.get("min_size", 16)),
                "max_size": int(payload.get("max_size", 64)),
                "population": int(payload.get("population", 6)),
                "jobs": int(payload.get("jobs", 1)),
            }
            key = payload.get("idempotency_key")
            try:
                job_id, deduped = self.jobs.submit(
                    "tune", job_payload, idempotency_key=key
                )
            except QueueDraining:
                self.sink.count("serve.shed.draining")
                raise ShedError(
                    503,
                    "tune shed: daemon is draining",
                    code="draining",
                    retry_after=self.resilience.drain_timeout_s,
                )
            self.sink.count("serve.requests")
            if not deduped:
                self.sink.count("serve.tune_jobs")
            return {"job": job_id, "state": "queued", "deduped": deduped}

    def program_info(self, phash: str) -> Dict[str, Any]:
        """``GET /programs/<hash>``: the client's ensure-program probe."""
        entry = self._program({"program": phash})
        return {"program": entry.phash, "transforms": entry.transforms()}

    def job(self, job_id: str) -> Dict[str, Any]:
        try:
            return self.jobs.get(job_id)
        except KeyError as exc:
            raise ServeError(404, str(exc))

    def check(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        entry = self._program(payload)
        report = check_source(entry.source, path=entry.phash)
        self.sink.count("serve.requests")
        return {
            "clean": report.clean,
            "summary": report.summary_line(),
            "diagnostics": [d.to_dict() for d in report.sorted()],
        }

    def stats(self) -> Dict[str, Any]:
        return {
            "counters": dict(sorted(self.sink.counters.items())),
            "histograms": {
                name: hist.summary()
                for name, hist in sorted(self.sink.histograms.items())
            },
            "programs": self.registry.programs(),
            "entries": self.registry.entries(),
            "jobs": self.jobs.jobs(),
            "admission": self.admission.snapshot(),
        }

    # -- drain / shutdown ---------------------------------------------------

    @property
    def draining(self) -> bool:
        return self.admission.draining

    def begin_drain(self) -> bool:
        """Flip the draining flag (idempotent): new work routes shed
        with a structured 503 while admitted requests and the currently
        running tune job finish; queued tune jobs are cancelled."""
        if not self.admission.begin_drain():
            return False
        self.sink.count("serve.drain.begun")
        self.jobs.drain()
        return True

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until in-flight requests and the running tune job
        finish, bounded by the hard drain timeout.  Returns True on a
        clean drain; a forced drain (timeout hit) is counted too."""
        if timeout is None:
            timeout = self.resilience.drain_timeout_s
        ends_at = time.monotonic() + max(0.0, timeout)
        clean = self.admission.wait_idle(timeout)
        clean = (
            self.jobs.wait_idle(max(0.0, ends_at - time.monotonic()))
            and clean
        )
        self.sink.count(
            "serve.drain.completed" if clean else "serve.drain.forced"
        )
        return clean

    def close(self) -> None:
        """Drain job workers; artifacts are already durable (atomic,
        fsync'd per-publish writes), so close is idempotent and fast."""
        if not self._closed.is_set():
            self._closed.set()
            self.jobs.close()

    # -- deterministic fault hooks (dev/test; see repro.faults) -------------

    @staticmethod
    def _fault_identity(route: str, payload: Mapping[str, Any]):
        rid = payload.get("rid")
        if rid is None:
            return None, 0
        try:
            attempt = int(payload.get("attempt", 0) or 0)
        except (TypeError, ValueError):
            attempt = 0
        return f"{route}|{rid}", attempt

    def _injected_shed(self, route: str, payload: Mapping[str, Any]) -> bool:
        """``shed-storm``: force an admission shed for this request."""
        if self.injector is None:
            return False
        identity, attempt = self._fault_identity(route, payload)
        return identity is not None and self.injector.fires(
            "shed-storm", identity, attempt
        )

    def _inject_dispatch_faults(
        self, route: str, payload: Mapping[str, Any]
    ) -> None:
        inj = self.injector
        if inj is None:
            return
        identity, attempt = self._fault_identity(route, payload)
        if identity is None:
            return
        if inj.fires("slow-handler", identity, attempt):
            # A pathologically slow handler, bounded so an injected
            # plan can't wedge a test run.
            time.sleep(min(inj.hang_seconds, 5.0))
        if inj.fires("drain-race", identity, attempt):
            # Shutdown racing an in-flight request: this request is
            # already admitted and must complete; everything after it
            # sheds.
            self.begin_drain()

    def injected_conn_drop(
        self, route: str, payload: Mapping[str, Any]
    ) -> bool:
        """``conn-drop``: the daemon truncates this response mid-body
        (transport fault; the app only decides whether it fires)."""
        if self.injector is None:
            return False
        identity, attempt = self._fault_identity(route, payload)
        return identity is not None and self.injector.fires(
            "conn-drop", f"conn|{identity}", attempt
        )

    # -- tuning worker ------------------------------------------------------

    def _run_job(self, job: Job) -> Dict[str, Any]:
        if job.kind != "tune":
            raise ValueError(f"unknown job kind {job.kind!r}")
        payload = job.payload
        entry = self.registry.program(payload["program"])
        spec = EvaluatorSpec.make(
            "repro.autotuner.parallel:evaluator_from_source",
            entry.source,
            payload["transform"],
            payload["machine"],
            max_size=payload["max_size"],
        )
        evaluator = ParallelEvaluator.from_spec(spec, jobs=payload["jobs"])
        try:
            result = GeneticTuner(
                evaluator,
                min_size=payload["min_size"],
                max_size=payload["max_size"],
                population_size=payload["population"],
                refine_passes=0,
            ).tune()
        finally:
            evaluator.close()
        published = self.publish_config(
            payload["program"],
            payload["machine"],
            payload["bucket"],
            result.config,
            origin="tune",
            meta={
                "transform": payload["transform"],
                "best_time": result.best_time,
            },
        )
        return {
            "program": payload["program"],
            "transform": payload["transform"],
            "machine": payload["machine"],
            "bucket": payload["bucket"],
            "version": published.version,
            "digest": published.digest,
            "best_time": result.best_time,
        }

    def publish_config(
        self,
        phash: str,
        machine: str,
        bucket: str,
        config: ChoiceConfig,
        origin: str = "publish",
        meta: Optional[Mapping[str, Any]] = None,
        attempt: int = 0,
    ) -> ConfigEntry:
        """Version-bump the registry and persist the artifact — the one
        write path shared by tune jobs, recovery reseeding, and tests.

        Durable-before-acknowledged: the version is reserved, the
        artifact is written (fsync'd) to the store, and only then does
        the registry bump commit.  A store write failure (including an
        injected ``store-io-fail``) therefore leaves the registry — and
        every client that could have observed the version — untouched,
        so a crash-and-restart can never regress an acknowledged
        version.  ``attempt`` is the caller's retry counter; a retried
        publish reserves the same version and lands durably.
        """
        with self._publish_lock:
            version = (
                self.registry.current_version(phash, machine, bucket) + 1
            )
            if self.store is not None:
                try:
                    self.store.save_config(
                        phash,
                        machine,
                        bucket,
                        config,
                        meta={
                            "version": version,
                            "digest": config_digest(config),
                            "origin": origin,
                            **dict(meta or {}),
                        },
                        attempt=attempt,
                    )
                except OSError as exc:
                    self.sink.count("serve.store.write_failures")
                    raise ServeError(
                        503,
                        f"artifact store write failed: {exc}",
                        code="store_io",
                        retry_after=self.resilience.retry_after_s,
                    )
            return self.registry.publish(
                phash,
                machine,
                bucket,
                config,
                origin=origin,
                meta=meta,
                version=version,
            )

    # -- shared request plumbing --------------------------------------------

    def _program(self, payload: Mapping[str, Any]) -> ProgramEntry:
        phash = payload.get("program")
        if not isinstance(phash, str):
            raise ServeError(400, "missing 'program' hash")
        try:
            return self.registry.program(phash)
        except KeyError as exc:
            raise ServeError(404, str(exc))

    def _transform(self, entry: ProgramEntry, payload: Mapping[str, Any]):
        name = payload.get("transform")
        if not isinstance(name, str):
            raise ServeError(400, "missing 'transform' name")
        try:
            return entry.program.transform(name)
        except Exception as exc:
            raise ServeError(404, str(exc))

    def _machine(self, payload: Mapping[str, Any]) -> str:
        machine = payload.get("machine") or self.machine
        if machine not in MACHINES:
            raise ServeError(400, f"unknown machine profile {machine!r}")
        return machine

    @staticmethod
    def _inputs(
        raw: Union[Mapping[str, Any], Sequence[Any], None]
    ) -> Union[Dict[str, np.ndarray], List[np.ndarray], None]:
        """JSON input payloads as float64 arrays (converted once; the
        engine's asarray on an ndarray is then a no-op)."""
        if raw is None:
            return None
        try:
            if isinstance(raw, Mapping):
                return {
                    name: np.asarray(value, dtype=np.float64)
                    for name, value in raw.items()
                }
            if isinstance(raw, (list, tuple)):
                return [
                    np.asarray(value, dtype=np.float64) for value in raw
                ]
        except Exception as exc:
            raise ServeError(400, f"bad input arrays: {exc}")
        raise ServeError(400, "inputs must be an object, a list, or null")

    def _parse_config(self, raw: Any) -> ChoiceConfig:
        try:
            return ChoiceConfig.from_json(json.dumps(raw))
        except Exception as exc:
            raise ServeError(400, f"bad config: {exc}")

    def _resolve_config(
        self, payload: Mapping[str, Any], phash: str, machine: str, bucket: str
    ) -> Tuple[Optional[ChoiceConfig], Optional[int], bool]:
        """(config, registry version, registry hit) for one request —
        an inline config wins and is never registered."""
        if payload.get("config") is not None:
            return self._parse_config(payload["config"]), None, False
        entry = self.registry.lookup(phash, machine, bucket)
        if entry is None:
            return None, None, False
        return entry.config, entry.version, True

    def _request_bucket(self, transform, request: Mapping[str, Any]) -> str:
        raw = request.get("inputs")
        values = (
            list(raw.values())
            if isinstance(raw, Mapping)
            else (raw if isinstance(raw, (list, tuple)) else [])
        )
        shapes = []
        for value in values:
            try:
                shapes.append(np.asarray(value, dtype=np.float64).shape)
            except Exception:
                shapes.append(())
        return bucket_for(shapes, request.get("sizes"))

    def _observe(self, name: str, started: float) -> None:
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        self.sink.observe(name, elapsed_ms)
        self.sink.observe("serve.request_ms", elapsed_ms)
