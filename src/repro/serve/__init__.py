"""Tuning-as-a-service (``repro serve``): the compile-and-serve daemon.

The paper's model is compile-once, tune-per-machine, run-many; this
package makes that resident.  A long-lived daemon compiles each program
once, keeps hot :class:`~repro.compiler.codegen.CompiledTransform`\\ s
and tuned :class:`~repro.compiler.config.ChoiceConfig`\\ s in a
versioned in-memory registry keyed by ``(program blake2b hash, machine
profile, input-size bucket)``, and answers run / batch / tune / check
requests over an HTTP/JSON API (stdlib only), with an on-disk artifact
store behind it for restart recovery.

* :mod:`repro.serve.registry` — the versioned registry (O(1) lock-free
  hot-path lookup, atomic version bumps).
* :mod:`repro.serve.store` — the durable artifact store (atomic writes,
  corrupt-artifact-tolerant recovery).
* :mod:`repro.serve.app` — endpoint logic, transport-independent.
* :mod:`repro.serve.resilience` — admission control (weighted
  concurrency limit + bounded accept queue), request deadline budgets,
  structured load shedding, drain state, and the client retry policy.
* :mod:`repro.serve.jobs` — background workers for tuning requests
  (event-based waits, idempotent enqueue, drain-aware).
* :mod:`repro.serve.daemon` — the stdlib HTTP front end (liveness vs
  readiness probes, graceful ``/shutdown`` drain, Retry-After headers,
  dropped-connection tolerance).
* :mod:`repro.serve.client` — the thin client behind ``repro client``
  (bounded retries with deterministic backoff, Retry-After honoring,
  idempotency keys for ``/tune``).
* :mod:`repro.serve.records` — the canonical result records shared with
  ``repro batch`` (bit-parity between served and direct execution) and
  the structured error-body shape.
"""

from repro.serve.app import ServeApp, ServeError, ShedError
from repro.serve.client import (
    IDEMPOTENT_POSTS,
    ServeClient,
    ServeClientError,
)
from repro.serve.daemon import DEFAULT_PORT, ServeDaemon
from repro.serve.jobs import Job, JobQueue, QueueDraining
from repro.serve.records import error_body, malformed_record, result_record
from repro.serve.resilience import (
    AdmissionController,
    Deadline,
    DeadlineExceeded,
    ResilienceConfig,
    RetryPolicy,
)
from repro.serve.registry import (
    ANY_BUCKET,
    ConfigEntry,
    ServeRegistry,
    bucket_for,
    program_digest,
    size_bucket,
)
from repro.serve.store import ArtifactStore

__all__ = [
    "ANY_BUCKET",
    "AdmissionController",
    "ArtifactStore",
    "ConfigEntry",
    "DEFAULT_PORT",
    "Deadline",
    "DeadlineExceeded",
    "IDEMPOTENT_POSTS",
    "Job",
    "JobQueue",
    "QueueDraining",
    "ResilienceConfig",
    "RetryPolicy",
    "ServeApp",
    "ServeClient",
    "ServeClientError",
    "ServeDaemon",
    "ServeError",
    "ServeRegistry",
    "ShedError",
    "bucket_for",
    "error_body",
    "malformed_record",
    "program_digest",
    "result_record",
    "size_bucket",
]
