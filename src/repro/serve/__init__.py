"""Tuning-as-a-service (``repro serve``): the compile-and-serve daemon.

The paper's model is compile-once, tune-per-machine, run-many; this
package makes that resident.  A long-lived daemon compiles each program
once, keeps hot :class:`~repro.compiler.codegen.CompiledTransform`\\ s
and tuned :class:`~repro.compiler.config.ChoiceConfig`\\ s in a
versioned in-memory registry keyed by ``(program blake2b hash, machine
profile, input-size bucket)``, and answers run / batch / tune / check
requests over an HTTP/JSON API (stdlib only), with an on-disk artifact
store behind it for restart recovery.

* :mod:`repro.serve.registry` — the versioned registry (O(1) lock-free
  hot-path lookup, atomic version bumps).
* :mod:`repro.serve.store` — the durable artifact store (atomic writes,
  corrupt-artifact-tolerant recovery).
* :mod:`repro.serve.app` — endpoint logic, transport-independent.
* :mod:`repro.serve.jobs` — background workers for tuning requests.
* :mod:`repro.serve.daemon` — the stdlib HTTP front end.
* :mod:`repro.serve.client` — the thin client behind ``repro client``.
* :mod:`repro.serve.records` — the canonical result records shared with
  ``repro batch`` (bit-parity between served and direct execution).
"""

from repro.serve.app import ServeApp, ServeError
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.daemon import DEFAULT_PORT, ServeDaemon
from repro.serve.jobs import Job, JobQueue
from repro.serve.records import malformed_record, result_record
from repro.serve.registry import (
    ANY_BUCKET,
    ConfigEntry,
    ServeRegistry,
    bucket_for,
    program_digest,
    size_bucket,
)
from repro.serve.store import ArtifactStore

__all__ = [
    "ANY_BUCKET",
    "ArtifactStore",
    "ConfigEntry",
    "DEFAULT_PORT",
    "Job",
    "JobQueue",
    "ServeApp",
    "ServeClient",
    "ServeClientError",
    "ServeDaemon",
    "ServeError",
    "ServeRegistry",
    "bucket_for",
    "malformed_record",
    "program_digest",
    "result_record",
    "size_bucket",
]
