"""Serving-layer resilience primitives: admission control, deadlines,
structured shedding, drain coordination, and the client retry policy.

The serve daemon fronts heavy traffic with finite resources, so every
overload decision is made *explicitly* here instead of implicitly by
queue growth:

* :class:`AdmissionController` — a weighted concurrency limiter plus a
  bounded accept queue in front of ``ServeApp.run/batch/tune``.  A
  request is admitted immediately when in-flight weight fits
  ``max_concurrency``, waits (bounded, deadline-aware) when the accept
  queue has room, and otherwise is **shed immediately** with a
  structured :class:`ShedError` (HTTP 429/503 + ``Retry-After`` + a
  machine-readable ``reason``) — never silently queued to OOM.  Batch
  requests weigh their request count, so one 1024-line batch cannot
  starve the limiter accounting.
* :class:`Deadline` — a per-request wall-clock budget (``deadline_ms``
  on ``/run`` and ``/batch``, or the server default).  The batch
  engine's drain loop checks it at bucket/segment boundaries; an
  expired request gets a well-formed :class:`DeadlineExceeded` record
  while bucket-mates already executing complete normally.
* :class:`RetryPolicy` — bounded exponential backoff with deterministic
  (seeded, blake2b-derived) jitter for :class:`~repro.serve.client.
  ServeClient`; honors ``Retry-After`` hints on sheds.
* :class:`ResilienceConfig` — one knob bundle threaded from the CLI
  through the app to the admission controller and drain logic.

Counters (on the app's :class:`~repro.observe.trace.TraceSink`):
``serve.shed.capacity`` / ``serve.shed.queue_timeout`` /
``serve.shed.draining`` / ``serve.shed.injected``,
``serve.deadline.expired`` / ``serve.deadline.batch_requests``,
``serve.drain.begun`` / ``serve.drain.completed`` /
``serve.drain.forced``; the client counts ``serve.retry.attempts`` /
``serve.retry.recoveries`` / ``serve.retry.giveups`` on its own sink.
"""

from __future__ import annotations

import contextlib
import hashlib
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Mapping, Optional


class ServeError(Exception):
    """An error with an HTTP status; the daemon maps it to a JSON body.

    ``code`` is the machine-readable reason (``"capacity"``,
    ``"draining"``, ``"deadline_exceeded"``, …) clients branch on;
    ``retry_after`` (seconds) is the shed back-pressure hint surfaced
    both in the body and as the HTTP ``Retry-After`` header.
    """

    def __init__(
        self,
        status: int,
        message: str,
        code: Optional[str] = None,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.code = code
        self.retry_after = retry_after


class ShedError(ServeError):
    """Load shed: the request was refused *before* any work happened,
    so retrying it (after ``retry_after``) is always safe."""


class DeadlineExceeded(Exception):
    """A request's deadline budget expired before (or between) its
    execution boundaries.  The message is a pure function of the budget
    — no wall-clock content — so shed records stay byte-deterministic.
    """


@dataclass
class ResilienceConfig:
    """Serving-resilience knobs (one instance per :class:`ServeApp`).

    ``max_concurrency`` and ``max_queue`` are *weighted* units: a run or
    tune costs 1, a batch costs its request-line count (clamped to
    ``max_concurrency`` so a maximal batch occupies the whole limiter
    rather than becoming unservable).  ``queue_high_water`` is the
    readiness threshold: ``/ready`` reports saturated once the accept
    queue holds that many units.
    """

    max_concurrency: int = 8
    max_queue: int = 16
    queue_timeout_s: float = 30.0
    default_deadline_ms: Optional[float] = None
    drain_timeout_s: float = 10.0
    retry_after_s: float = 0.05

    def __post_init__(self) -> None:
        if self.max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if self.max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        if self.default_deadline_ms is not None and self.default_deadline_ms <= 0:
            raise ValueError("default_deadline_ms must be > 0")

    @property
    def queue_high_water(self) -> int:
        return max(1, self.max_queue // 2)

    def clamp_cost(self, cost: int) -> int:
        return max(1, min(int(cost), self.max_concurrency))


class Deadline:
    """A monotonic wall-clock budget for one request."""

    __slots__ = ("budget_ms", "_expires_at")

    def __init__(self, budget_ms: float) -> None:
        if budget_ms <= 0:
            raise ValueError("deadline budget must be > 0 ms")
        self.budget_ms = float(budget_ms)
        self._expires_at = time.monotonic() + self.budget_ms / 1000.0

    @classmethod
    def from_payload(
        cls,
        payload: Mapping[str, Any],
        default_ms: Optional[float] = None,
    ) -> Optional["Deadline"]:
        """The request's ``deadline_ms`` (or the server default, or
        ``None`` for unbounded).  A malformed value is a 400."""
        raw = payload.get("deadline_ms", default_ms)
        if raw is None:
            return None
        try:
            budget = float(raw)
            if budget <= 0:
                raise ValueError
        except (TypeError, ValueError):
            raise ServeError(
                400, f"bad deadline_ms {raw!r}: must be a number > 0"
            ) from None
        return cls(budget)

    def expired(self) -> bool:
        return time.monotonic() >= self._expires_at

    def remaining_s(self) -> float:
        return max(0.0, self._expires_at - time.monotonic())

    def error(self) -> DeadlineExceeded:
        """The structured per-request error — deterministic text (the
        budget, never the elapsed time) so batch records keep byte
        parity across runs."""
        return DeadlineExceeded(
            f"{self.budget_ms:g}ms request budget exhausted"
        )

    def serve_error(self) -> ServeError:
        return ServeError(
            504,
            f"deadline_exceeded: {self.budget_ms:g}ms request budget "
            "exhausted",
            code="deadline_exceeded",
        )


class AdmissionController:
    """Weighted concurrency limiter + bounded accept queue.

    All state lives under one condition variable: ``_inflight`` is the
    weighted cost of admitted requests, ``_queued`` the weighted cost of
    requests waiting for a slot.  ``admit`` is a context manager; the
    slot is released on exit however the request ends.

    Shedding is immediate and structured:

    * draining → 503 ``draining`` (retry against the next instance),
    * accept queue full → 429 ``capacity``,
    * queued past ``queue_timeout_s`` → 429 ``queue_timeout``,
    * queued past the request deadline → the deadline's 504.
    """

    def __init__(self, config: ResilienceConfig, sink=None) -> None:
        self.config = config
        self.sink = sink
        self._cond = threading.Condition()
        self._inflight = 0
        self._queued = 0
        self._draining = False

    # -- introspection ------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    def snapshot(self) -> Dict[str, Any]:
        with self._cond:
            return {
                "inflight": self._inflight,
                "queued": self._queued,
                "max_concurrency": self.config.max_concurrency,
                "max_queue": self.config.max_queue,
                "draining": self._draining,
            }

    def ready(self) -> Dict[str, Any]:
        """The readiness probe's verdict: accepting and not saturated."""
        with self._cond:
            if self._draining:
                return {"ready": False, "reason": "draining"}
            if self._queued >= self.config.queue_high_water:
                return {"ready": False, "reason": "saturated"}
            return {"ready": True, "reason": "ok"}

    # -- admission ----------------------------------------------------------

    @contextlib.contextmanager
    def admit(
        self,
        route: str,
        cost: int = 1,
        deadline: Optional[Deadline] = None,
        forced_shed: bool = False,
    ) -> Iterator[None]:
        cost = self.config.clamp_cost(cost)
        self._acquire(route, cost, deadline, forced_shed)
        try:
            yield
        finally:
            with self._cond:
                self._inflight -= cost
                self._cond.notify_all()

    def _shed(
        self, route: str, counter: str, status: int, code: str, message: str
    ) -> ShedError:
        self._count(f"serve.shed.{counter}")
        retry_after = (
            self.config.drain_timeout_s
            if code == "draining"
            else self.config.retry_after_s
        )
        return ShedError(
            status,
            f"{route} shed: {message}",
            code=code,
            retry_after=retry_after,
        )

    def _acquire(
        self,
        route: str,
        cost: int,
        deadline: Optional[Deadline],
        forced_shed: bool,
    ) -> None:
        timeout_at = time.monotonic() + self.config.queue_timeout_s
        with self._cond:
            if forced_shed:
                raise self._shed(
                    route, "injected", 429, "capacity",
                    "injected shed storm (dev/test)",
                )
            queued = False
            try:
                while True:
                    if self._draining:
                        raise self._shed(
                            route, "draining", 503, "draining",
                            "daemon is draining; retry against the next "
                            "instance",
                        )
                    if self._inflight + cost <= self.config.max_concurrency:
                        self._inflight += cost
                        return
                    if not queued:
                        if self._queued + cost > self.config.max_queue:
                            raise self._shed(
                                route, "capacity", 429, "capacity",
                                f"concurrency limit "
                                f"{self.config.max_concurrency} and accept "
                                f"queue {self.config.max_queue} are full",
                            )
                        queued = True
                        self._queued += cost
                    now = time.monotonic()
                    if now >= timeout_at:
                        raise self._shed(
                            route, "queue_timeout", 429, "queue_timeout",
                            f"queued past "
                            f"{self.config.queue_timeout_s:g}s without a "
                            "slot",
                        )
                    if deadline is not None and deadline.expired():
                        self._count("serve.deadline.expired")
                        raise deadline.serve_error()
                    wait = timeout_at - now
                    if deadline is not None:
                        wait = min(wait, deadline.remaining_s())
                    self._cond.wait(timeout=max(0.001, wait))
            finally:
                if queued:
                    self._queued -= cost

    # -- drain --------------------------------------------------------------

    def begin_drain(self) -> bool:
        """Flip the draining flag; returns True the first time only.
        Queued waiters wake and shed with ``draining``."""
        with self._cond:
            if self._draining:
                return False
            self._draining = True
            self._cond.notify_all()
            return True

    def wait_idle(self, timeout: float) -> bool:
        """Block until no request is in flight (or ``timeout``)."""
        with self._cond:
            return self._cond.wait_for(
                lambda: self._inflight == 0 and self._queued == 0,
                timeout=timeout,
            )

    def _count(self, name: str) -> None:
        if self.sink is not None:
            self.sink.count(name)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    The jitter fraction is blake2b-derived from ``(seed, route,
    attempt)`` — the same construction as the fault injector — so a
    retry schedule replays identically across runs, which keeps the
    chaos harness deterministic end to end.  ``Retry-After`` hints from
    sheds are honored (capped at ``max_backoff_s``) and never shortened
    below the server's ask.
    """

    retries: int = 3
    backoff_s: float = 0.05
    max_backoff_s: float = 2.0
    jitter: float = 0.25
    seed: int = 0x52E7

    def delay(
        self,
        route: str,
        attempt: int,
        retry_after: Optional[float] = None,
    ) -> float:
        base = min(self.max_backoff_s, self.backoff_s * (2.0 ** attempt))
        digest = hashlib.blake2b(
            f"{self.seed}|{route}|{attempt}".encode("utf-8"), digest_size=8
        ).digest()
        fraction = int.from_bytes(digest, "big") / 2.0**64
        delay = base * (1.0 + self.jitter * (2.0 * fraction - 1.0))
        if retry_after is not None:
            delay = max(delay, min(float(retry_after), self.max_backoff_s))
        return delay
