"""Background job queue for the serve daemon's tuning requests.

``POST /tune`` must not block the request handler for the minutes a
genetic-tuning run takes, so tune requests enqueue here and run on
daemon worker threads (each of which may itself fan measurements over
the fault-tolerant :class:`~repro.autotuner.parallel.ParallelEvaluator`
process pool).  Jobs move ``queued → running → done | failed``; the
runner's return value becomes ``job.result``, its exception becomes
``job.error``.  State transitions happen under one lock and
:meth:`JobQueue.get` returns plain snapshots, so handlers polling
``GET /jobs/<id>`` never see a torn job.
"""

from __future__ import annotations

import queue
import threading
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass
class Job:
    """One queued unit of background work."""

    job_id: str
    kind: str
    payload: Dict[str, Any]
    state: str = "queued"  # queued | running | done | failed
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None

    def snapshot(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "job": self.job_id,
            "kind": self.kind,
            "state": self.state,
        }
        if self.result is not None:
            record["result"] = self.result
        if self.error is not None:
            record["error"] = self.error
        return record


class JobQueue:
    """FIFO background workers over a runner callback.

    ``runner(job)`` executes one job and returns its result dict.  A
    raising runner marks the job ``failed`` with the exception text —
    one bad tune request never kills a worker thread.
    """

    def __init__(
        self, runner: Callable[[Job], Dict[str, Any]], workers: int = 1
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._runner = runner
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._next = 0
        self._threads: List[threading.Thread] = []
        for index in range(workers):
            thread = threading.Thread(
                target=self._worker, name=f"serve-job-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def submit(self, kind: str, payload: Dict[str, Any]) -> str:
        with self._lock:
            self._next += 1
            job_id = f"j{self._next}"
            self._jobs[job_id] = Job(job_id, kind, dict(payload))
        self._queue.put(job_id)
        return job_id

    def get(self, job_id: str) -> Dict[str, Any]:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(f"unknown job {job_id!r}")
            return job.snapshot()

    def jobs(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [
                self._jobs[job_id].snapshot()
                for job_id in sorted(
                    self._jobs, key=lambda j: int(j[1:])
                )
            ]

    def wait(self, job_id: str, timeout: float = 60.0) -> Dict[str, Any]:
        """Poll until the job leaves the queue/running states (testing
        and client convenience; the HTTP API itself never blocks)."""
        import time

        deadline = time.monotonic() + timeout
        while True:
            snapshot = self.get(job_id)
            if snapshot["state"] in ("done", "failed"):
                return snapshot
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still {snapshot['state']}")
            time.sleep(0.02)

    def close(self) -> None:
        """Stop accepting work and let workers drain their sentinel."""
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=5.0)

    # -- worker loop --------------------------------------------------------

    def _worker(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            with self._lock:
                job = self._jobs[job_id]
                job.state = "running"
            try:
                result = self._runner(job)
            except Exception:
                with self._lock:
                    job.state = "failed"
                    job.error = traceback.format_exc(limit=8)
            else:
                with self._lock:
                    job.state = "done"
                    job.result = result
