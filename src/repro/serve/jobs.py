"""Background job queue for the serve daemon's tuning requests.

``POST /tune`` must not block the request handler for the minutes a
genetic-tuning run takes, so tune requests enqueue here and run on
daemon worker threads (each of which may itself fan measurements over
the fault-tolerant :class:`~repro.autotuner.parallel.ParallelEvaluator`
process pool).  Jobs move ``queued → running → done | failed``; the
runner's return value becomes ``job.result``, its exception becomes
``job.error``.  All state transitions happen under one condition
variable: :meth:`JobQueue.get` returns plain snapshots (handlers
polling ``GET /jobs/<id>`` never see a torn job) and :meth:`JobQueue.
wait` blocks *event-based* on the condition — no busy-polling.

Resilience hooks:

* **Idempotent enqueue** — ``submit(..., idempotency_key=...)`` returns
  the existing job for a repeated key instead of enqueuing a duplicate,
  so a client that retries a tune request over a flaky connection never
  starts the same tuning run twice.
* **Drain** — :meth:`drain` stops accepting work and cancels
  still-queued jobs (``queued → cancelled``) while the currently
  running job finishes; :meth:`wait_idle` blocks until workers go
  quiet.  ``close()`` without a preceding drain keeps the original
  semantics (queued jobs complete before the sentinel).
"""

from __future__ import annotations

import queue
import threading
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Terminal job states (waiting on a job ends when it reaches one).
TERMINAL_STATES = ("done", "failed", "cancelled")


class QueueDraining(RuntimeError):
    """Raised by ``submit`` once the queue is draining — the serve app
    maps it to a structured 503 shed."""


@dataclass
class Job:
    """One queued unit of background work."""

    job_id: str
    kind: str
    payload: Dict[str, Any]
    state: str = "queued"  # queued | running | done | failed | cancelled
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None

    def snapshot(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "job": self.job_id,
            "kind": self.kind,
            "state": self.state,
        }
        if self.result is not None:
            record["result"] = self.result
        if self.error is not None:
            record["error"] = self.error
        return record


class JobQueue:
    """FIFO background workers over a runner callback.

    ``runner(job)`` executes one job and returns its result dict.  A
    raising runner marks the job ``failed`` with the exception text —
    one bad tune request never kills a worker thread.
    """

    def __init__(
        self, runner: Callable[[Job], Dict[str, Any]], workers: int = 1
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._runner = runner
        self._cond = threading.Condition()
        self._jobs: Dict[str, Job] = {}
        self._keys: Dict[str, str] = {}  # idempotency key -> job id
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._next = 0
        self._running = 0
        self._draining = False
        self._threads: List[threading.Thread] = []
        for index in range(workers):
            thread = threading.Thread(
                target=self._worker, name=f"serve-job-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def submit(
        self,
        kind: str,
        payload: Dict[str, Any],
        idempotency_key: Optional[str] = None,
    ) -> Tuple[str, bool]:
        """Enqueue one job; returns ``(job_id, deduped)``.

        A repeated ``idempotency_key`` returns the original job id with
        ``deduped=True`` and enqueues nothing — the retry contract for
        the non-idempotent ``/tune`` route.
        """
        with self._cond:
            if self._draining:
                raise QueueDraining("job queue is draining")
            if idempotency_key is not None:
                existing = self._keys.get(idempotency_key)
                if existing is not None:
                    return existing, True
            self._next += 1
            job_id = f"j{self._next}"
            self._jobs[job_id] = Job(job_id, kind, dict(payload))
            if idempotency_key is not None:
                self._keys[idempotency_key] = job_id
        self._queue.put(job_id)
        return job_id, False

    def get(self, job_id: str) -> Dict[str, Any]:
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(f"unknown job {job_id!r}")
            return job.snapshot()

    def jobs(self) -> List[Dict[str, Any]]:
        with self._cond:
            return [
                self._jobs[job_id].snapshot()
                for job_id in sorted(
                    self._jobs, key=lambda j: int(j[1:])
                )
            ]

    def wait(self, job_id: str, timeout: float = 60.0) -> Dict[str, Any]:
        """Block (event-based, no polling) until the job reaches a
        terminal state; raises ``TimeoutError`` past ``timeout``."""
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(f"unknown job {job_id!r}")
            if not self._cond.wait_for(
                lambda: job.state in TERMINAL_STATES, timeout=timeout
            ):
                raise TimeoutError(f"job {job_id} still {job.state}")
            return job.snapshot()

    # -- drain / shutdown ---------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    def drain(self) -> int:
        """Stop accepting jobs and cancel everything still queued; the
        running job (if any) finishes.  Returns the cancel count."""
        cancelled = 0
        with self._cond:
            self._draining = True
            for job in self._jobs.values():
                if job.state == "queued":
                    job.state = "cancelled"
                    job.error = "cancelled: daemon draining"
                    cancelled += 1
            self._cond.notify_all()
        return cancelled

    def wait_idle(self, timeout: float) -> bool:
        """Block until no worker is running a job (or ``timeout``)."""
        with self._cond:
            return self._cond.wait_for(
                lambda: self._running == 0, timeout=timeout
            )

    def close(self) -> None:
        """Stop accepting work and let workers drain their sentinel."""
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=5.0)

    # -- worker loop --------------------------------------------------------

    def _worker(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            with self._cond:
                job = self._jobs[job_id]
                if job.state == "cancelled":
                    continue
                job.state = "running"
                self._running += 1
                self._cond.notify_all()
            try:
                result = self._runner(job)
            except Exception:
                with self._cond:
                    job.state = "failed"
                    job.error = traceback.format_exc(limit=8)
                    self._running -= 1
                    self._cond.notify_all()
            else:
                with self._cond:
                    job.state = "done"
                    job.result = result
                    self._running -= 1
                    self._cond.notify_all()
