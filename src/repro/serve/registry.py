"""The versioned in-memory registry behind the serve daemon.

Compile-once, tune-per-machine, run-many (the paper's Figure 2 split,
made resident): programs are compiled exactly once per content hash,
and tuned configurations are registered under

    (program blake2b hash, machine profile, input-size bucket)

with a monotonically increasing **version** per key.  The hot path —
``lookup()`` followed by execution — is two dict reads returning an
immutable :class:`ConfigEntry` snapshot: no parsing, no config
serialization, no locks.  Writers (``publish``) build a fresh entry and
swap it in under the registry lock, so readers observe either the old
version or the new one, never a torn state; in-flight runs that already
hold an entry keep executing their version while new requests see the
bump.

Size buckets are power-of-two ceilings of the request's largest input
extent (``b16``, ``b32``, …).  A config published under the wildcard
bucket ``"any"`` serves every size whose exact bucket has no entry —
the genetic tuner emits multi-level selectors that already encode
size-dependence, so ``"any"`` is the common case and exact buckets are
the specialization hook.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.batch.engine import BatchEngine
from repro.batch.request import config_digest
from repro.compiler import ChoiceConfig, CompiledProgram, compile_program

#: Wildcard size bucket: matches any request size on fallback.
ANY_BUCKET = "any"


def program_digest(source: str) -> str:
    """Content hash of program source (the registry's program key)."""
    return hashlib.blake2b(source.encode("utf-8"), digest_size=16).hexdigest()


def size_bucket(extent: int) -> str:
    """Power-of-two-ceiling bucket of one size extent (``b1``, ``b2``,
    ``b4`` …).  Non-positive extents share ``b1``."""
    if extent <= 1:
        return "b1"
    return f"b{1 << (int(extent) - 1).bit_length()}"


def bucket_for(
    shapes: Sequence[Sequence[int]],
    sizes: Optional[Mapping[str, int]] = None,
) -> str:
    """The bucket of a request: largest extent across its input shapes
    and explicit size bindings."""
    extent = 0
    for shape in shapes:
        for dim in shape:
            extent = max(extent, int(dim))
    for value in (sizes or {}).values():
        extent = max(extent, int(value))
    return size_bucket(extent)


@dataclass(frozen=True)
class ConfigEntry:
    """One immutable registry snapshot: a tuned config at a version.

    ``digest`` is the batch-engine content digest, precomputed once at
    publish so request hot paths never serialize the config.  The
    ``config`` object is shared by reference and must never be mutated
    — publish a new version instead.
    """

    version: int
    config: ChoiceConfig
    digest: str
    origin: str = "publish"  # "publish" | "tune" | "store"
    meta: Mapping[str, object] = field(default_factory=dict)


class ProgramEntry:
    """A compiled program resident in the daemon, plus the long-lived
    batch engine that serves its ``/batch`` traffic (engines bucket per
    program token, so sharing one engine across requests reuses its
    stacked-plan cache)."""

    def __init__(
        self, phash: str, source: str, program: CompiledProgram, sink=None
    ):
        self.phash = phash
        self.source = source
        self.program = program
        self.engine = BatchEngine(sink=sink)
        #: BatchEngine is submit/gather-cycle stateful; one cycle at a time.
        self.engine_lock = threading.Lock()

    def transforms(self) -> List[str]:
        return sorted(self.program.transforms)


class ServeRegistry:
    """Programs + versioned config entries, with cold/warm accounting.

    Thread model: ``_programs`` and ``_configs`` are plain dicts whose
    values are immutable once inserted (entries are replaced wholesale on
    version bump), so the read path is lock-free under the GIL; all
    mutation happens under ``_lock``.
    """

    def __init__(self, sink=None) -> None:
        self.sink = sink
        self._lock = threading.RLock()
        self._programs: Dict[str, ProgramEntry] = {}
        self._configs: Dict[Tuple[str, str, str], ConfigEntry] = {}

    # -- programs -----------------------------------------------------------

    def register_program(
        self, source: str
    ) -> Tuple[ProgramEntry, bool]:
        """Compile-once registration; returns (entry, was_cached)."""
        phash = program_digest(source)
        entry = self._programs.get(phash)
        if entry is not None:
            self._count("serve.program_hits")
            return entry, True
        with self._lock:
            entry = self._programs.get(phash)
            if entry is not None:
                self._count("serve.program_hits")
                return entry, True
            program = compile_program(source)
            entry = ProgramEntry(phash, source, program, sink=self.sink)
            self._programs[phash] = entry
            self._count("serve.compiles")
            return entry, False

    def program(self, phash: str) -> ProgramEntry:
        entry = self._programs.get(phash)
        if entry is None:
            raise KeyError(f"unknown program {phash!r} (POST /compile first)")
        return entry

    def programs(self) -> List[str]:
        return sorted(self._programs)

    # -- configs ------------------------------------------------------------

    def publish(
        self,
        phash: str,
        machine: str,
        bucket: str,
        config: ChoiceConfig,
        origin: str = "publish",
        meta: Optional[Mapping[str, object]] = None,
        version: Optional[int] = None,
    ) -> ConfigEntry:
        """Atomically version-bump (or seed, during store recovery, at an
        explicit ``version``) the entry for one key.  The config object
        is owned by the registry from here on and must not be mutated by
        the caller."""
        key = (phash, machine, bucket)
        with self._lock:
            current = self._configs.get(key)
            if version is None:
                version = (current.version if current else 0) + 1
            entry = ConfigEntry(
                version=version,
                config=config,
                digest=config_digest(config),
                origin=origin,
                meta=dict(meta or {}),
            )
            self._configs[key] = entry
            self._count("serve.version_bumps")
            return entry

    def current_version(self, phash: str, machine: str, bucket: str) -> int:
        """The registered version for one exact key (0 when absent) —
        the durable-publish path reserves ``current_version() + 1``,
        writes the artifact, and only then commits the registry bump, so
        an acknowledged version is always on disk."""
        entry = self._configs.get((phash, machine, bucket))
        return entry.version if entry is not None else 0

    def lookup(
        self, phash: str, machine: str, bucket: str
    ) -> Optional[ConfigEntry]:
        """O(1) hot-path lookup: exact bucket, then the ``any`` wildcard.
        Counts a config hit or miss either way."""
        entry = self._configs.get((phash, machine, bucket))
        if entry is None and bucket != ANY_BUCKET:
            entry = self._configs.get((phash, machine, ANY_BUCKET))
        self._count("serve.config_hits" if entry else "serve.config_misses")
        return entry

    def peek(
        self, phash: str, machine: str, bucket: str
    ) -> Optional[ConfigEntry]:
        """Lookup without hit/miss accounting (introspection only)."""
        return self._configs.get((phash, machine, bucket))

    def entries(self) -> Dict[str, Dict[str, object]]:
        """A JSON-able snapshot of every registered config entry."""
        snapshot = {}
        for (phash, machine, bucket), entry in sorted(self._configs.items()):
            snapshot["/".join((phash, machine, bucket))] = {
                "version": entry.version,
                "digest": entry.digest,
                "origin": entry.origin,
            }
        return snapshot

    # -- accounting ---------------------------------------------------------

    def _count(self, name: str) -> None:
        if self.sink is not None:
            self.sink.count(name)
