"""On-disk artifact store behind the serve registry.

Layout (everything human-readable JSON / DSL text)::

    <root>/
      programs/<hash>.pbcc            # program source, verbatim
      programs/<hash>.meta.json       # transforms, registration info
      configs/<hash>/<machine>/<bucket>.json       # ChoiceConfig JSON
      configs/<hash>/<machine>/<bucket>.meta.json  # version, digest, origin

Writes are atomic **and durable**: the temp file is fsync'd before
``os.replace`` and the directory is fsync'd after, so neither a killed
daemon (atomicity) nor a machine crash (durability) can lose an
acknowledged publish or leave a half-written artifact; a
truncated/corrupt artifact is skipped (and counted) during recovery
instead of poisoning startup.  An optional
:class:`~repro.faults.injector.FaultInjector` turns on deterministic
``store-io-fail`` injection: a firing save raises ``OSError`` *before*
any byte reaches disk, the failure mode the chaos harness uses to prove
publish-then-crash recovery never regresses versions.  Recovery
(:meth:`ArtifactStore.recover_into`) replays programs first, then config
entries at their **persisted** versions — a restarted daemon resumes the
version sequence instead of resetting it, so clients comparing versions
across a restart never see them move backwards.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Iterator, Optional, Tuple

from repro.compiler import ChoiceConfig

from repro.serve.registry import ServeRegistry


def _fsync_dir(directory: str) -> None:
    """fsync a directory so a just-replaced entry survives a machine
    crash (no-op on platforms that refuse directory fds)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _atomic_write(path: str, text: str) -> None:
    directory = os.path.dirname(path)
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            # Durability, not just atomicity: the data must be on disk
            # before the rename makes it visible...
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        # ...and the rename itself must be on disk before the publish
        # is acknowledged.
        _fsync_dir(directory)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


class ArtifactStore:
    """Durable programs + configs under one root directory."""

    def __init__(self, root: str, injector=None) -> None:
        self.root = root
        self.injector = injector
        os.makedirs(self.programs_dir, exist_ok=True)
        os.makedirs(self.configs_dir, exist_ok=True)

    def _maybe_fail(self, identity: str, attempt: int = 0) -> None:
        if self.injector is not None and self.injector.fires(
            "store-io-fail", identity, attempt
        ):
            raise OSError(f"injected store I/O failure writing {identity}")

    @property
    def programs_dir(self) -> str:
        return os.path.join(self.root, "programs")

    @property
    def configs_dir(self) -> str:
        return os.path.join(self.root, "configs")

    # -- programs -----------------------------------------------------------

    def save_program(
        self, phash: str, source: str, meta: Optional[Dict] = None
    ) -> None:
        _atomic_write(
            os.path.join(self.programs_dir, f"{phash}.pbcc"), source
        )
        _atomic_write(
            os.path.join(self.programs_dir, f"{phash}.meta.json"),
            json.dumps(dict(meta or {}), indent=2, sort_keys=True) + "\n",
        )

    def load_programs(self) -> Iterator[Tuple[str, str]]:
        """Yield ``(hash, source)`` for every stored program."""
        if not os.path.isdir(self.programs_dir):
            return
        for name in sorted(os.listdir(self.programs_dir)):
            if not name.endswith(".pbcc"):
                continue
            path = os.path.join(self.programs_dir, name)
            with open(path, "r", encoding="utf-8") as handle:
                yield name[: -len(".pbcc")], handle.read()

    # -- configs ------------------------------------------------------------

    def _config_paths(
        self, phash: str, machine: str, bucket: str
    ) -> Tuple[str, str]:
        base = os.path.join(self.configs_dir, phash, machine, bucket)
        return base + ".json", base + ".meta.json"

    def save_config(
        self,
        phash: str,
        machine: str,
        bucket: str,
        config: ChoiceConfig,
        meta: Dict,
        attempt: int = 0,
    ) -> None:
        """Persist one config entry; ``meta`` must carry ``version``.

        ``attempt`` is the caller's retry counter for this publish —
        under the injector's default at-most-once rule a ``store-io-
        fail`` fires on attempt 0 and the retry lands durably, so an
        injected plan proves the retry contract instead of wedging the
        key forever."""
        self._maybe_fail(
            f"configs/{phash}/{machine}/{bucket}"
            f"/v{int(meta.get('version', 1))}",
            attempt=attempt,
        )
        config_path, meta_path = self._config_paths(phash, machine, bucket)
        _atomic_write(config_path, config.to_json())
        _atomic_write(
            meta_path, json.dumps(meta, indent=2, sort_keys=True) + "\n"
        )

    def load_configs(
        self,
    ) -> Iterator[Tuple[str, str, str, Optional[ChoiceConfig], Dict]]:
        """Yield ``(hash, machine, bucket, config, meta)`` per entry.
        A corrupt artifact yields ``config=None`` instead of raising, so
        recovery can count the skip without poisoning boot."""
        if not os.path.isdir(self.configs_dir):
            return
        for phash in sorted(os.listdir(self.configs_dir)):
            program_dir = os.path.join(self.configs_dir, phash)
            if not os.path.isdir(program_dir):
                continue
            for machine in sorted(os.listdir(program_dir)):
                machine_dir = os.path.join(program_dir, machine)
                if not os.path.isdir(machine_dir):
                    continue
                for name in sorted(os.listdir(machine_dir)):
                    if not name.endswith(".json") or name.endswith(
                        ".meta.json"
                    ):
                        continue
                    bucket = name[: -len(".json")]
                    config_path, meta_path = self._config_paths(
                        phash, machine, bucket
                    )
                    try:
                        with open(config_path, encoding="utf-8") as handle:
                            config = ChoiceConfig.from_json(handle.read())
                        meta: Dict = {}
                        if os.path.exists(meta_path):
                            with open(meta_path, encoding="utf-8") as handle:
                                meta = json.load(handle)
                    except (OSError, ValueError, KeyError, TypeError):
                        yield phash, machine, bucket, None, {}
                        continue
                    yield phash, machine, bucket, config, meta

    # -- recovery -----------------------------------------------------------

    def recover_into(self, registry: ServeRegistry) -> Dict[str, int]:
        """Rebuild a registry from disk: recompile every stored program,
        re-register every config at its persisted version."""
        programs = configs = skipped = 0
        for phash, source in self.load_programs():
            try:
                registry.register_program(source)
                programs += 1
            except Exception:
                skipped += 1
        for phash, machine, bucket, config, meta in self.load_configs():
            if config is None or phash not in registry.programs():
                skipped += 1
                continue
            registry.publish(
                phash,
                machine,
                bucket,
                config,
                origin="store",
                meta=meta,
                version=int(meta.get("version", 1)),
            )
            configs += 1
        return {"programs": programs, "configs": configs, "skipped": skipped}
