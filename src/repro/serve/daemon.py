"""HTTP/JSON front end for :class:`~repro.serve.app.ServeApp`.

Pure marshaling over the stdlib: a :class:`ThreadingHTTPServer` (one
thread per connection, no new dependencies) that parses JSON bodies,
dispatches to the app method for the route, and serializes the response.
All domain errors arrive as :class:`~repro.serve.app.ServeError` and map
to ``{"error": message}`` bodies at the error's status; anything else is
a 500 with the exception text.

``POST /shutdown`` answers first, then stops the server from a helper
thread (``shutdown()`` deadlocks when called from a handler thread), so
clients always get the acknowledgement.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.serve.app import ServeApp, ServeError

#: Default daemon port (spells "PB" on a phone keypad, near enough).
DEFAULT_PORT = 7209


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"
    app: ServeApp  # injected by ServeDaemon via the handler subclass

    # -- routing ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        try:
            if self.path == "/health":
                self._reply(200, self.app.health())
            elif self.path == "/stats":
                self._reply(200, self.app.stats())
            elif self.path.startswith("/jobs/"):
                self._reply(200, self.app.job(self.path[len("/jobs/"):]))
            elif self.path.startswith("/programs/"):
                self._reply(
                    200,
                    self.app.program_info(self.path[len("/programs/"):]),
                )
            else:
                self._reply(404, {"error": f"no route {self.path!r}"})
        except ServeError as exc:
            self._reply(exc.status, {"error": exc.message})
        except Exception as exc:  # never kill the connection thread
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})

    def do_POST(self) -> None:  # noqa: N802
        try:
            payload = self._payload()
            if self.path == "/compile":
                self._reply(200, self.app.compile(payload))
            elif self.path == "/run":
                self._reply(200, self.app.run(payload))
            elif self.path == "/batch":
                self._reply(200, self.app.batch(payload))
            elif self.path == "/tune":
                self._reply(200, self.app.tune(payload))
            elif self.path == "/check":
                self._reply(200, self.app.check(payload))
            elif self.path == "/shutdown":
                self._reply(200, {"ok": True, "state": "stopping"})
                threading.Thread(
                    target=self.server.shutdown, daemon=True
                ).start()
            else:
                self._reply(404, {"error": f"no route {self.path!r}"})
        except ServeError as exc:
            self._reply(exc.status, {"error": exc.message})
        except Exception as exc:
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})

    # -- plumbing -----------------------------------------------------------

    def _payload(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except ValueError as exc:
            raise ServeError(400, f"bad JSON body: {exc}")
        if not isinstance(payload, dict):
            raise ServeError(400, "JSON body must be an object")
        return payload

    def _reply(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt: str, *args: Any) -> None:
        """Per-request access logging is the sink's job (counters and
        latency histograms); keep stderr quiet."""


class ServeDaemon:
    """One app bound to one listening socket.

    ``port=0`` binds an ephemeral port (tests and the latency benchmark
    use this); read it back from :attr:`port`.
    """

    def __init__(
        self, app: ServeApp, host: str = "127.0.0.1", port: int = DEFAULT_PORT
    ) -> None:
        self.app = app
        handler = type("_BoundHandler", (_Handler,), {"app": app})
        self.server = ThreadingHTTPServer((host, port), handler)
        self.server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self.server.server_address[:2]

    @property
    def port(self) -> int:
        return self.server.server_address[1]

    def serve_forever(self) -> None:
        """Block until ``/shutdown`` (or ``stop()``); then drain jobs."""
        try:
            self.server.serve_forever(poll_interval=0.1)
        finally:
            self.server.server_close()
            self.app.close()

    def start_background(self) -> "ServeDaemon":
        """Run the accept loop on a daemon thread (tests, benchmarks)."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self.server.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
