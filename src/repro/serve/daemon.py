"""HTTP/JSON front end for :class:`~repro.serve.app.ServeApp`.

Pure marshaling over the stdlib: a :class:`ThreadingHTTPServer` (one
thread per connection, no new dependencies) that parses JSON bodies,
dispatches to the app method for the route, and serializes the response.
All domain errors arrive as :class:`~repro.serve.app.ServeError` and map
to the structured body of :func:`repro.serve.records.error_body` at the
error's status (sheds and deadline errors carry a machine-readable
``reason`` plus a ``Retry-After`` header); anything else is a 500 with
the exception text.

Resilience at the transport layer:

* A client that disconnects mid-response (``BrokenPipeError`` /
  ``ConnectionResetError`` while writing) is *not* an error worth a
  traceback — and replying to it again on the same dead socket would
  crash the handler loop.  ``_reply`` swallows write-side connection
  errors and counts them (``serve.conn_dropped``).
* ``GET /ready`` is the readiness probe (503 while draining or
  saturated) as distinct from ``GET /health`` liveness.
* ``POST /shutdown`` begins a *graceful drain*: the reply acknowledges
  ``{"state": "draining"}`` immediately, new work sheds with 503, and a
  helper thread waits for in-flight requests plus the running tune job
  (bounded by the hard drain timeout) before stopping the accept loop
  (``shutdown()`` deadlocks when called from a handler thread).
* The listen backlog is bounded (``request_queue_size``) so overload
  pushes back at the kernel instead of accumulating unbounded sockets.
* The deterministic ``conn-drop`` fault kind truncates a response
  mid-body here — declared ``Content-Length``, half the bytes, close —
  which is what a retrying client sees as an ``IncompleteRead``.
"""

from __future__ import annotations

import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.serve.app import ServeApp, ServeError
from repro.serve.records import error_body

#: Default daemon port (spells "PB" on a phone keypad, near enough).
DEFAULT_PORT = 7209

#: Write-side socket failures meaning "the client went away", not "the
#: daemon is broken".
_CONN_ERRORS = (BrokenPipeError, ConnectionResetError, ConnectionAbortedError)


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"
    app: ServeApp  # injected by ServeDaemon via the handler subclass

    # -- routing ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        try:
            if self.path == "/health":
                self._reply(200, self.app.health())
            elif self.path == "/ready":
                verdict = self.app.ready_probe()
                self._reply(200 if verdict["ready"] else 503, verdict)
            elif self.path == "/stats":
                self._reply(200, self.app.stats())
            elif self.path.startswith("/jobs/"):
                self._reply(200, self.app.job(self.path[len("/jobs/"):]))
            elif self.path.startswith("/programs/"):
                self._reply(
                    200,
                    self.app.program_info(self.path[len("/programs/"):]),
                )
            else:
                self._reply(404, error_body(f"no route {self.path!r}"))
        except _CONN_ERRORS:
            self._count_conn_dropped()
        except ServeError as exc:
            self._reply_error(exc)
        except Exception as exc:  # never kill the connection thread
            self._reply(500, error_body(f"{type(exc).__name__}: {exc}"))

    def do_POST(self) -> None:  # noqa: N802
        try:
            payload = self._payload()
            if self.path == "/compile":
                self._reply(200, self.app.compile(payload))
            elif self.path == "/run":
                self._reply(
                    200,
                    self.app.run(payload),
                    drop=self.app.injected_conn_drop("run", payload),
                )
            elif self.path == "/batch":
                self._reply(
                    200,
                    self.app.batch(payload),
                    drop=self.app.injected_conn_drop("batch", payload),
                )
            elif self.path == "/tune":
                self._reply(200, self.app.tune(payload))
            elif self.path == "/check":
                self._reply(200, self.app.check(payload))
            elif self.path == "/shutdown":
                self.app.begin_drain()
                self._reply(200, {"ok": True, "state": "draining"})
                threading.Thread(
                    target=self._drain_then_stop, daemon=True
                ).start()
            else:
                self._reply(404, error_body(f"no route {self.path!r}"))
        except _CONN_ERRORS:
            self._count_conn_dropped()
        except ServeError as exc:
            self._reply_error(exc)
        except Exception as exc:
            self._reply(500, error_body(f"{type(exc).__name__}: {exc}"))

    def _drain_then_stop(self) -> None:
        """Graceful stop: finish admitted work (bounded by the drain
        timeout), then break the accept loop."""
        self.app.drain()
        self.server.shutdown()

    # -- plumbing -----------------------------------------------------------

    def _payload(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        # A client vanishing mid-upload raises a connection error here,
        # caught by the route dispatcher so the handler never runs on a
        # half-read body.
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except ValueError as exc:
            raise ServeError(400, f"bad JSON body: {exc}")
        if not isinstance(payload, dict):
            raise ServeError(400, "JSON body must be an object")
        return payload

    def _reply_error(self, exc: ServeError) -> None:
        self._reply(
            exc.status,
            error_body(exc.message, reason=exc.code,
                       retry_after=exc.retry_after),
            retry_after=exc.retry_after,
        )

    def _reply(
        self,
        status: int,
        payload: Dict[str, Any],
        retry_after: Optional[float] = None,
        drop: bool = False,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            if retry_after is not None:
                # HTTP wants integral seconds; never round a positive
                # hint down to "retry immediately".
                self.send_header(
                    "Retry-After", str(max(1, math.ceil(retry_after)))
                )
            if drop:
                self.send_header("Connection", "close")
            self.end_headers()
            if drop:
                # Injected conn-drop: declared length, half the bytes,
                # then hang up — the client sees an IncompleteRead.
                self.wfile.write(body[: len(body) // 2])
                self.wfile.flush()
                self.close_connection = True
                self._count_conn_dropped()
                return
            self.wfile.write(body)
        except _CONN_ERRORS:
            # The peer hung up while we were answering.  Writing again
            # (e.g. an error reply) would just raise on the same dead
            # socket; count it and let the handler thread end quietly.
            self.close_connection = True
            self._count_conn_dropped()

    def _count_conn_dropped(self) -> None:
        sink = getattr(self.app, "sink", None)
        if sink is not None:
            sink.count("serve.conn_dropped")

    def log_message(self, fmt: str, *args: Any) -> None:
        """Per-request access logging is the sink's job (counters and
        latency histograms); keep stderr quiet."""


class ServeDaemon:
    """One app bound to one listening socket.

    ``port=0`` binds an ephemeral port (tests and the latency benchmark
    use this); read it back from :attr:`port`.  ``backlog`` bounds the
    kernel listen queue — the outermost tier of admission control.
    """

    def __init__(
        self,
        app: ServeApp,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        backlog: int = 64,
    ) -> None:
        self.app = app
        handler = type("_BoundHandler", (_Handler,), {"app": app})
        server_cls = type(
            "_BoundServer",
            (ThreadingHTTPServer,),
            {"request_queue_size": max(1, int(backlog))},
        )
        self.server = server_cls((host, port), handler)
        self.server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self.server.server_address[:2]

    @property
    def port(self) -> int:
        return self.server.server_address[1]

    def serve_forever(self) -> None:
        """Block until ``/shutdown`` (or ``stop()``); then drain jobs."""
        try:
            self.server.serve_forever(poll_interval=0.1)
        finally:
            self.server.server_close()
            self.app.close()

    def start_background(self) -> "ServeDaemon":
        """Run the accept loop on a daemon thread (tests, benchmarks)."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, graceful: bool = True) -> None:
        """Stop the daemon.  ``graceful`` (default) sheds new work and
        waits (bounded) for in-flight requests before closing the
        socket, mirroring ``POST /shutdown`` / SIGTERM."""
        if graceful:
            self.app.begin_drain()
            self.app.drain()
        self.server.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
