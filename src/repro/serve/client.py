"""Thin client for the serve daemon — stdlib ``http.client`` only.

:class:`ServeClient` is the programmatic API; the ``repro client`` CLI
subcommand (:mod:`repro.cli`) wraps it.  The client is deliberately
dumb: it hashes program source locally (the same blake2b the daemon
uses) so the warm path is a single ``/run`` or ``/batch`` round trip,
and transparently registers the source on an unknown-program 404 — the
compile-once handshake costs one extra request, once.

Client-side resilience (the other half of the serving contract):

* **Bounded retries with deterministic backoff** — connection errors
  (refused, reset, truncated response) and structured 429/503 sheds
  retry up to :class:`~repro.serve.resilience.RetryPolicy` attempts,
  sleeping exponential backoff ± seeded jitter between tries.  A shed
  carrying ``Retry-After`` is honored (capped at the policy maximum)
  instead of guessing.
* **Idempotent-only** — retries fire only for routes that are safe to
  replay.  ``/run``, ``/batch``, and ``/check`` are read-only over
  immutable versions; ``/compile`` is content-addressed; ``/tune`` is
  made safe by an ``idempotency_key`` the client auto-generates, so a
  replayed tune dedupes server-side instead of launching twice.
* **Fault identity threading** — payloads carry the caller's ``rid``
  and the client's ``attempt`` counter, so deterministic serve-side
  fault plans (:mod:`repro.faults`) key off request identity and the
  chaos harness replays byte-identically.

Retry accounting lands on an optional sink: ``serve.retry.attempts``
(re-sends), ``serve.retry.recoveries`` (a retry that succeeded),
``serve.retry.giveups`` (budget exhausted).
"""

from __future__ import annotations

import http.client
import json
import time
import uuid
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.serve.daemon import DEFAULT_PORT
from repro.serve.registry import program_digest
from repro.serve.resilience import RetryPolicy

#: Routes safe to replay (see module docstring); everything POSTed
#: outside this set gets exactly one attempt unless it carries an
#: idempotency key.
IDEMPOTENT_POSTS = frozenset(
    {"/compile", "/run", "/batch", "/check", "/shutdown"}
)

#: Transport-level failures worth a retry: the request may never have
#: reached the daemon, or the response was cut off mid-body.
_RETRYABLE_TRANSPORT = (
    ConnectionError,
    http.client.HTTPException,
    TimeoutError,
)


class ServeClientError(Exception):
    """A non-2xx daemon response (carries the HTTP status plus the
    structured ``reason`` / ``retry_after`` fields when present)."""

    def __init__(
        self,
        status: int,
        message: str,
        reason: Optional[str] = None,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(f"[{status}] {message}")
        self.status = status
        self.message = message
        self.reason = reason
        self.retry_after = retry_after

    @property
    def shed(self) -> bool:
        """True when the daemon pushed back (retry later), as opposed
        to rejecting the request itself."""
        return self.status in (429, 503)


class ServeClient:
    """One daemon address; connections are per-request (keep-alive adds
    statefulness the thin client doesn't need)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 60.0,
        retry: Optional[RetryPolicy] = None,
        sink=None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.sink = sink

    # -- transport ----------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping[str, Any]] = None,
    ) -> Dict[str, Any]:
        """One logical request = up to ``1 + retry.retries`` attempts.

        GETs and idempotent POSTs retry on transport failures and on
        429/503 sheds; a POST outside :data:`IDEMPOTENT_POSTS` retries
        only when its payload carries an ``idempotency_key`` (the
        daemon dedupes the replay).  Non-shed HTTP errors (400/404/...)
        never retry — they'd fail identically again.
        """
        retryable = method == "GET" or path in IDEMPOTENT_POSTS
        if not retryable and payload is not None:
            retryable = "idempotency_key" in payload
        body = dict(payload) if payload is not None else None
        attempts = 1 + (self.retry.retries if retryable else 0)
        last_error: Optional[BaseException] = None
        for attempt in range(attempts):
            if body is not None and "rid" in body:
                # Thread the attempt counter through so deterministic
                # serve-side fault plans key off (rid, attempt).
                body["attempt"] = attempt
            if attempt > 0:
                self._count("serve.retry.attempts")
            try:
                result = self._attempt(method, path, body)
            except _RETRYABLE_TRANSPORT as exc:
                last_error = exc
                if attempt + 1 >= attempts:
                    break
                time.sleep(self.retry.delay(path, attempt))
                continue
            except ServeClientError as exc:
                if not (exc.shed and attempt + 1 < attempts):
                    if exc.shed:
                        self._count("serve.retry.giveups")
                    raise
                last_error = exc
                time.sleep(
                    self.retry.delay(path, attempt,
                                     retry_after=exc.retry_after)
                )
                continue
            if attempt > 0:
                self._count("serve.retry.recoveries")
            return result
        self._count("serve.retry.giveups")
        assert last_error is not None
        raise last_error

    def _attempt(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping[str, Any]],
    ) -> Dict[str, Any]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                data = json.loads(raw or b"{}")
            except ValueError:
                # A truncated body on a 2xx is a dropped connection in
                # JSON clothing — classify it as such so it retries.
                raise http.client.IncompleteRead(raw)
            if response.status >= 300:
                retry_after: Optional[float] = None
                header = response.getheader("Retry-After")
                if header is not None:
                    try:
                        retry_after = float(header)
                    except ValueError:
                        retry_after = None
                if isinstance(data, dict):
                    retry_after = data.get("retry_after", retry_after)
                    reason = data.get("reason")
                    message = data.get("error", "unknown error")
                else:
                    reason, message = None, "unknown error"
                raise ServeClientError(
                    response.status, message,
                    reason=reason, retry_after=retry_after,
                )
            return data
        finally:
            connection.close()

    def _count(self, name: str) -> None:
        if self.sink is not None:
            self.sink.count(name)

    # -- endpoints ----------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self.request("GET", "/health")

    def ready(self) -> Dict[str, Any]:
        """Readiness verdict; unlike the raw route this never raises on
        a 503 — ``{"ready": False, ...}`` is an answer, not an error."""
        try:
            return self.request("GET", "/ready")
        except ServeClientError as exc:
            return {"ready": False, "reason": exc.reason or exc.message}

    def stats(self) -> Dict[str, Any]:
        return self.request("GET", "/stats")

    def compile(self, source: str) -> Dict[str, Any]:
        return self.request("POST", "/compile", {"source": source})

    def ensure_program(self, source: str) -> str:
        """The compile-once handshake: return the program hash, sending
        the source over the wire only if the daemon doesn't know it."""
        phash = program_digest(source)
        try:
            self.request("GET", f"/programs/{phash}")
            return phash
        except ServeClientError as exc:
            if exc.status != 404:
                raise
        return self.compile(source)["program"]

    def run(
        self,
        program: str,
        transform: str,
        inputs: Union[Mapping[str, Any], Sequence[Any], None],
        sizes: Optional[Mapping[str, int]] = None,
        machine: Optional[str] = None,
        config: Optional[Mapping[str, Any]] = None,
        deadline_ms: Optional[float] = None,
        rid: Optional[str] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "program": program,
            "transform": transform,
            "inputs": inputs,
        }
        if sizes:
            payload["sizes"] = dict(sizes)
        if machine:
            payload["machine"] = machine
        if config is not None:
            payload["config"] = dict(config)
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        if rid is not None:
            payload["rid"] = rid
        return self.request("POST", "/run", payload)

    def batch(
        self,
        program: str,
        lines: Sequence[str],
        strict: bool = False,
        machine: Optional[str] = None,
        config: Optional[Mapping[str, Any]] = None,
        deadline_ms: Optional[float] = None,
        rid: Optional[str] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "program": program,
            "lines": list(lines),
            "strict": strict,
        }
        if machine:
            payload["machine"] = machine
        if config is not None:
            payload["config"] = dict(config)
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        if rid is not None:
            payload["rid"] = rid
        return self.request("POST", "/batch", payload)

    def tune(
        self, program: str, transform: str, **options: Any
    ) -> Dict[str, Any]:
        payload = {"program": program, "transform": transform, **options}
        # /tune is not naturally idempotent; an auto-generated key makes
        # the replayed request dedupe server-side instead of launching
        # the same tuning run twice.
        payload.setdefault("idempotency_key", uuid.uuid4().hex)
        return self.request("POST", "/tune", payload)

    def job(self, job_id: str) -> Dict[str, Any]:
        return self.request("GET", f"/jobs/{job_id}")

    def wait_job(self, job_id: str, timeout: float = 300.0) -> Dict[str, Any]:
        """Poll a job to a terminal state with capped exponential
        backoff (50 ms doubling to 1 s) — tight enough for short tunes,
        no busy-spin for long ones."""
        deadline = time.monotonic() + timeout
        delay = 0.05
        while True:
            snapshot = self.job(job_id)
            if snapshot["state"] in ("done", "failed", "cancelled"):
                return snapshot
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {snapshot['state']} "
                    f"after {timeout:.0f}s"
                )
            time.sleep(min(delay, max(0.0, deadline - time.monotonic())))
            delay = min(1.0, delay * 2)

    def check(self, program: str) -> Dict[str, Any]:
        return self.request("POST", "/check", {"program": program})

    def shutdown(self) -> Dict[str, Any]:
        return self.request("POST", "/shutdown")
