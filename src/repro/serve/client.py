"""Thin client for the serve daemon — stdlib ``http.client`` only.

:class:`ServeClient` is the programmatic API; the ``repro client`` CLI
subcommand (:mod:`repro.cli`) wraps it.  The client is deliberately
dumb: it hashes program source locally (the same blake2b the daemon
uses) so the warm path is a single ``/run`` or ``/batch`` round trip,
and transparently registers the source on an unknown-program 404 — the
compile-once handshake costs one extra request, once.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.serve.daemon import DEFAULT_PORT
from repro.serve.registry import program_digest


class ServeClientError(Exception):
    """A non-2xx daemon response (carries the HTTP status)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"[{status}] {message}")
        self.status = status
        self.message = message


class ServeClient:
    """One daemon address; connections are per-request (keep-alive adds
    statefulness the thin client doesn't need)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport ----------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping[str, Any]] = None,
    ) -> Dict[str, Any]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            data = json.loads(response.read() or b"{}")
            if response.status >= 300:
                raise ServeClientError(
                    response.status, data.get("error", "unknown error")
                )
            return data
        finally:
            connection.close()

    # -- endpoints ----------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self.request("GET", "/health")

    def stats(self) -> Dict[str, Any]:
        return self.request("GET", "/stats")

    def compile(self, source: str) -> Dict[str, Any]:
        return self.request("POST", "/compile", {"source": source})

    def ensure_program(self, source: str) -> str:
        """The compile-once handshake: return the program hash, sending
        the source over the wire only if the daemon doesn't know it."""
        phash = program_digest(source)
        try:
            self.request("GET", f"/programs/{phash}")
            return phash
        except ServeClientError as exc:
            if exc.status != 404:
                raise
        return self.compile(source)["program"]

    def run(
        self,
        program: str,
        transform: str,
        inputs: Union[Mapping[str, Any], Sequence[Any], None],
        sizes: Optional[Mapping[str, int]] = None,
        machine: Optional[str] = None,
        config: Optional[Mapping[str, Any]] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "program": program,
            "transform": transform,
            "inputs": inputs,
        }
        if sizes:
            payload["sizes"] = dict(sizes)
        if machine:
            payload["machine"] = machine
        if config is not None:
            payload["config"] = dict(config)
        return self.request("POST", "/run", payload)

    def batch(
        self,
        program: str,
        lines: Sequence[str],
        strict: bool = False,
        machine: Optional[str] = None,
        config: Optional[Mapping[str, Any]] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "program": program,
            "lines": list(lines),
            "strict": strict,
        }
        if machine:
            payload["machine"] = machine
        if config is not None:
            payload["config"] = dict(config)
        return self.request("POST", "/batch", payload)

    def tune(self, program: str, transform: str, **options: Any) -> Dict[str, Any]:
        payload = {"program": program, "transform": transform, **options}
        return self.request("POST", "/tune", payload)

    def job(self, job_id: str) -> Dict[str, Any]:
        return self.request("GET", f"/jobs/{job_id}")

    def wait_job(self, job_id: str, timeout: float = 300.0) -> Dict[str, Any]:
        import time

        deadline = time.monotonic() + timeout
        while True:
            snapshot = self.job(job_id)
            if snapshot["state"] in ("done", "failed"):
                return snapshot
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {snapshot['state']} "
                    f"after {timeout:.0f}s"
                )
            time.sleep(0.1)

    def check(self, program: str) -> Dict[str, Any]:
        return self.request("POST", "/check", {"program": program})

    def shutdown(self) -> Dict[str, Any]:
        return self.request("POST", "/shutdown")
