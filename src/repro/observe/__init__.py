"""Observability: structured tracing, metrics, and the stress harness.

Every other subsystem stays silent by default; attach a
:class:`TraceSink` to a :class:`~repro.runtime.task.TaskRecorder`, a
:class:`~repro.runtime.scheduler.WorkStealingScheduler`, an
:class:`~repro.autotuner.evaluation.Evaluator`, or a
:class:`~repro.autotuner.tuner.GeneticTuner` and it captures structured
events, counters, and histograms with JSONL export (``repro trace`` on
the command line).  :mod:`repro.observe.stress` generates seeded random
task graphs and asserts the scheduler's theoretical invariants on them —
the ground truth every performance PR diffs against.
"""

from repro.observe.stress import (
    SHAPES,
    InvariantReport,
    augmented_span,
    check_invariants,
    random_task_graph,
)
from repro.observe.trace import Histogram, ThreadSafeSink, TraceSink, load_jsonl

__all__ = [
    "SHAPES",
    "Histogram",
    "InvariantReport",
    "ThreadSafeSink",
    "TraceSink",
    "augmented_span",
    "check_invariants",
    "load_jsonl",
    "random_task_graph",
]
