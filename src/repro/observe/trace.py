"""Structured tracing and metrics for the runtime and autotuner.

The scheduler simulation, the task recorder, and the genetic autotuner
all accept an optional :class:`TraceSink`.  When no sink is attached
(the default) the instrumented code pays a single ``is None`` branch per
site — nothing is allocated, formatted, or stored — so production runs
and benchmarks are unaffected.  When a sink is attached, every
interesting transition is captured three ways:

* **events** — an ordered list of dicts (``{"kind": ..., "t": ..., ...}``)
  suitable for JSONL export and trace diffing.  Event kinds emitted by
  the scheduler: ``run_begin``, ``spawn`` (a task pushed on a deque),
  ``task_start``, ``task_finish``, ``steal``, ``idle``, ``busy``,
  ``run_end``.  The task recorder emits ``task_recorded``; the autotuner
  emits ``candidate`` and ``generation``.
* **counters** — monotonically increasing named integers
  (``scheduler.steals``, ``tuner.evaluations``, ``tuner.cache_hits``;
  parallel tuning adds ``tuner.pool.dispatches``, ``tuner.pool.batches``,
  ``tuner.cache.misses``, and ``tuner.cache.disk_hits``; the
  fault-tolerance layer adds ``tuner.pool.timeouts``,
  ``tuner.pool.retries``, ``tuner.pool.rebuilds``,
  ``tuner.pool.quarantines``, ``tuner.degraded_serial``, and
  ``tuner.cache.corrupt_lines`` — every recovery action is counted,
  so ``repro tune`` can summarise what it survived; the static verifier
  suite adds ``analysis.diagnostics.<CODE>`` per emitted diagnostic
  code plus ``analysis.errors`` / ``analysis.warnings`` /
  ``analysis.infos`` totals when a sink is passed to
  :func:`repro.analysis.run_check` or
  :func:`repro.analysis.record_report`; the lowered execution paths add
  ``exec.closure_calls``, ``exec.vectorized_blocks``,
  ``exec.vectorized_cells``, ``exec.vector_fallbacks``, and
  ``exec.geom_cache_hits`` / ``exec.geom_cache_misses`` when a sink is
  passed to ``CompiledTransform.run``; the batch execution engine adds
  ``batch.requests``, ``batch.buckets``, ``batch.stacked_steps``,
  ``batch.stacked_requests``, ``batch.fallbacks``, and
  ``batch.deadline_skips`` (requests resolved to a structured
  deadline-exceeded error by an expired gather budget); the serve
  daemon adds ``serve.requests``, ``serve.compiles`` /
  ``serve.program_hits`` (cold-start vs warm program accounting),
  ``serve.config_hits`` / ``serve.config_misses`` (registry lookups),
  ``serve.version_bumps``, ``serve.runs``, ``serve.batches``,
  ``serve.batch_requests``, and ``serve.tune_jobs``; the serving
  resilience layer adds ``serve.shed.capacity`` /
  ``serve.shed.queue_timeout`` / ``serve.shed.draining`` /
  ``serve.shed.injected`` (admission sheds by reason),
  ``serve.deadline.expired`` / ``serve.deadline.batch_requests``,
  ``serve.drain.begun`` / ``serve.drain.completed`` /
  ``serve.drain.forced``, ``serve.conn_dropped`` (client hangups while
  replying), and ``serve.store.write_failures``; the retrying
  :class:`~repro.serve.client.ServeClient` counts
  ``serve.retry.attempts`` / ``serve.retry.recoveries`` /
  ``serve.retry.giveups`` on its own sink).
* **histograms** — power-of-two bucketed distributions
  (``scheduler.deque_depth``, ``scheduler.task_duration``,
  ``tuner.pool.batch_size``, ``tuner.pool.batch_latency_ms``,
  ``batch.requests_per_sec``; the serve daemon adds per-endpoint
  request-latency histograms ``serve.request_ms``, ``serve.run_ms``,
  ``serve.batch_ms``, and ``serve.compile_ms``).

The per-batch latency histogram is the one deliberately wall-clock
(hence nondeterministic) metric; it never enters the event stream, so
exported JSONL traces stay byte-identical across runs and worker counts
— ``candidate`` events are emitted in deterministic batch order whether
tuning runs serially or on a process pool.

Because everything recorded is a pure function of (graph, machine,
workers, seed), two runs with identical inputs produce byte-identical
JSONL — the determinism invariant the stress harness checks.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterator, List, Optional


class Histogram:
    """Power-of-two bucketed distribution of non-negative values.

    ``buckets[k]`` counts observations ``v`` with ``2**(k-1) < v <= 2**k``
    (bucket 0 holds ``v <= 1``, including zero).  Tracks count / sum /
    min / max exactly so means are not bucket-quantized.
    """

    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError("histograms record non-negative values")
        bucket = 0 if value <= 1 else math.ceil(math.log2(value))
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


class TraceSink:
    """Collects events, counters, and histograms from instrumented code.

    One sink may be shared by several producers (recorder, scheduler,
    tuner); events interleave in emission order.  ``capture_events=False``
    keeps only counters/histograms — useful when tracing a tuning run
    whose per-task event stream would be enormous.
    """

    def __init__(self, capture_events: bool = True) -> None:
        self.capture_events = capture_events
        self.events: List[Dict[str, Any]] = []
        self.counters: Dict[str, int] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- recording ---------------------------------------------------------

    def emit(self, kind: str, **fields: Any) -> None:
        """Record one structured event (skipped when capture_events=False)."""
        if not self.capture_events:
            return
        event: Dict[str, Any] = {"kind": kind}
        event.update(fields)
        self.events.append(event)

    def count(self, name: str, delta: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + delta

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    # -- inspection --------------------------------------------------------

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def events_of(self, kind: str) -> List[Dict[str, Any]]:
        return [e for e in self.events if e["kind"] == kind]

    def summary(self) -> Dict[str, Any]:
        return {
            "events": len(self.events),
            "counters": dict(sorted(self.counters.items())),
            "histograms": {
                name: hist.summary()
                for name, hist in sorted(self.histograms.items())
            },
        }

    def clear(self) -> None:
        self.events.clear()
        self.counters.clear()
        self.histograms.clear()

    # -- export ------------------------------------------------------------

    def jsonl_lines(self) -> Iterator[str]:
        """Every event as one canonical JSON line (sorted keys, so equal
        traces serialize to identical bytes)."""
        for event in self.events:
            yield json.dumps(event, sort_keys=True, default=str)

    def to_jsonl(self) -> str:
        return "".join(line + "\n" for line in self.jsonl_lines())

    def write_jsonl(self, path: str) -> int:
        """Dump all events to ``path``; returns the number of lines."""
        lines = 0
        with open(path, "w", encoding="utf-8") as handle:
            for line in self.jsonl_lines():
                handle.write(line + "\n")
                lines += 1
        return lines


class ThreadSafeSink(TraceSink):
    """A :class:`TraceSink` whose recording methods are guarded by one
    lock, for producers that emit from several threads at once (the
    serve daemon's request handlers and job workers).  Single-threaded
    producers should keep using :class:`TraceSink` — the bare dict
    updates there are cheaper and deterministic ordering is theirs to
    guarantee anyway.
    """

    def __init__(self, capture_events: bool = False) -> None:
        super().__init__(capture_events=capture_events)
        import threading

        self._lock = threading.Lock()

    def emit(self, kind: str, **fields: Any) -> None:
        with self._lock:
            super().emit(kind, **fields)

    def count(self, name: str, delta: int = 1) -> None:
        with self._lock:
            super().count(name, delta)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            super().observe(name, value)


def load_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read a trace back (inverse of :meth:`TraceSink.write_jsonl`)."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
