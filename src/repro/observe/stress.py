"""Deterministic stress harness for the work-stealing scheduler.

:func:`random_task_graph` generates seeded random task graphs in the
shapes the runtime must handle — wide fan-out, fan-in joins, diamond
chains, deep dependency chains, parent-gated spawn trees, and mixed
random DAGs (including zero-work tasks and inlined scopes).
:func:`check_invariants` simulates one graph twice under tracing and
asserts the scheduler invariants that the theory of §3.2/§3.4 promises:

1. **No deadlock** — the simulation completes and every task finishes.
2. **Exactly-once execution** — each task has exactly one ``task_start``
   and one ``task_finish`` event.
3. **Determinism** — the same (graph, machine, workers, seed) produces a
   byte-identical JSONL trace and an equal :class:`ScheduleResult`.
4. **No steals on one worker** — with ``workers=1`` there is no victim.
5. **Work conservation** — summed busy time equals sequential work plus
   spawn overhead, steal overhead is exactly ``steals * steal_time``,
   and total busy time never exceeds ``makespan * workers``.
6. **Greedy bound** — ``makespan <= T1'/P + c * Tinf'`` where ``T1'`` is
   total busy time (work + spawn + steal overhead) and ``Tinf'`` is the
   span over dependency and parent-gating edges with each node charged
   its duration plus one steal.  A greedy scheduler satisfies c = 1;
   the default leaves a small margin for float accumulation.

Dependency ordering (every task starts only after its deps and its
spawning parent have finished) is asserted as well — it is implied by
the simulation but cheap to check from the trace.

The fault-tolerance layer has a sibling harness,
:mod:`repro.faults.harness`, which plays the same role for the parallel
tuning loop: seeded fault plans instead of seeded task graphs, and the
recovery-parity invariant instead of the scheduler invariants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.observe.trace import TraceSink
from repro.runtime.machine import Machine
from repro.runtime.scheduler import ScheduleResult, WorkStealingScheduler
from repro.runtime.task import TaskGraph, TaskRecorder

import random

#: graph shapes the generator knows how to build.
SHAPES: Tuple[str, ...] = (
    "fanout",
    "fanin",
    "diamond",
    "chain",
    "parent_gated",
    "random",
)


# -- random graph generation -----------------------------------------------


def _gen_fanout(rec: TaskRecorder, rng: random.Random, budget: int) -> None:
    with rec.task(label="root"):
        rec.charge(rng.uniform(0, 20))
        for k in range(min(budget - 1, rng.randint(2, 24))):
            with rec.task(label=f"leaf{k}"):
                rec.charge(rng.uniform(1, 100))


def _gen_fanin(rec: TaskRecorder, rng: random.Random, budget: int) -> None:
    with rec.task(label="root"):
        produced: List[int] = []
        for k in range(min(budget - 2, rng.randint(2, 16))):
            with rec.task(label=f"prod{k}") as tid:
                rec.charge(rng.uniform(1, 50))
            produced.append(tid)
        with rec.task(deps=produced, label="join"):
            rec.charge(rng.uniform(1, 50))


def _gen_diamond(rec: TaskRecorder, rng: random.Random, budget: int) -> None:
    with rec.task(label="root"):
        prev: Optional[int] = None
        for k in range(rng.randint(1, 8)):
            if len(rec._tasks) + 6 > budget:
                break
            deps = [prev] if prev is not None else []
            with rec.task(deps=deps, label=f"top{k}") as top:
                rec.charge(rng.uniform(1, 20))
            mids: List[int] = []
            for j in range(rng.randint(2, 4)):
                with rec.task(deps=[top], label=f"mid{k}.{j}") as mid:
                    rec.charge(rng.uniform(1, 40))
                mids.append(mid)
            with rec.task(deps=mids, label=f"bot{k}") as bot:
                rec.charge(rng.uniform(1, 20))
            prev = bot


def _gen_chain(rec: TaskRecorder, rng: random.Random, budget: int) -> None:
    with rec.task(label="root"):
        prev: Optional[int] = None
        for k in range(min(budget - 1, rng.randint(8, 40))):
            deps = [prev] if prev is not None else []
            with rec.task(deps=deps, label=f"link{k}") as tid:
                rec.charge(rng.uniform(1, 30))
            prev = tid


def _gen_parent_gated(rec: TaskRecorder, rng: random.Random, budget: int) -> None:
    def grow(depth: int) -> None:
        rec.charge(rng.uniform(1, 30))
        if depth == 0:
            return
        for _ in range(rng.randint(1, 3)):
            if len(rec._tasks) >= budget:
                return
            with rec.task(label=f"node@{depth}"):
                grow(depth - 1)

    with rec.task(label="root"):
        grow(rng.randint(2, 4))


def _gen_random(rec: TaskRecorder, rng: random.Random, budget: int) -> None:
    closed: List[int] = []

    def grow(depth: int) -> None:
        rec.charge(rng.uniform(0, 10))  # zero-work tasks are legal
        if depth == 0:
            return
        for _ in range(rng.randint(1, 5)):
            if len(rec._tasks) >= budget:
                return
            dep_count = min(len(closed), rng.randint(0, 2))
            deps = rng.sample(closed, dep_count) if dep_count else []
            inline = rng.random() < 0.15
            with rec.task(deps=deps, inline=inline, label=f"r@{depth}") as tid:
                grow(depth - 1)
            if not inline:
                closed.append(tid)

    with rec.task(label="root"):
        grow(3)


_GENERATORS: Dict[str, Callable[[TaskRecorder, random.Random, int], None]] = {
    "fanout": _gen_fanout,
    "fanin": _gen_fanin,
    "diamond": _gen_diamond,
    "chain": _gen_chain,
    "parent_gated": _gen_parent_gated,
    "random": _gen_random,
}


def random_task_graph(
    seed: int,
    shape: Optional[str] = None,
    max_tasks: int = 64,
    sink: Optional[TraceSink] = None,
) -> TaskGraph:
    """A seeded random task graph; ``shape=None`` picks one from the seed."""
    rng = random.Random(seed)
    if shape is None:
        shape = SHAPES[rng.randrange(len(SHAPES))]
    try:
        generator = _GENERATORS[shape]
    except KeyError:
        raise ValueError(f"unknown shape {shape!r}; one of {SHAPES}") from None
    rec = TaskRecorder(sink=sink)
    generator(rec, rng, max_tasks)
    graph = rec.graph()
    graph.validate()
    return graph


# -- invariants ------------------------------------------------------------


def augmented_span(
    graph: TaskGraph, machine: Machine, include_steal: bool = True
) -> float:
    """Span (critical path) under the simulator's real precedence rules.

    Edges are dependency edges plus parent-*finish* gating (a child is
    enabled only once its spawner completed); each node costs its full
    simulated duration (compute + spawn overhead), plus one steal if
    ``include_steal`` — the worst case for a ready critical task to be
    picked up by an idle worker.
    """
    finish: Dict[int, float] = {}
    best = 0.0
    for task in graph.tasks:
        duration = machine.compute_time(task.work)
        duration += task.spawns * machine.spawn_time
        if include_steal:
            duration += machine.steal_time
        start = 0.0
        for dep in task.deps:
            start = max(start, finish[dep])
        if task.parent is not None:
            start = max(start, finish[task.parent])
        finish[task.tid] = start + duration
        best = max(best, finish[task.tid])
    return best


@dataclass
class InvariantReport:
    """Everything :func:`check_invariants` measured for one graph."""

    result: ScheduleResult
    trace: TraceSink
    busy_time: float
    steal_time: float
    span_bound: float
    greedy_bound: float


def _tolerance(magnitude: float) -> float:
    return 1e-6 * max(1.0, magnitude)


def check_invariants(
    graph: TaskGraph,
    machine: Machine,
    workers: int,
    seed: int = 0x5EED,
    greedy_constant: float = 1.0 + 1e-9,
) -> InvariantReport:
    """Run ``graph`` twice under tracing and assert all invariants.

    Raises AssertionError (with a descriptive message) on any violation;
    returns the measurements on success.
    """
    sink = TraceSink()
    result = WorkStealingScheduler(machine, seed=seed).run(
        graph, workers=workers, sink=sink
    )
    rerun_sink = TraceSink()
    rerun = WorkStealingScheduler(machine, seed=seed).run(
        graph, workers=workers, sink=rerun_sink
    )

    n = len(graph)
    starts: Dict[int, float] = {}
    finishes: Dict[int, float] = {}
    start_counts: Dict[int, int] = {}
    finish_counts: Dict[int, int] = {}
    for event in sink.events:
        kind = event["kind"]
        if kind == "task_start":
            tid = event["task"]
            starts[tid] = event["t"]
            start_counts[tid] = start_counts.get(tid, 0) + 1
        elif kind == "task_finish":
            tid = event["task"]
            finishes[tid] = event["t"]
            finish_counts[tid] = finish_counts.get(tid, 0) + 1

    # 1. No deadlock: run() raises on deadlock; double-check completion.
    assert result.tasks == n, f"scheduled {result.tasks} of {n} tasks"
    assert len(finishes) == n, "some tasks never emitted task_finish"
    assert math.isfinite(result.makespan), "non-finite makespan"

    # 2. Every task runs exactly once.
    for task in graph.tasks:
        assert start_counts.get(task.tid, 0) == 1, (
            f"task {task.tid} started {start_counts.get(task.tid, 0)} times"
        )
        assert finish_counts.get(task.tid, 0) == 1, (
            f"task {task.tid} finished {finish_counts.get(task.tid, 0)} times"
        )

    # 3. Same seed => identical trace and result.
    assert rerun == result, "re-run with same seed produced different result"
    assert rerun_sink.to_jsonl() == sink.to_jsonl(), (
        "re-run with same seed produced a different trace"
    )

    # 4. A single worker has nobody to steal from.
    if workers == 1:
        assert result.steals == 0, f"{result.steals} steals with one worker"
    assert len(sink.events_of("steal")) == result.steals, (
        "steal events disagree with ScheduleResult.steals"
    )

    # 5. Work conservation.
    busy = sum(finishes[tid] - starts[tid] for tid in finishes)
    total_spawns = sum(task.spawns for task in graph.tasks)
    expected_busy = result.sequential_time + total_spawns * machine.spawn_time
    assert abs(busy - expected_busy) <= _tolerance(expected_busy), (
        f"busy time {busy} != work + spawn overhead {expected_busy}"
    )
    steal_busy = result.steals * machine.steal_time
    capacity = result.makespan * workers
    assert busy + steal_busy <= capacity + _tolerance(capacity), (
        f"busy {busy} + steal {steal_busy} exceeds capacity {capacity}"
    )

    # 6. Greedy scheduling bound: makespan <= T1'/P + c * Tinf'.
    span = augmented_span(graph, machine, include_steal=True)
    t1 = expected_busy + steal_busy
    bound = t1 / workers + greedy_constant * span
    assert result.makespan <= bound + _tolerance(bound), (
        f"makespan {result.makespan} violates greedy bound {bound} "
        f"(T1'={t1}, P={workers}, Tinf'={span})"
    )
    # ... and the matching lower bounds.
    assert result.makespan + _tolerance(capacity) >= (busy + steal_busy) / workers
    assert result.makespan + _tolerance(result.critical_path) >= result.critical_path

    # Dependency ordering (implied, but cheap to confirm from the trace).
    for task in graph.tasks:
        for dep in task.deps:
            assert starts[task.tid] >= finishes[dep] - 1e-9, (
                f"task {task.tid} started before dependency {dep} finished"
            )
        if task.parent is not None:
            assert starts[task.tid] >= finishes[task.parent] - 1e-9, (
                f"task {task.tid} started before parent {task.parent} finished"
            )

    return InvariantReport(
        result=result,
        trace=sink,
        busy_time=busy,
        steal_time=steal_busy,
        span_bound=span,
        greedy_bound=bound,
    )
