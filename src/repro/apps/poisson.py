"""The Poisson benchmark (paper §4.1, Figures 5-11).

Solves the 2-D Poisson equation on an ``n x n`` grid (``n = 2^k + 1``)
with homogeneous Dirichlet boundaries.  We use the h^2-scaled five-point
operator ``L(x)[i,j] = 4 x[i,j] - x[i-1,j] - x[i+1,j] - x[i,j-1] -
x[i,j+1]`` on interior points and solve ``L(x) = b``.

Methods (paper table in §4.1, with their serial complexities):

* **direct** — banded Cholesky of the interior system (our DPBSV),
  O(n^4) for an n x n grid;
* **Jacobi** — O(n^2) sweeps to fix accuracy;
* **Red-Black SOR** — with the optimal weight ``w = 2 / (1 + sin(pi
  h))``, O(n) sweeps (the red/black ordering is the paper's Figure 5
  dependency pattern; each half-sweep is one dense data-parallel pass);
* **Multigrid** — V-cycles, O(1) cycles per digit.

Variable accuracy (§4.1.4): the program is a *family* ``Poisson_i`` /
``Multigrid_i`` for the accuracy bins ``{10^1, 10^3, 10^5, 10^7,
10^9}``.  ``Poisson_i`` chooses between: solve directly / iterate SOR
until accuracy ``p_i`` / run ``Multigrid_j`` cycles until accuracy
``p_i`` (``j`` is the tunable accuracy of the sub-cycles — the
cross-accuracy paths of Figure 9b).  ``Multigrid_i`` performs the
Figure 10 V-cycle: one SOR(1.15) sweep, restrict the residual, call
``Poisson_i`` on the coarse grid, interpolate + correct, one SOR(1.15)
sweep.

Accuracy is estimated at run time by residual-RMS reduction (the paper
defines accuracy as input/output error-RMS ratio against the true
solution, available only with training data; for this operator the
residual reduction factor tracks the error reduction factor, and the
benchmark harness reports true-error accuracies measured against the
direct solve — see EXPERIMENTS.md).

Cost model: every sweep/stencil pass charges ~its flop count (5-9 ops
per cell) and is recorded as a fan of row-block tasks (data parallel);
the direct solve charges ``interior * bandwidth^2``.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.compiler import (
    ChoiceConfig,
    CompiledProgram,
    Selector,
    TransformBuilder,
    compile_program,
)
from repro.linalg import BandedCholesky

#: The paper's accuracy bins.
ACCURACY_BINS: Tuple[float, ...] = (1e1, 1e3, 1e5, 1e7, 1e9)

JACOBI_SWEEP_COST = 6.0
SOR_SWEEP_COST = 8.0
STENCIL_COST = 5.0
CALL_OVERHEAD = 60.0
MAX_SWEEPS = 200_000
MAX_CYCLES = 100
PARALLEL_CHUNKS = 8


# ---------------------------------------------------------------------------
# numerical kernels
# ---------------------------------------------------------------------------


def apply_operator(x: np.ndarray) -> np.ndarray:
    """The five-point operator L on interior points (boundary rows/cols
    of the result are zero)."""
    out = np.zeros_like(x)
    out[1:-1, 1:-1] = (
        4.0 * x[1:-1, 1:-1]
        - x[:-2, 1:-1]
        - x[2:, 1:-1]
        - x[1:-1, :-2]
        - x[1:-1, 2:]
    )
    return out


def residual(x: np.ndarray, b: np.ndarray) -> np.ndarray:
    r = np.zeros_like(x)
    r[1:-1, 1:-1] = b[1:-1, 1:-1] - (
        4.0 * x[1:-1, 1:-1]
        - x[:-2, 1:-1]
        - x[2:, 1:-1]
        - x[1:-1, :-2]
        - x[1:-1, 2:]
    )
    return r


def rms(values: np.ndarray) -> float:
    if values.size == 0:
        return 0.0
    return float(np.sqrt(np.mean(np.square(values))))


def jacobi_sweep(x: np.ndarray, b: np.ndarray) -> np.ndarray:
    """One weighted Jacobi sweep (returns a new array)."""
    new = x.copy()
    new[1:-1, 1:-1] = 0.25 * (
        b[1:-1, 1:-1]
        + x[:-2, 1:-1]
        + x[2:, 1:-1]
        + x[1:-1, :-2]
        + x[1:-1, 2:]
    )
    return new


def sor_sweep(x: np.ndarray, b: np.ndarray, omega: float) -> None:
    """One Red-Black SOR iteration in place (paper Figure 5).

    Red cells ((i + j) even) update first from the previous black
    values; black cells then update from the fresh red values.  The
    original splits the grid into two dense half-size matrices for cache
    behaviour; numpy's strided slicing gives the same two dense passes.
    """
    n = x.shape[0]
    # parity 0 = red cells ((i + j) even), parity 1 = black.
    for parity in (0, 1):
        for i_start in (1, 2):
            rows = slice(i_start, n - 1, 2)
            j_start = 1 + ((i_start + parity + 1) % 2)
            cols = slice(j_start, n - 1, 2)
            gs = 0.25 * (
                b[rows, cols]
                + x[rows.start - 1 : n - 2 : 2, cols]
                + x[rows.start + 1 : n : 2, cols]
                + x[rows, cols.start - 1 : n - 2 : 2]
                + x[rows, cols.start + 1 : n : 2]
            )
            x[rows, cols] += omega * (gs - x[rows, cols])


def optimal_sor_weight(n: int) -> float:
    """w_opt for the 2-D discrete Poisson problem (Demmel 1997)."""
    if n <= 2:
        return 1.0
    return 2.0 / (1.0 + math.sin(math.pi / (n - 1)))


def restrict_full_weighting(fine: np.ndarray) -> np.ndarray:
    """Full-weighting restriction to the (n+1)/2 coarse grid."""
    n = fine.shape[0]
    m = (n + 1) // 2
    coarse = np.zeros((m, m))
    c = coarse[1:-1, 1:-1]
    f = fine
    ii = np.arange(1, m - 1) * 2
    c[:, :] = (
        4.0 * f[np.ix_(ii, ii)]
        + 2.0 * (f[np.ix_(ii - 1, ii)] + f[np.ix_(ii + 1, ii)]
                 + f[np.ix_(ii, ii - 1)] + f[np.ix_(ii, ii + 1)])
        + (f[np.ix_(ii - 1, ii - 1)] + f[np.ix_(ii - 1, ii + 1)]
           + f[np.ix_(ii + 1, ii - 1)] + f[np.ix_(ii + 1, ii + 1)])
    ) / 16.0
    return coarse


def interpolate(coarse: np.ndarray, n: int) -> np.ndarray:
    """Bilinear interpolation from the coarse grid to an n x n grid."""
    fine = np.zeros((n, n))
    fine[::2, ::2] = coarse
    fine[1::2, ::2] = 0.5 * (coarse[:-1, :] + coarse[1:, :])
    fine[::2, 1::2] = 0.5 * (coarse[:, :-1] + coarse[:, 1:])
    fine[1::2, 1::2] = 0.25 * (
        coarse[:-1, :-1] + coarse[1:, :-1] + coarse[:-1, 1:] + coarse[1:, 1:]
    )
    return fine


_DIRECT_CACHE: Dict[int, BandedCholesky] = {}


def direct_solve(b: np.ndarray) -> np.ndarray:
    """Exact interior solve via our banded Cholesky (LAPACK DPBSV role).

    The factorization of the n-point Laplacian is cached per grid size
    (the matrix depends only on n), matching how the benchmark
    amortizes; the solve itself is fresh per right-hand side.
    """
    n = b.shape[0]
    m = n - 2  # interior points per side
    if m <= 0:
        return np.zeros_like(b)
    if n not in _DIRECT_CACHE:
        order = m * m
        band = np.zeros((m + 1, order))
        band[0, :] = 4.0
        # -1 coupling to the next interior point in the same column
        # (row-major interior index = i * m + j).
        band[1, :] = -1.0
        band[1, m - 1 :: m] = 0.0  # no coupling across column boundary
        band[m, : order - m] = -1.0
        _DIRECT_CACHE[n] = BandedCholesky(band)
    chol = _DIRECT_CACHE[n]
    x = np.zeros_like(b)
    x[1:-1, 1:-1] = chol.solve(b[1:-1, 1:-1].ravel()).reshape(m, m)
    return x


def true_solution(b: np.ndarray) -> np.ndarray:
    """Reference solution (used for accuracy measurement in benchmarks)."""
    return direct_solve(b)


def direct_work(n: int) -> float:
    m = max(1, n - 2)
    return float(m * m) * float(m) ** 2


# ---------------------------------------------------------------------------
# task/work helpers
# ---------------------------------------------------------------------------


def _charge_parallel(ctx, total: float, chunks: int = PARALLEL_CHUNKS) -> None:
    """Charge ``total`` work as a fan of data-parallel chunk tasks."""
    if total <= 0:
        return
    share = total / chunks
    ctx.parallel(*[(lambda s=share: ctx.charge(s)) for _ in range(chunks)])


# ---------------------------------------------------------------------------
# the Poisson_i / Multigrid_i transform family
# ---------------------------------------------------------------------------


def poisson_name(bin_index: int) -> str:
    return f"Poisson_{bin_index}"


def multigrid_name(bin_index: int) -> str:
    return f"Multigrid_{bin_index}"


def poisson_site(bin_index: int) -> str:
    return f"{poisson_name(bin_index)}.Y.0"


def _make_direct_rule():
    def rule(ctx) -> None:
        b = ctx["b"].to_numpy()
        n = b.shape[0]
        ctx["y"].assign(direct_solve(b))
        ctx.charge(CALL_OVERHEAD + direct_work(n))

    return rule


def _make_sor_rule():
    """Iterate SOR(w_opt) a *trained* number of sweeps.

    The paper's pseudo code reads "iterate using SOR_wopt until accuracy
    p_i is achieved"; with the paper's assumption of representative
    training data this is realized as an iteration count fixed during
    autotuning (the ``sorIters`` tunable, size-leveled) — the runtime has
    no access to the true solution to measure accuracy against.
    """

    def rule(ctx) -> None:
        x = ctx["x"].to_numpy().copy()
        b = ctx["b"].to_numpy()
        n = b.shape[0]
        omega = optimal_sor_weight(n)
        sweeps = max(1, ctx.tunable("sorIters"))
        for _ in range(sweeps):
            sor_sweep(x, b, omega)
        ctx["y"].assign(x)
        ctx.charge(CALL_OVERHEAD)
        _charge_parallel(ctx, sweeps * SOR_SWEEP_COST * n * n)

    return rule


def _make_multigrid_choice_rule():
    """Run a trained number of ``Multigrid_j`` V-cycles, where both the
    cycle count (``mgCycles``) and the sub-cycle accuracy ``j``
    (``mgAccuracy`` — the cross-accuracy paths of Figure 9b) are
    size-leveled tunables set by the accuracy tuner."""

    def rule(ctx) -> None:
        x = ctx["x"].to_numpy().copy()
        b = ctx["b"].to_numpy()
        sub_bin = ctx.tunable("mgAccuracy")
        cycles = max(1, ctx.tunable("mgCycles"))
        mg = multigrid_name(int(sub_bin))
        for _ in range(cycles):
            x = ctx.call(mg, x, b).to_numpy().copy()
        ctx["y"].assign(x)
        ctx.charge(CALL_OVERHEAD)

    return rule


def _make_fmg_rule(bin_index: int):
    """Full multigrid (paper §4.1.2's deferred extension): solve the
    restricted problem on the coarse grid first (recursively, through
    the tuned Poisson of this accuracy bin), interpolate the coarse
    solution as the initial guess, then run trained ``fmgCycles``
    V-cycles of the trained sub-accuracy."""

    def rule(ctx) -> None:
        b = ctx["b"].to_numpy()
        n = b.shape[0]
        if n <= 3:
            ctx["y"].assign(direct_solve(b))
            ctx.charge(CALL_OVERHEAD + direct_work(n))
            return
        coarse_b = 4.0 * restrict_full_weighting(b)
        _charge_parallel(ctx, STENCIL_COST * n * n)
        m = coarse_b.shape[0]
        coarse = ctx.call(
            poisson_name(bin_index), np.zeros((m, m)), coarse_b
        ).to_numpy()
        x = interpolate(coarse, n)
        _charge_parallel(ctx, STENCIL_COST * n * n)
        cycles = max(1, ctx.tunable("fmgCycles"))
        mg = multigrid_name(int(ctx.tunable("mgAccuracy")))
        for _ in range(cycles):
            x = ctx.call(mg, x, b).to_numpy().copy()
        ctx["y"].assign(x)
        ctx.charge(CALL_OVERHEAD)

    return rule


def _make_jacobi_rule():
    """Weighted Jacobi with a trained sweep count.  The paper excluded
    Jacobi from the final search space ("SOR performs much better ...
    for similar computation cost per iteration"); keeping it as a choice
    lets the autotuner rediscover that exclusion."""

    def rule(ctx) -> None:
        x = ctx["x"].to_numpy().copy()
        b = ctx["b"].to_numpy()
        n = b.shape[0]
        sweeps = max(1, ctx.tunable("jacobiIters"))
        for _ in range(sweeps):
            x = jacobi_sweep(x, b)
        ctx["y"].assign(x)
        ctx.charge(CALL_OVERHEAD)
        _charge_parallel(ctx, sweeps * JACOBI_SWEEP_COST * n * n)

    return rule


def _make_vcycle_rule(bin_index: int):
    def rule(ctx) -> None:
        x = ctx["x"].to_numpy().copy()
        b = ctx["b"].to_numpy()
        n = b.shape[0]
        if n <= 3:
            ctx["y"].assign(direct_solve(b))
            ctx.charge(CALL_OVERHEAD + direct_work(n))
            return
        # Figure 10 MULTIGRID_i: SOR(1.15) x1, restrict residual,
        # Poisson_i on the coarse grid, interpolate + correct, SOR(1.15).
        sor_sweep(x, b, 1.15)
        _charge_parallel(ctx, SOR_SWEEP_COST * n * n)
        r = residual(x, b)
        coarse_rhs = 4.0 * restrict_full_weighting(r)
        _charge_parallel(ctx, 2.0 * STENCIL_COST * n * n)
        m = coarse_rhs.shape[0]
        coarse_guess = np.zeros((m, m))
        correction = ctx.call(
            poisson_name(bin_index), coarse_guess, coarse_rhs
        ).to_numpy()
        x += interpolate(correction, n)
        _charge_parallel(ctx, STENCIL_COST * n * n)
        sor_sweep(x, b, 1.15)
        _charge_parallel(ctx, SOR_SWEEP_COST * n * n)
        ctx["y"].assign(x)
        ctx.charge(CALL_OVERHEAD)

    return rule


def build_program() -> CompiledProgram:
    """Compile the full Poisson_i / Multigrid_i family (paper §4.1.4)."""
    transforms = []
    for index, target in enumerate(ACCURACY_BINS):
        p = TransformBuilder(poisson_name(index))
        p.input("X", "n", "n")
        p.input("B", "n", "n")
        p.output("Y", "n", "n")
        p.tunable("mgAccuracy", 0, len(ACCURACY_BINS) - 1, default=index)
        p.tunable("mgCycles", 1, MAX_CYCLES, default=2)
        p.tunable("sorIters", 1, MAX_SWEEPS, default=50)
        p.tunable("fmgCycles", 1, MAX_CYCLES, default=1)
        p.tunable("jacobiIters", 1, MAX_SWEEPS, default=100)
        p.rule(
            to=[("Y", "all", "y")],
            from_=[("X", "all", "x"), ("B", "all", "b")],
            body=_make_direct_rule(),
            label="direct",
        )
        p.rule(
            to=[("Y", "all", "y")],
            from_=[("X", "all", "x"), ("B", "all", "b")],
            body=_make_sor_rule(),
            label="sor",
        )
        p.rule(
            to=[("Y", "all", "y")],
            from_=[("X", "all", "x"), ("B", "all", "b")],
            body=_make_multigrid_choice_rule(),
            label="multigrid",
            recursive=True,  # Multigrid_j recurses back into Poisson_j
        )
        p.rule(
            to=[("Y", "all", "y")],
            from_=[("X", "all", "x"), ("B", "all", "b")],
            body=_make_fmg_rule(index),
            label="fmg",
            recursive=True,
        )
        p.rule(
            to=[("Y", "all", "y")],
            from_=[("X", "all", "x"), ("B", "all", "b")],
            body=_make_jacobi_rule(),
            label="jacobi",
        )
        transforms.append(p.build())

        m = TransformBuilder(multigrid_name(index))
        m.input("X", "n", "n")
        m.input("B", "n", "n")
        m.output("Y", "n", "n")
        m.rule(
            to=[("Y", "all", "y")],
            from_=[("X", "all", "x"), ("B", "all", "b")],
            body=_make_vcycle_rule(index),
            label="vcycle",
            recursive=True,
        )
        transforms.append(m.build())
    return compile_program(transforms)


def size_metric(n: int) -> int:
    """Selection metric for a Poisson call on an n x n grid: 3 n^2."""
    return 3 * n * n


def grid_size(level: int) -> int:
    """The paper's N = 2^k + 1 grids."""
    return 2**level + 1


def input_generator(size: int, rng: random.Random) -> List[np.ndarray]:
    """Zero initial guess and a random smooth-ish right-hand side."""
    np_rng = np.random.default_rng(rng.getrandbits(32))
    b = np.zeros((size, size))
    b[1:-1, 1:-1] = np_rng.standard_normal((size - 2, size - 2))
    return [np.zeros((size, size)), b]


# ---------------------------------------------------------------------------
# variable-accuracy autotuning (paper §4.1.4)
# ---------------------------------------------------------------------------


def _levels_from_picks(
    picks: List[Tuple[int, int]], top_value: int
) -> "Selector":
    """Build a size-leveled selector from ascending (grid, value) picks:
    each pick covers problem sizes up to the next picked grid; ``top_value``
    covers everything beyond the last pick."""
    levels: List[Tuple[Optional[int], int]] = []
    for idx, (grid, value) in enumerate(picks):
        if idx + 1 < len(picks):
            threshold: Optional[int] = size_metric(picks[idx + 1][0])
        else:
            threshold = size_metric(grid) + 1
        levels.append((threshold, value))
    levels.append((None, top_value))
    return Selector(tuple(levels))


def _minimal_sor_sweeps(
    x0: np.ndarray, b: np.ndarray, reference: np.ndarray, target: float
) -> Optional[int]:
    """Fewest SOR(w_opt) sweeps reaching the target accuracy on the
    training problem (None if MAX_SWEEPS is not enough)."""
    n = b.shape[0]
    omega = optimal_sor_weight(n)
    err0 = rms((x0 - reference)[1:-1, 1:-1])
    x = x0.copy()
    for sweeps in range(1, MAX_SWEEPS + 1):
        sor_sweep(x, b, omega)
        err = rms((x - reference)[1:-1, 1:-1])
        if err == 0.0 or err0 / err >= target:
            return sweeps
    return None


def tune_accuracy(
    program: CompiledProgram,
    machine,
    max_level: int = 6,
    workers: Optional[int] = None,
    seed: int = 20090615,
):
    """Bottom-up variable-accuracy autotuning of the Poisson family.

    Implements the paper's §4.1.4 procedure: for each grid level (sizes
    ``2^k + 1``, ascending) and *each accuracy bin*, try every choice —
    direct, SOR with the minimal trained sweep count, and ``Multigrid_j``
    V-cycles for every sub-accuracy ``j`` with the minimal trained cycle
    count (the cross-accuracy paths of Figure 9b) — keep the fastest that
    achieves the bin's accuracy on training data, and record it as a
    size level so larger grids build on the already-tuned smaller-grid
    behaviour ("the autotuner tunes all accuracies at a given level
    before moving to a higher level").  Iteration counts are measured on
    training data with the true solution available, exactly the paper's
    representative-training-data assumption, and are recorded as
    size-leveled tunables.

    Returns ``(config, history)`` where history rows are
    ``(grid, bin_index, choice_label, simulated_time, accuracy)``.
    """
    from repro.runtime.scheduler import WorkStealingScheduler

    scheduler = WorkStealingScheduler(machine)
    config = ChoiceConfig()
    bins = ACCURACY_BINS
    nbins = len(bins)
    choice_picks: Dict[int, List[Tuple[int, int]]] = {i: [] for i in range(nbins)}
    sor_picks: Dict[int, List[Tuple[int, int]]] = {i: [] for i in range(nbins)}
    cycle_picks: Dict[int, List[Tuple[int, int]]] = {i: [] for i in range(nbins)}
    acc_picks: Dict[int, List[Tuple[int, int]]] = {i: [] for i in range(nbins)}
    fmg_picks: Dict[int, List[Tuple[int, int]]] = {i: [] for i in range(nbins)}
    jacobi_picks: Dict[int, List[Tuple[int, int]]] = {i: [] for i in range(nbins)}
    history: List[Tuple[int, int, str, float, float]] = []

    def rebuild(trial: ChoiceConfig, bin_index: int, extra: Dict[str, Tuple[int, int]]) -> None:
        """Write this bin's selector + leveled tunables into ``trial``,
        optionally extending with this level's candidate values."""
        name = poisson_name(bin_index)
        table = {
            "choice": (choice_picks[bin_index], poisson_site(bin_index)),
            "sorIters": (sor_picks[bin_index], f"{name}.sorIters"),
            "mgCycles": (cycle_picks[bin_index], f"{name}.mgCycles"),
            "mgAccuracy": (acc_picks[bin_index], f"{name}.mgAccuracy"),
            "fmgCycles": (fmg_picks[bin_index], f"{name}.fmgCycles"),
            "jacobiIters": (jacobi_picks[bin_index], f"{name}.jacobiIters"),
        }
        for kind, (picks, key) in table.items():
            extended = list(picks)
            if kind in extra:
                extended.append(extra[kind])
            if not extended:
                continue
            selector = _levels_from_picks(extended, extended[-1][1])
            if kind == "choice":
                trial.set_choice(key, selector)
            else:
                trial.set_leveled_tunable(key, selector)

    rng = random.Random(seed)
    for level in range(2, max_level + 1):
        n = grid_size(level)
        x0, b = input_generator(n, rng)
        reference = true_solution(b)
        for bin_index, target in enumerate(bins):
            solver = program.transform(poisson_name(bin_index))
            # Candidate list: (label, option, extra leveled values).
            candidates: List[Tuple[str, Dict[str, Tuple[int, int]]]] = [
                ("direct", {"choice": (n, 0)})
            ]
            sweeps = _minimal_sor_sweeps(x0, b, reference, target)
            if sweeps is not None:
                candidates.append(
                    ("sor", {"choice": (n, 1), "sorIters": (n, sweeps)})
                )
            # Jacobi is only worth *considering* on small grids (its
            # sweep counts explode quadratically; the paper dropped it
            # from the search space altogether).
            jacobi_sweeps = (
                _minimal_jacobi_sweeps(x0, b, reference, target)
                if n <= 33
                else None
            )
            if jacobi_sweeps is not None:
                candidates.append(
                    (
                        "jacobi",
                        {"choice": (n, 4), "jacobiIters": (n, jacobi_sweeps)},
                    )
                )
            for j in range(nbins):
                cycles = _minimal_mg_cycles(
                    program, config, j, x0, b, reference, target
                )
                if cycles is not None:
                    candidates.append(
                        (
                            f"mg(acc={j})",
                            {
                                "choice": (n, 2),
                                "mgCycles": (n, cycles),
                                "mgAccuracy": (n, j),
                            },
                        )
                    )
                fmg_cycles = _minimal_fmg_cycles(
                    program, config, bin_index, j, x0, b, reference, target
                )
                if fmg_cycles is not None:
                    candidates.append(
                        (
                            f"fmg(acc={j})",
                            {
                                "choice": (n, 3),
                                "fmgCycles": (n, fmg_cycles),
                                "mgAccuracy": (n, j),
                            },
                        )
                    )
            best = None
            for label, extra in candidates:
                trial = config.copy()
                rebuild(trial, bin_index, extra)
                try:
                    result = solver.run([x0, b], trial)
                except Exception:
                    continue
                accuracy = measure_accuracy(x0, result.output("Y"), b)
                if accuracy < target * 0.99:
                    continue
                elapsed = scheduler.run(result.graph, workers=workers).makespan
                if best is None or elapsed < best[0]:
                    best = (elapsed, label, extra, accuracy)
            if best is None:  # direct is exact, so this cannot happen
                raise RuntimeError(
                    f"no candidate reached accuracy {target} at grid {n}"
                )
            elapsed, label, extra, accuracy = best
            for kind, pick in extra.items():
                {
                    "choice": choice_picks,
                    "sorIters": sor_picks,
                    "mgCycles": cycle_picks,
                    "mgAccuracy": acc_picks,
                    "fmgCycles": fmg_picks,
                    "jacobiIters": jacobi_picks,
                }[kind][bin_index].append(pick)
            rebuild(config, bin_index, {})
            history.append((n, bin_index, label, elapsed, accuracy))
    return config, history


#: skip the Jacobi candidate beyond this many training sweeps (it never
#: wins there and the search itself would dominate tuning time)
_JACOBI_SEARCH_CAP = 20_000


def _minimal_jacobi_sweeps(
    x0: np.ndarray, b: np.ndarray, reference: np.ndarray, target: float
) -> Optional[int]:
    """Fewest weighted-Jacobi sweeps reaching the target accuracy."""
    err0 = rms((x0 - reference)[1:-1, 1:-1])
    x = x0.copy()
    for sweeps in range(1, _JACOBI_SEARCH_CAP + 1):
        x = jacobi_sweep(x, b)
        err = rms((x - reference)[1:-1, 1:-1])
        if err == 0.0 or err0 / err >= target:
            return sweeps
    return None


def _minimal_fmg_cycles(
    program: CompiledProgram,
    config: ChoiceConfig,
    bin_index: int,
    sub_bin: int,
    x0: np.ndarray,
    b: np.ndarray,
    reference: np.ndarray,
    target: float,
) -> Optional[int]:
    """Fewest post-FMG V-cycles reaching the target accuracy, with the
    coarse pre-solve running through the already-tuned config."""
    n = b.shape[0]
    if n <= 3:
        return None
    err0 = rms((x0 - reference)[1:-1, 1:-1])
    coarse_b = 4.0 * restrict_full_weighting(b)
    m = coarse_b.shape[0]
    try:
        coarse = program.transform(poisson_name(bin_index)).run(
            [np.zeros((m, m)), coarse_b], config
        ).output("Y")
    except Exception:
        return None
    x = interpolate(coarse, n)
    solver = program.transform(multigrid_name(sub_bin))
    for cycles in range(1, MAX_CYCLES + 1):
        try:
            x = solver.run([x, b], config).output("Y")
        except Exception:
            return None
        err = rms((x - reference)[1:-1, 1:-1])
        if err == 0.0 or err0 / err >= target:
            return cycles
    return None


def _minimal_mg_cycles(
    program: CompiledProgram,
    config: ChoiceConfig,
    sub_bin: int,
    x0: np.ndarray,
    b: np.ndarray,
    reference: np.ndarray,
    target: float,
) -> Optional[int]:
    """Fewest Multigrid_j V-cycles reaching the target accuracy on the
    training problem, under the already-tuned coarse-grid config."""
    solver = program.transform(multigrid_name(sub_bin))
    err0 = rms((x0 - reference)[1:-1, 1:-1])
    x = x0
    for cycles in range(1, MAX_CYCLES + 1):
        try:
            x = solver.run([x, b], config).output("Y")
        except Exception:
            return None
        err = rms((x - reference)[1:-1, 1:-1])
        if err == 0.0 or err0 / err >= target:
            return cycles
    return None


def measure_accuracy(
    x0: np.ndarray, result: np.ndarray, b: np.ndarray
) -> float:
    """The paper's accuracy metric: RMS input error / RMS output error,
    against the true (direct) solution."""
    reference = true_solution(b)
    err_in = rms((x0 - reference)[1:-1, 1:-1])
    err_out = rms((result - reference)[1:-1, 1:-1])
    if err_out == 0.0:
        return float("inf")
    return err_in / err_out
