"""The dense Matrix Multiply benchmark (paper §4.4, Figure 15).

``MatrixMultiply: AB[w,h] = A[c,h] * B[w,c]`` (paper coordinates: first
index is the column/x).  Algorithmic choices:

====  ==============================  ==========================================
rule  variant (Figure 15 series)      cost model (work units ~ flops)
====  ==============================  ==========================================
0     basic                           ``2 w h c * 1.9`` — column-major strides
                                      miss cache on every B access
1     blocking                        ``2 w h c * 1.2`` + per-block overhead;
                                      one task per block row (parallel)
2     transpose                       transpose copies ``(w c + c h)`` then
                                      unit-stride product ``2 w h c * 1.0``;
                                      row-block tasks (parallel)
3     recursive split in c            two half multiplies + matrix add
4     recursive split in w            two independent half multiplies
5     recursive split in h            two independent half multiplies
6     Strassen                        7 recursive multiplies on halves +
                                      ``18 (n/2)^2`` adds (square, even only;
                                      falls back to transpose otherwise)
====  ==============================  ==========================================

The relative constants encode the cache story of Figure 15 (basic >
blocking > transpose at large sizes); recursion and Strassen change the
*asymptotics and parallelism*, which the task graph captures directly.
"""

from __future__ import annotations

import random
from typing import List

import numpy as np

from repro.compiler import CompiledProgram, TransformBuilder, compile_program

BASIC_FACTOR = 1.9
BLOCKED_FACTOR = 1.2
TRANSPOSE_FACTOR = 1.0
CALL_OVERHEAD = 40.0
DEFAULT_BLOCK = 64

MM_SITE = "MatrixMultiply.AB.0"

#: rule index -> Figure 15 series name
VARIANT_NAMES = (
    "basic",
    "blocking",
    "transpose",
    "recursive-c",
    "recursive-w",
    "recursive-h",
    "strassen",
)


def _multiply(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Reference product in paper coordinates: AB[x,y] = sum_k A[k,y]B[x,k]."""
    return np.einsum("ky,xk->xy", a, b)


def _dims(ctx):
    a = ctx["a"].to_numpy()
    b = ctx["b"].to_numpy()
    c, h = a.shape
    w = b.shape[0]
    return a, b, ctx["ab"], w, h, c


def mm_basic(ctx) -> None:
    a, b, out, w, h, c = _dims(ctx)
    out.assign(_multiply(a, b))
    ctx.charge(CALL_OVERHEAD + BASIC_FACTOR * 2.0 * w * h * c)


def mm_blocked(ctx) -> None:
    a, b, out, w, h, c = _dims(ctx)
    block = ctx.tunable("blockSize", DEFAULT_BLOCK)
    out.assign(_multiply(a, b))
    ctx.charge(CALL_OVERHEAD)
    # One task per block row of the output: parallel across blocks.
    thunks = []
    for x0 in range(0, max(w, 1), block):
        span = min(block, w - x0) if w else 0
        cost = BLOCKED_FACTOR * 2.0 * span * h * c + 5.0
        thunks.append(lambda cost=cost: ctx.charge(cost))
    if thunks:
        ctx.parallel(*thunks)


def mm_transpose(ctx) -> None:
    a, b, out, w, h, c = _dims(ctx)
    out.assign(_multiply(a, b))
    ctx.charge(CALL_OVERHEAD + (w * c + c * h))  # the transposed copies
    thunks = []
    step = max(1, h // 8) if h else 1
    for y0 in range(0, max(h, 1), step):
        span = min(step, h - y0) if h else 0
        cost = TRANSPOSE_FACTOR * 2.0 * w * span * c + 5.0
        thunks.append(lambda cost=cost: ctx.charge(cost))
    if thunks:
        ctx.parallel(*thunks)


def _fallback_direct(ctx, a, b, out, w, h, c) -> None:
    """Base behaviour for recursive rules whose split dimension has
    bottomed out (length < 2): compute like the transpose variant."""
    out.assign(_multiply(a, b))
    ctx.charge(
        CALL_OVERHEAD + (w * c + c * h) + TRANSPOSE_FACTOR * 2.0 * w * h * c
    )


def mm_split_c(ctx) -> None:
    """Split the reduction dimension: two products then an add
    (sequentialized by the dependency on both halves)."""
    a, b, out, w, h, c = _dims(ctx)
    if c < 2:
        _fallback_direct(ctx, a, b, out, w, h, c)
        return
    half = c // 2
    first, second = ctx.parallel(
        lambda: ctx.call(
            "MatrixMultiply", a[:half, :], b[:, :half]
        ).to_numpy(),
        lambda: ctx.call(
            "MatrixMultiply", a[half:, :], b[:, half:]
        ).to_numpy(),
    )
    out.assign(first + second)
    ctx.charge(CALL_OVERHEAD + w * h)  # the matrix add


def mm_split_w(ctx) -> None:
    a, b, out, w, h, c = _dims(ctx)
    if w < 2:
        _fallback_direct(ctx, a, b, out, w, h, c)
        return
    half = w // 2
    left, right = ctx.parallel(
        lambda: ctx.call("MatrixMultiply", a, b[:half, :]).to_numpy(),
        lambda: ctx.call("MatrixMultiply", a, b[half:, :]).to_numpy(),
    )
    out.assign(np.concatenate([left, right], axis=0))
    ctx.charge(CALL_OVERHEAD)


def mm_split_h(ctx) -> None:
    a, b, out, w, h, c = _dims(ctx)
    if h < 2:
        _fallback_direct(ctx, a, b, out, w, h, c)
        return
    half = h // 2
    top, bottom = ctx.parallel(
        lambda: ctx.call("MatrixMultiply", a[:, :half], b).to_numpy(),
        lambda: ctx.call("MatrixMultiply", a[:, half:], b).to_numpy(),
    )
    out.assign(np.concatenate([top, bottom], axis=1))
    ctx.charge(CALL_OVERHEAD)


def mm_strassen(ctx) -> None:
    """Strassen's seven-multiplication scheme on even square inputs;
    other shapes fall back to the transpose variant's behaviour."""
    a, b, out, w, h, c = _dims(ctx)
    if not (w == h == c and w % 2 == 0 and w >= 4):
        out.assign(_multiply(a, b))
        ctx.charge(CALL_OVERHEAD + (w * c + c * h) + TRANSPOSE_FACTOR * 2.0 * w * h * c)
        return
    n = w
    half = n // 2
    # Map to math convention: with AB[x,y] = sum_k A[k,y] B[x,k], the
    # math matrices are the storage transposes (Amath = a.T, Bmath = b.T,
    # Cmath = ab.T); run classic Strassen there and transpose back.
    A = a.T
    B = b.T
    A11, A12 = A[:half, :half], A[:half, half:]
    A21, A22 = A[half:, :half], A[half:, half:]
    B11, B12 = B[:half, :half], B[:half, half:]
    B21, B22 = B[half:, :half], B[half:, half:]

    def mult(x, y):
        # Math-convention product via the transform's storage convention.
        return ctx.call("MatrixMultiply", x.T, y.T).to_numpy().T

    m1, m2, m3, m4, m5, m6, m7 = ctx.parallel(
        lambda: mult(A11 + A22, B11 + B22),
        lambda: mult(A21 + A22, B11),
        lambda: mult(A11, B12 - B22),
        lambda: mult(A22, B21 - B11),
        lambda: mult(A11 + A12, B22),
        lambda: mult(A21 - A11, B11 + B12),
        lambda: mult(A12 - A22, B21 + B22),
    )
    C = np.empty((n, n))
    C[:half, :half] = m1 + m4 - m5 + m7
    C[:half, half:] = m3 + m5
    C[half:, :half] = m2 + m4
    C[half:, half:] = m1 - m2 + m3 + m6
    out.assign(C.T)
    ctx.charge(CALL_OVERHEAD + 18.0 * half * half)


def build_program() -> CompiledProgram:
    """Compile the MatrixMultiply benchmark program."""
    b = TransformBuilder("MatrixMultiply")
    b.input("A", "c", "h")
    b.input("B", "w", "c")
    b.output("AB", "w", "h")
    b.tunable("blockSize", 8, 512, DEFAULT_BLOCK)
    bodies = [
        ("basic", mm_basic, False),
        ("blocking", mm_blocked, False),
        ("transpose", mm_transpose, False),
        ("recursive-c", mm_split_c, True),
        ("recursive-w", mm_split_w, True),
        ("recursive-h", mm_split_h, True),
        ("strassen", mm_strassen, True),
    ]
    for label, body, recursive in bodies:
        b.rule(
            to=[("AB", "all", "ab")],
            from_=[("A", "all", "a"), ("B", "all", "b")],
            body=body,
            label=label,
            recursive=recursive,
        )
    return compile_program([b.build()])


def size_metric(n: int) -> int:
    """Selection metric for a square n x n multiply: 3 n^2 cells."""
    return 3 * n * n


def input_generator(size: int, rng: random.Random) -> List[np.ndarray]:
    """Two square matrices of uniform random values."""
    np_rng = np.random.default_rng(rng.getrandbits(32))
    return [
        np_rng.standard_normal((size, size)),
        np_rng.standard_normal((size, size)),
    ]


def make_evaluator(
    machine_name: str = "xeon8",
    workers=None,
    trials: int = 1,
    seed: int = 20090615,
):
    """Build the MatrixMultiply objective — also the picklable spec
    factory (``"repro.apps.matmul:make_evaluator"``) for parallel-tuning
    worker processes."""
    from repro.autotuner.evaluation import Evaluator
    from repro.runtime.machine import MACHINES

    return Evaluator(
        build_program(),
        "MatrixMultiply",
        input_generator,
        MACHINES[machine_name],
        workers=workers,
        trials=trials,
        seed=seed,
    )
