"""The Sort benchmark (paper §1.1, §4.3, §5.1-5.2).

One generalized ``Sort`` transform with seven algorithmic choices, each
of which recurses *through Sort itself*, so the autotuner can switch
algorithms at every level of the recursion — the paper's central example:

====  =====================================  =======================
rule  algorithm                              parallel structure
====  =====================================  =======================
0     insertion sort (IS)                    sequential
1     quicksort (QS), median-of-3            parallel recursion only
2     2-way merge sort (2MS)                 parallel recursion +
                                             parallelizable recursive
                                             merge (paper §4.3)
3     4-way merge sort (4MS)                 parallel recursion,
                                             sequential k-way merge
4     8-way merge sort (8MS)                 as 4MS
5     16-way merge sort (16MS)               as 4MS
6     16-bucket MSD radix sort (RS)          sequential scatter,
                                             parallel bucket recursion
====  =====================================  =======================

Cost model (work unit = one comparison-and-move; constants calibrated so
the sequential IS/QS crossover lands in the paper's 60-150 range and
radix wins large sequential sorts, as in Table 2):

* every Sort call charges ``CALL_OVERHEAD`` (function/dispatch cost),
* IS: ``n^2/4 + n`` (average-case shifts),
* QS: ``1.2 n`` per partition,
* kMS: ``1.35 n log2(k)`` per merge + per-chunk split cost,
* RS: ``2.4 n`` per scatter pass + ``BUCKET_OVERHEAD`` for the 16
  bucket headers.

The numeric results are always exact (kernels sort for real); the work
charges price them for the schedule simulator (see DESIGN.md).
"""

from __future__ import annotations

import random
from typing import List

import numpy as np

from repro.compiler import CompiledProgram, TransformBuilder, compile_program

CALL_OVERHEAD = 15.0
IS_SHIFT = 0.25
QS_PARTITION = 1.2
MS_MERGE = 1.35
MS_SPLIT = 0.15
RS_SCATTER = 2.4
BUCKET_OVERHEAD = 60.0
RADIX_BUCKETS = 16
#: block size below which the 2-way parallel merge stops splitting
MERGE_LEAF = 1024

#: rule index -> the paper's abbreviation (Table 2 naming)
ALGORITHM_NAMES = ("IS", "QS", "2MS", "4MS", "8MS", "16MS", "RS")


def _read(ctx):
    view = ctx["in"]
    return view.to_numpy(), ctx["out"], view.shape[0]


def insertion_sort(ctx) -> None:
    data, out, n = _read(ctx)
    out.assign(np.sort(data, kind="stable"))
    ctx.charge(CALL_OVERHEAD + IS_SHIFT * n * n + n)


def quick_sort(ctx) -> None:
    data, out, n = _read(ctx)
    if n <= 1:
        out.assign(data)
        ctx.charge(CALL_OVERHEAD)
        return
    # Median-of-three pivot, three-way partition.
    candidates = sorted((data[0], data[n // 2], data[n - 1]))
    pivot = candidates[1]
    left = data[data < pivot]
    middle = data[data == pivot]
    right = data[data > pivot]
    ctx.charge(CALL_OVERHEAD + QS_PARTITION * n)
    parts = ctx.parallel(
        lambda: ctx.call("Sort", left).to_numpy() if left.size else left,
        lambda: ctx.call("Sort", right).to_numpy() if right.size else right,
    )
    out.assign(np.concatenate([parts[0], middle, parts[1]]))


def _parallel_merge(ctx, size: int) -> None:
    """Task structure of the 2-way recursive merge (paper §4.3): the
    merge splits in half around a binary search and the halves proceed
    in parallel; work totals MS_MERGE * size across the leaves."""
    if size <= MERGE_LEAF:
        ctx.charge(MS_MERGE * size)
        return
    half = size // 2
    ctx.charge(np.log2(max(2, size)))  # the binary search
    ctx.parallel(
        lambda: _parallel_merge(ctx, half),
        lambda: _parallel_merge(ctx, size - half),
    )


def make_merge_sort(ways: int):
    """An n-way merge sort rule body (paper: the compiler selects n)."""

    def merge_sort(ctx) -> None:
        data, out, n = _read(ctx)
        if n <= 1:
            out.assign(data)
            ctx.charge(CALL_OVERHEAD)
            return
        chunks = [c for c in np.array_split(data, ways) if c.size]
        ctx.charge(CALL_OVERHEAD + MS_SPLIT * n)
        sorted_chunks = ctx.parallel(
            *[
                (lambda chunk=chunk: ctx.call("Sort", chunk).to_numpy())
                for chunk in chunks
            ]
        )
        merged = np.sort(np.concatenate(sorted_chunks), kind="stable")
        out.assign(merged)
        if ways == 2:
            # 2MS: the recursive merge itself is a parallel task tree.
            _parallel_merge(ctx, n)
        else:
            # k-way heap merge: sequential, n log2(k) comparisons.
            ctx.charge(MS_MERGE * n * np.log2(ways))

    merge_sort.__name__ = f"merge_sort_{ways}way"
    return merge_sort


def radix_sort(ctx) -> None:
    """MSD radix sort with 16 buckets; each bucket recursively calls the
    generalized Sort (so the tuner picks the per-bucket algorithm)."""
    data, out, n = _read(ctx)
    if n <= 1:
        out.assign(data)
        ctx.charge(CALL_OVERHEAD)
        return
    lo = float(np.min(data))
    hi = float(np.max(data))
    if lo == hi:
        out.assign(data)
        ctx.charge(CALL_OVERHEAD + n)
        return
    with np.errstate(over="ignore", invalid="ignore"):
        scaled = (data - lo) * (RADIX_BUCKETS / (hi - lo))
        scaled = np.nan_to_num(
            scaled, nan=0.0, posinf=RADIX_BUCKETS - 1, neginf=0.0
        )
    digits = np.clip(scaled.astype(np.int64), 0, RADIX_BUCKETS - 1)
    buckets = [data[digits == k] for k in range(RADIX_BUCKETS)]
    if max(bucket.size for bucket in buckets) == n:
        # Degenerate key range (e.g. a subnormal span, where
        # RADIX_BUCKETS/(hi-lo) overflows): every key lands in one
        # bucket and recursing would never make progress.  Sort
        # directly, priced as the merge pass it replaces.
        out.assign(np.sort(data, kind="stable"))
        ctx.charge(CALL_OVERHEAD + MS_MERGE * n * max(1.0, np.log2(n)))
        return
    ctx.charge(CALL_OVERHEAD + BUCKET_OVERHEAD + RS_SCATTER * n)
    sorted_buckets = ctx.parallel(
        *[
            (lambda bucket=bucket: ctx.call("Sort", bucket).to_numpy())
            for bucket in buckets
            if bucket.size
        ]
    )
    out.assign(np.concatenate(sorted_buckets))


def build_program() -> CompiledProgram:
    """Compile the Sort benchmark program."""
    b = TransformBuilder("Sort")
    b.input("A", "n")
    b.output("B", "n")
    bodies = [
        ("IS", insertion_sort, False),
        ("QS", quick_sort, True),
        ("2MS", make_merge_sort(2), True),
        ("4MS", make_merge_sort(4), True),
        ("8MS", make_merge_sort(8), True),
        ("16MS", make_merge_sort(16), True),
        ("RS", radix_sort, True),
    ]
    for label, body, recursive in bodies:
        b.rule(
            to=[("B", "all", "out")],
            from_=[("A", "all", "in")],
            body=body,
            label=label,
            recursive=recursive,
        )
    return compile_program([b.build()])


#: The single choice site of the Sort benchmark.
SORT_SITE = "Sort.B.0"


def input_generator(size: int, rng: random.Random) -> List[np.ndarray]:
    """Uniform random keys (the paper sorts random integer arrays; a
    uniform float key exercises identical comparison behaviour)."""
    return [np.array([rng.random() for _ in range(size)])]


def size_metric(n: int) -> int:
    """The engine's selection metric for a Sort call on ``n`` elements:
    input + output footprint (pass as the tuner's ``threshold_metric``)."""
    return 2 * n


def make_evaluator(
    machine_name: str = "xeon8",
    workers=None,
    trials: int = 1,
    seed: int = 20090615,
):
    """Build the Sort objective — also the picklable spec factory
    (``"repro.apps.sort:make_evaluator"``) that parallel-tuning worker
    processes call to rebuild the evaluator on their side."""
    from repro.autotuner.evaluation import Evaluator
    from repro.runtime.machine import MACHINES

    return Evaluator(
        build_program(),
        "Sort",
        input_generator,
        MACHINES[machine_name],
        workers=workers,
        trials=trials,
        seed=seed,
    )


def describe_config(config) -> str:
    """Render a tuned sort config in the paper's Table 2 notation, e.g.
    ``IS(150) QS(1420) 2MS(inf)``.  Selector thresholds are stored in
    footprint units (2n), so they are halved back to element counts."""
    selector = config.choice_for(SORT_SITE)
    if selector is None:
        return "IS(inf)"
    parts = []
    for max_size, option in selector.levels:
        bound = "inf" if max_size is None else str(max_size // 2)
        parts.append(f"{ALGORITHM_NAMES[option]}({bound})")
    return " ".join(parts)
