"""The PetaBricks benchmark suite (paper §4).

Each module builds the paper's benchmark as a PetaBricks program through
the builder frontend, with the same algorithmic choices the paper gives
the compiler:

* :mod:`repro.apps.sort` — insertion sort, quicksort, n-way merge sort
  (n in {2,4,8,16}, 2-way with a parallelizable recursive merge), and a
  16-bucket MSD radix sort, all recursing through a generalized Sort.
* :mod:`repro.apps.matmul` — basic, blocked, transposed, three recursive
  decompositions, and Strassen.
* :mod:`repro.apps.eigen` — QR iteration, bisection + inverse iteration,
  and divide-and-conquer over the symmetric tridiagonal eigenproblem.
* :mod:`repro.apps.poisson` — direct banded Cholesky, Jacobi, Red-Black
  SOR, and multigrid for the 2-D Poisson equation, with the paper's
  variable-accuracy POISSON_i / MULTIGRID_i family.
* :mod:`repro.apps.rollingsum` — the paper's running example.

Rule bodies execute real numerics on numpy-backed views; each rule
*charges* abstract work per its documented cost model (see module
docstrings), which the schedule simulator prices on an architecture
profile.  DESIGN.md records why this substitution preserves the paper's
comparisons.
"""

from repro.apps import eigen, matmul, poisson, rollingsum, sort  # noqa: F401

__all__ = ["eigen", "matmul", "poisson", "rollingsum", "sort"]
