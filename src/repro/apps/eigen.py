"""The symmetric tridiagonal eigenproblem benchmark (paper §4.2, Fig 12).

``Eig`` computes all eigenvalues and eigenvectors of a symmetric
tridiagonal matrix.  Packing (single input, single output, per the
engine's one-output-matrix-per-rule contract):

* input  ``T[2, n]``: ``T[0, i] = d_i`` (diagonal), ``T[1, i] = e_i``
  (sub-diagonal, entry ``n-1`` unused);
* output ``VL[n+1, n]``: column ``x = 0`` holds the ascending
  eigenvalues (``VL[0, k] = lambda_k``), and ``VL[1 + i, k] = Q[i, k]``.

Choices (pseudo code in the paper's Figure 13):

====  ======================  =================================================
rule  algorithm               cost model (work units ~ flops)
====  ======================  =================================================
0     QR iteration            ``9 n^3`` — sequential rotations
1     bisection + inv. iter.  ``14 n^2`` per eigenpair (``14 n^3`` total) but
                              embarrassingly parallel: one task per chunk of
                              eigenpairs
2     divide and conquer      split + two recursive Eig calls (parallel) +
                              merge ``2.4 n^3 / 2`` (secular solve + the two
                              half eigenvector products)
====  ======================  =================================================

"Cutoff 25" in Figure 12 (LAPACK dstevd's hard-coded hybrid) is simply a
configuration of this transform: DC above, QR at and below n = 25 — see
:func:`cutoff_config`.
"""

from __future__ import annotations

import random
from typing import List

import numpy as np

from repro.compiler import ChoiceConfig, CompiledProgram, Selector, TransformBuilder, compile_program
from repro.linalg import eig_bisection, eig_qr
from repro.linalg.tridiag_eig import rank_one_update

QR_FACTOR = 9.0
BI_FACTOR = 14.0
DC_MERGE_FACTOR = 1.2
CALL_OVERHEAD = 80.0
BI_CHUNK = 32  # eigenpairs per parallel task

EIG_SITE = "Eig.VL.0"
ALGORITHM_NAMES = ("QR", "Bisection", "DC")


def pack_input(d: np.ndarray, e: np.ndarray) -> np.ndarray:
    """Pack (d, e) into the transform's T[2, n] layout."""
    n = d.shape[0]
    T = np.zeros((2, n))
    T[0, :] = d
    T[1, : max(0, n - 1)] = e
    return T


def unpack_output(vl: np.ndarray):
    """Unpack VL[n+1, n] into (lam, Q) with Q[i, k] the i-th component
    of the k-th eigenvector."""
    lam = vl[0, :].copy()
    Q = vl[1:, :].copy()
    return lam, Q


def _unpack_ctx(ctx):
    T = ctx["t"].to_numpy()
    n = T.shape[1]
    d = T[0, :]
    e = T[1, : max(0, n - 1)]
    return d, e, ctx["vl"], n


def _write_result(out, lam, Q) -> None:
    n = lam.shape[0]
    packed = np.empty((n + 1, n))
    packed[0, :] = lam
    packed[1:, :] = Q
    out.assign(packed)


def eig_rule_qr(ctx) -> None:
    d, e, out, n = _unpack_ctx(ctx)
    lam, Q = eig_qr(d, e)
    _write_result(out, lam, Q)
    ctx.charge(CALL_OVERHEAD + QR_FACTOR * float(n) ** 3)


def eig_rule_bisection(ctx) -> None:
    d, e, out, n = _unpack_ctx(ctx)
    lam, Q = eig_bisection(d, e)
    _write_result(out, lam, Q)
    ctx.charge(CALL_OVERHEAD)
    # Each eigenpair is independent (paper: "embarrassingly parallel");
    # one task per chunk of eigenpairs.
    per_pair = BI_FACTOR * float(n) ** 2
    thunks = []
    for start in range(0, n, BI_CHUNK):
        pairs = min(BI_CHUNK, n - start)
        thunks.append(lambda cost=per_pair * pairs: ctx.charge(cost))
    if thunks:
        ctx.parallel(*thunks)


def eig_rule_dc(ctx) -> None:
    """Divide and conquer; the two half-problems go back through the Eig
    transform, so the tuner picks the algorithm at every level."""
    d, e, out, n = _unpack_ctx(ctx)
    if n <= 2:
        lam, Q = eig_qr(d, e)
        _write_result(out, lam, Q)
        ctx.charge(CALL_OVERHEAD + QR_FACTOR * float(n) ** 3)
        return
    m = n // 2
    rho = float(e[m - 1])
    d1 = d[:m].copy()
    d2 = d[m:].copy()
    if rho != 0.0:
        d1[m - 1] -= rho
        d2[0] -= rho
    halves = ctx.parallel(
        lambda: unpack_output(
            ctx.call("Eig", pack_input(d1, e[: m - 1])).to_numpy()
        ),
        lambda: unpack_output(
            ctx.call("Eig", pack_input(d2, e[m:])).to_numpy()
        ),
    )
    (lam1, Q1), (lam2, Q2) = halves
    if rho == 0.0:
        lam = np.concatenate([lam1, lam2])
        Q = np.zeros((n, n))
        Q[:m, :m] = Q1
        Q[m:, m:] = Q2
        order = np.argsort(lam)
        lam, Q = lam[order], Q[:, order]
    else:
        D = np.concatenate([lam1, lam2])
        z = np.concatenate([Q1[m - 1, :], Q2[0, :]])
        lam, U = rank_one_update(D, z, rho)
        Q = np.zeros((n, n))
        Q[:m, :] = Q1 @ U[:m, :]
        Q[m:, :] = Q2 @ U[m:, :]
    _write_result(out, lam, Q)
    # Merge cost: secular solve (~50 n^2, itself one-root-per-task
    # parallel) + the two (n/2 x n/2)(n/2 x n) eigenvector products
    # (n^3 flops), data parallel across output column chunks.
    ctx.charge(CALL_OVERHEAD)
    secular_chunk = 50.0 * float(n) ** 2 / 4.0
    ctx.parallel(*[(lambda c=secular_chunk: ctx.charge(c)) for _ in range(4)])
    product_chunk = DC_MERGE_FACTOR * (float(n) ** 3) / 8.0
    ctx.parallel(
        *[(lambda c=product_chunk: ctx.charge(c)) for _ in range(8)]
    )


def build_program() -> CompiledProgram:
    """Compile the Eig benchmark program."""
    b = TransformBuilder("Eig")
    b.input("T", "2", "n")
    b.output("VL", "n+1", "n")
    bodies = [
        ("QR", eig_rule_qr, False),
        ("Bisection", eig_rule_bisection, False),
        ("DC", eig_rule_dc, True),
    ]
    for label, body, recursive in bodies:
        b.rule(
            to=[("VL", "all", "vl")],
            from_=[("T", "all", "t")],
            body=body,
            label=label,
            recursive=recursive,
        )
    return compile_program([b.build()])


def size_metric(n: int) -> int:
    """Selection metric for an Eig call on an n x n problem: the cell
    footprint 2n + (n+1)n."""
    return 2 * n + (n + 1) * n


def cutoff_config(cutoff: int = 25) -> ChoiceConfig:
    """The paper's "Cutoff 25" comparator (LAPACK dstevd's strategy):
    divide and conquer above ``cutoff``, QR iteration at and below."""
    config = ChoiceConfig()
    config.set_choice(
        EIG_SITE, Selector(((size_metric(cutoff) + 1, 0), (None, 2)))
    )
    return config


def input_generator(size: int, rng: random.Random) -> List[np.ndarray]:
    """Random symmetric tridiagonal matrices, as in the paper."""
    np_rng = np.random.default_rng(rng.getrandbits(32))
    d = np_rng.standard_normal(size)
    e = np_rng.standard_normal(max(0, size - 1))
    return [pack_input(d, e)]
