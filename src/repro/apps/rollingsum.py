"""RollingSum — the paper's running example (Figure 3), via the DSL.

Exposes the compiled program plus the input generator used by tests,
examples, and the quickstart.  Rule 0 is the Theta(n^2) data-parallel
choice, rule 1 the Theta(n) sequential choice; the interesting tuning
question is which wins at which size on how many cores.
"""

from __future__ import annotations

import random
from typing import List

import numpy as np

from repro.compiler import CompiledProgram, compile_program

SOURCE = """
// RollingSum, paper Figure 3.  B[x] = A[0] + ... + A[x].
// (The paper's figure writes region(0, i); with half-open regions the
// shipped benchmark's region(0, i+1) is the consistent form.)
transform RollingSum
from A[n]
to B[n]
{
  // rule 0: sum all elements to the left -- Theta(n^2), data parallel
  to (B.cell(i) b) from (A.region(0, i+1) in) {
    b = sum(in);
  }
  // rule 1: use the previously computed value -- Theta(n), sequential
  to (B.cell(i) b) from (A.cell(i) a, B.cell(i-1) leftSum) {
    b = a + leftSum;
  }
}
"""


def build_program() -> CompiledProgram:
    """Compile the RollingSum program."""
    return compile_program(SOURCE)


def input_generator(size: int, rng: random.Random) -> List[np.ndarray]:
    """Training/benchmark inputs: uniform random values."""
    return [np.array([rng.uniform(-1.0, 1.0) for _ in range(size)])]
