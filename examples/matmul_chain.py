#!/usr/bin/env python
"""Cache-blocked schedule search: tiling and interchange on a matmul chain.

Matrix multiply written as a rolling reduction: ``S[k]`` accumulates the
first ``k`` outer products, so the ``k`` dimension is a sequential chain
and ``(i, j)`` stay data parallel.  The dependence analyzer proves the
schedule tilable (PB604: the only cross-instance dependence is carried
by ``k`` with zero free-variable offsets — nothing ever crosses between
``(i, j)`` tiles), which unlocks three reserved tunables the genetic
tuner searches alongside the leaf path:

* ``__tile_i__`` / ``__tile_j__`` — block the data-parallel space;
* ``__interchange__`` — run the whole ``k`` chain per tile while the
  tile is cache-hot, instead of streaming every tile per ``k`` step.

Run:  python examples/matmul_chain.py
"""

import numpy as np

from repro import ChoiceConfig, TraceSink, compile_program

MATMUL_CHAIN = """
transform MatMulChain
from A[n, p], B[p, m]
through S[p + 1, n, m]
to C[n, m]
{
  // S[0] is the zero accumulator
  to (S.cell(0, i, j) s) from () { s = 0.0; }

  // S[k] adds the k-th outer product; k is a sequential chain,
  // (i, j) are data parallel within a step
  to (S.cell(k, i, j) s)
  from (S.cell(k - 1, i, j) prev, A.cell(i, k - 1) a, B.cell(k - 1, j) b)
  {
    s = prev + a * b;
  }

  // the answer is the last accumulator plane
  to (C.cell(i, j) c) from (S.cell(p, i, j) s) { c = s; }
}
"""


def main() -> None:
    program = compile_program(MATMUL_CHAIN)
    mm = program.transform("MatMulChain")

    from repro.analysis.depend import schedule_candidates

    print("schedule candidates (PB604/PB605 verdicts):")
    for cand in schedule_candidates(mm):
        print(
            f"  {cand.segment}/{cand.rule}: {cand.status}  "
            f"chain ({', '.join(cand.chain_vars)})  "
            f"free ({', '.join(cand.free_vars)})"
        )
    print(f"  has_tiling() -> {mm.has_tiling()}")

    rng = np.random.default_rng(7)
    n, p, m = 48, 6, 40
    A = rng.uniform(-1.0, 1.0, (n, p))
    B = rng.uniform(-1.0, 1.0, (p, m))

    def run(**tunables):
        config = ChoiceConfig()
        config.set_tunable("MatMulChain.__leaf_path__", 2)
        for name, value in tunables.items():
            config.set_tunable(f"MatMulChain.{name}", value)
        sink = TraceSink()
        result = mm.run([A.copy(), B.copy()], config, sink=sink)
        return result.output("C"), sink

    untiled, sink0 = run()
    tiled, sink1 = run(__tile_i__=16, __tile_j__=16, __interchange__=1)
    print("\nuntiled vs tiled+interchange:")
    print(f"  bit-identical: {untiled.tobytes() == tiled.tobytes()}")
    print(f"  matches A @ B: {np.allclose(untiled, A @ B)}")
    print(
        f"  vector blocks: {sink0.counter('exec.vectorized_blocks')} untiled, "
        f"{sink1.counter('exec.vectorized_blocks')} tiled "
        f"({sink1.counter('exec.tiled_blocks')} tile invocations)"
    )


if __name__ == "__main__":
    main()
