#!/usr/bin/env python
"""Portability through retuning (paper §5.2, Tables 1 and 2, scaled down).

Autotunes the Sort benchmark on two very different simulated
architectures — the Xeon 8-way and the Sun Niagara — then cross-runs
each configuration on the other machine.  The tuned compositions differ
(the Niagara's cheap scheduling favours parallel recursive algorithms)
and running a mismatched configuration costs real performance, which is
the paper's case for shipping programs that retune per machine.

Run:  python examples/sort_portability.py   (takes a few minutes: it
performs two full autotuning runs)
"""

from repro import Evaluator, GeneticTuner, MACHINES
from repro.apps import sort as sort_app


def tune_on(machine_name: str):
    program = sort_app.build_program()
    evaluator = Evaluator(
        program, "Sort", sort_app.input_generator, MACHINES[machine_name]
    )
    tuner = GeneticTuner(
        evaluator,
        min_size=64,
        max_size=8192,
        population_size=6,
        parents=2,
        tunable_rounds=1,
        refine_passes=0,
        threshold_metric=sort_app.size_metric,
    )
    return evaluator, tuner.tune().config


def main() -> None:
    machines = ("xeon8", "niagara")
    evaluators = {}
    configs = {}
    for name in machines:
        print(f"autotuning sort on {name} ...")
        evaluators[name], configs[name] = tune_on(name)
        print(f"  tuned composition: {sort_app.describe_config(configs[name])}")

    size = 50_000
    print(f"\ncross-running at n={size}:")
    for run_on in machines:
        evaluator = evaluators[run_on]
        native = evaluator.time(configs[run_on], size)
        for trained_on in machines:
            elapsed = evaluator.time(configs[trained_on], size)
            print(
                f"  run on {run_on:8s} with {trained_on:8s}-trained config: "
                f"{elapsed / native:5.2f}x native"
            )


if __name__ == "__main__":
    main()
