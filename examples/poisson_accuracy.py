#!/usr/bin/env python
"""Accuracy choice alongside algorithmic choice (paper §4.1).

Runs the variable-accuracy autotuner over the Poisson_i / Multigrid_i
family and prints, for each grid size and accuracy bin, the chosen
algorithm — reproducing the structure of the paper's Figure 9(b): the
tuned solver calls *different accuracy variants* during its recursive
descent, often preferring several cheap low-accuracy V-cycles over one
expensive high-accuracy solve.

Run:  python examples/poisson_accuracy.py
"""

import random

import numpy as np

from repro import MACHINES
from repro.apps import poisson as p_app


def main() -> None:
    program = p_app.build_program()
    print("tuning the accuracy-aware Poisson family (grids 5..65) ...")
    config, history = p_app.tune_accuracy(
        program, MACHINES["xeon8"], max_level=6
    )

    print("\nchoices per (grid, accuracy bin):")
    print(f"{'grid':>6} " + "".join(
        f"{f'1e{2 * i + 1}':>14}" for i in range(len(p_app.ACCURACY_BINS))
    ))
    by_grid = {}
    for n, bin_index, label, _, _ in history:
        by_grid.setdefault(n, {})[bin_index] = label
    for n in sorted(by_grid):
        row = by_grid[n]
        print(f"{n:>6} " + "".join(
            f"{row.get(i, '-'):>14}" for i in range(len(p_app.ACCURACY_BINS))
        ))

    # Solve one problem at two accuracy targets with the tuned family.
    n = 65
    rng = random.Random(7)
    x0, b = p_app.input_generator(n, rng)
    print(f"\nsolving a {n}x{n} Poisson problem with the tuned family:")
    for bin_index in (1, 4):
        solver = program.transform(p_app.poisson_name(bin_index))
        result = solver.run([x0, b], config)
        accuracy = p_app.measure_accuracy(x0, result.output("Y"), b)
        target = p_app.ACCURACY_BINS[bin_index]
        print(
            f"  target {target:.0e}: achieved accuracy {accuracy:9.2e}, "
            f"work {result.graph.total_work():.2e} units"
        )


if __name__ == "__main__":
    main()
