#!/usr/bin/env python
"""Hybrid eigensolvers (paper §4.2): beating LAPACK's hard-coded cutoff.

Compares, on the simulated Xeon 8-way, four ways to solve the symmetric
tridiagonal eigenproblem: pure QR iteration, pure bisection + inverse
iteration, the LAPACK-style hard-coded hybrid (divide-and-conquer with a
QR base case at n = 25), and a freshly autotuned configuration — and
verifies all of them agree numerically.

Run:  python examples/eigen_hybrid.py
"""

import numpy as np

from repro import ChoiceConfig, Evaluator, GeneticTuner, MACHINES, Selector
from repro.apps import eigen as eig_app


def main() -> None:
    program = eig_app.build_program()
    evaluator = Evaluator(
        program, "Eig", eig_app.input_generator, MACHINES["xeon8"]
    )

    print("autotuning Eig (this runs real eigensolvers while tuning) ...")
    tuner = GeneticTuner(
        evaluator, min_size=8, max_size=128, population_size=5,
        parents=2, tunable_rounds=0, refine_passes=0,
        threshold_metric=eig_app.size_metric,
    )
    autotuned = tuner.tune().config

    candidates = {
        "QR iteration": _static(0),
        "Bisection": _static(1),
        "Cutoff 25 (LAPACK-style)": eig_app.cutoff_config(25),
        "Autotuned": autotuned,
    }

    n = 192
    rng = np.random.default_rng(11)
    d = rng.standard_normal(n)
    e = rng.standard_normal(n - 1)
    packed = eig_app.pack_input(d, e)
    T = np.diag(d) + np.diag(e, -1) + np.diag(e, 1)
    expected = np.linalg.eigvalsh(T)

    print(f"\nsolving a random symmetric tridiagonal problem, n={n}:")
    for name, config in candidates.items():
        result = program.transform("Eig").run([packed], config)
        lam, Q = eig_app.unpack_output(result.output("VL"))
        max_eig_err = float(np.max(np.abs(lam - expected)))
        residual = float(np.max(np.abs(T @ Q - Q * lam[None, :])))
        elapsed = evaluator.time(config, n)
        print(
            f"  {name:28s} simulated time {elapsed:12.0f}   "
            f"|lambda err| {max_eig_err:.1e}   residual {residual:.1e}"
        )


def _static(option: int) -> ChoiceConfig:
    config = ChoiceConfig()
    config.set_choice(eig_app.EIG_SITE, Selector.static(option))
    return config


if __name__ == "__main__":
    main()
