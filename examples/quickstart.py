#!/usr/bin/env python
"""Quickstart: algorithmic choice in 60 lines.

Compiles the paper's RollingSum example (Figure 3), runs it under both
of its algorithmic choices, autotunes it for two simulated machines, and
shows that the tuned choice is architecture-dependent.

Run:  python examples/quickstart.py
"""

import random

import numpy as np

from repro import ChoiceConfig, Evaluator, GeneticTuner, MACHINES, Selector, compile_program
from repro.apps.rollingsum import SOURCE, input_generator


def main() -> None:
    program = compile_program(SOURCE)
    rolling = program.transform("RollingSum")

    # 1. Run with the default configuration.
    data = np.arange(10.0)
    result = rolling.run([data])
    print("input :", data)
    print("output:", result.output("B"))

    # 2. Force each algorithmic choice explicitly and compare the work.
    for option, label in ((0, "rule 0: O(n^2), data parallel"),
                          (1, "rule 1: O(n), sequential")):
        config = ChoiceConfig()
        config.set_choice("RollingSum.B.1", Selector.static(option))
        run = rolling.run([np.ones(512)], config)
        print(f"{label}: total work = {run.graph.total_work():.0f} units, "
              f"{len(run.graph)} tasks")

    # 3. Autotune for one core and for eight cores.
    for machine_name in ("xeon1", "xeon8"):
        evaluator = Evaluator(
            program, "RollingSum", input_generator, MACHINES[machine_name]
        )
        tuner = GeneticTuner(
            evaluator, min_size=16, max_size=4096, population_size=4,
            tunable_rounds=1, refine_passes=0,
        )
        tuned = tuner.tune()
        selector = tuned.config.choice_for("RollingSum.B.1")
        print(f"tuned on {machine_name}: site RollingSum.B.1 -> "
              f"{selector.describe() if selector else 'default'} "
              f"(simulated time {tuned.best_time:.0f})")


if __name__ == "__main__":
    main()
