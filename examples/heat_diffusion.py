#!/usr/bin/env python
"""Heat diffusion in the DSL: versions, priorities, and scheduling.

Shows the language features working together on one of the paper's
motivating domains: a versioned matrix ``U<0..k>[n]`` holds the
simulation timeline, a three-point stencil rule computes interior cells
from the previous version, a lower-priority rule handles the boundary
corner cases, and the compiler derives that versions must be swept in
ascending order while cells within a version stay data parallel.

Run:  python examples/heat_diffusion.py
"""

import numpy as np

from repro import ChoiceConfig, MACHINES, WorkStealingScheduler, compile_program

HEAT = """
transform Heat
from A[n]
to B[n]
through U<0..k>[n]
{
  // version 0 is the input
  to (U.cell(0, i) u) from (A.cell(i) a) { u = a; }

  // interior smoothing (reads three cells of the previous version)
  to (U.cell(t, i) u)
  from (U.cell(t-1, i-1) l, U.cell(t-1, i) m, U.cell(t-1, i+1) r)
  {
    u = (l + 2 * m + r) / 4;
  }

  // boundaries carry forward (corner-case rule, lower priority)
  secondary to (U.cell(t, i) u) from (U.cell(t-1, i) m) { u = m; }

  // the answer is the last version
  to (B.cell(i) b) from (U.cell(k, i) u) { b = u; }
}
"""


def main() -> None:
    program = compile_program(HEAT)
    heat = program.transform("Heat")

    print("choice grid of U (version dimension first):")
    for segment in heat.grid.segments["U"]:
        options = ", ".join(o.describe(heat.ir) for o in segment.options)
        order = heat.depgraph.rule_directions.get(
            (segment.key, segment.options[0].primary)
        )
        sweep = "parallel" if order is None or order.is_parallel else (
            f"sweep dims {order.priority} signs {order.signs}"
        )
        print(f"  {segment.key}: {segment.box}  rules: {options}  [{sweep}]")

    # A unit spike spreading out over 10 steps.
    n, steps = 41, 10
    spike = np.zeros(n)
    spike[n // 2] = 1.0
    result = heat.run([spike], sizes={"k": steps})
    out = result.output("B")
    print(f"\nafter {steps} steps: peak {out.max():.4f} "
          f"(mass conserved: {out.sum():.6f})")

    # Parallelism: each version's cells are independent; versions chain.
    # (A larger grid so per-version work dominates task overheads.)
    wide = np.zeros(4001)
    wide[2000] = 1.0
    config = ChoiceConfig()
    config.set_tunable("Heat.__seq_cutoff__", 1)
    config.set_tunable("Heat.__block_size__", 512)
    graph = heat.run([wide], config, sizes={"k": 6}).graph
    for workers in (1, 4, 8):
        sched = WorkStealingScheduler(MACHINES["xeon8"]).run(graph, workers=workers)
        print(f"  {workers} workers: simulated time {sched.makespan:10.0f} "
              f"(speedup {sched.speedup:4.2f})")


if __name__ == "__main__":
    main()
