"""Figure 15: Matrix Multiply performance on 8 cores.

Series: basic, blocking, transpose, recursive (the c-dimension
decomposition shown in the paper's Figure 1), "Strassen 256" (Strassen
until n = 256, then switching to the basic/flat multiply), and the
autotuned hybrid.  Shape expectations: transpose < blocking < basic
(the non-algorithmic choices "make a huge impact"), Strassen's
asymptotics win at the large end, the autotuned algorithm at least ties
the best variant everywhere.
"""

import pytest
from harness import cached_config, fmt_row, write_report

from repro.apps import matmul as mm_app
from repro.autotuner import Evaluator, GeneticTuner
from repro.compiler import ChoiceConfig, Selector
from repro.runtime import MACHINES

SIZES = (16, 32, 64, 128, 256, 512)


def flat(option):
    config = ChoiceConfig()
    config.set_choice(mm_app.MM_SITE, Selector.static(option))
    return config


def recursive_with_base(option, base_n):
    config = ChoiceConfig()
    config.set_choice(
        mm_app.MM_SITE,
        Selector(((mm_app.size_metric(base_n) + 1, 2), (None, option))),
    )
    return config


def tune_matmul_xeon8():
    program = mm_app.build_program()
    evaluator = Evaluator(
        program, "MatrixMultiply", mm_app.input_generator, MACHINES["xeon8"]
    )
    tuner = GeneticTuner(
        evaluator,
        min_size=16,
        max_size=256,
        population_size=6,
        parents=2,
        tunable_rounds=1,
        refine_passes=0,
        threshold_metric=mm_app.size_metric,
    )
    return tuner.tune().config


def build_rows():
    program = mm_app.build_program()
    evaluator = Evaluator(
        program, "MatrixMultiply", mm_app.input_generator, MACHINES["xeon8"]
    )
    autotuned = cached_config("matmul_xeon8", tune_matmul_xeon8)
    series = {
        "Basic": flat(0),
        "Blocking": flat(1),
        "Transpose": flat(2),
        "Recursive": recursive_with_base(3, 16),
        "Strassen256": recursive_with_base(6, 256),
        "Autotuned": autotuned,
    }
    rows = []
    for size in SIZES:
        times = {
            name: evaluator.time(config, size)
            for name, config in series.items()
        }
        rows.append((size, times))
    return list(series), rows


def test_fig15_matmul(benchmark):
    columns, rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    widths = [6] + [14] * len(columns)
    lines = [
        "Figure 15: Matrix Multiply on 8 cores (simulated time vs n)",
        fmt_row(["n"] + columns, widths),
    ]
    for size, times in rows:
        lines.append(
            fmt_row([size] + [f"{times[c]:.3g}" for c in columns], widths)
        )
    write_report("fig15_matmul", lines)

    for size, times in rows:
        # Non-algorithmic choices: transpose < blocking < basic.
        assert times["Transpose"] < times["Blocking"] < times["Basic"]
        # Autotuned at least ties the best series (within noise).
        best = min(times[c] for c in columns if c != "Autotuned")
        assert times["Autotuned"] <= best * 1.10, f"autotuned loses at n={size}"
    # Strassen's asymptotics show at the large end.
    _, large = rows[-1]
    assert large["Strassen256"] < large["Basic"]
