"""Paper §1 (introduction): the std::sort cutoff experiment.

libstdc++ switches from merge sort to insertion sort at 15 elements; the
paper reports that cutoffs around 60-150 perform much better on (their)
current architectures.  We sweep the IS cutoff of a 2-way merge sort on
the Xeon 8-way profile and report the optimum — the shape claim is that
the best cutoff is far above 15.
"""

import pytest
from harness import fmt_row, write_report

from repro.apps import sort as sort_app
from repro.autotuner import Evaluator
from repro.compiler import ChoiceConfig, Selector
from repro.runtime import MACHINES

CUTOFFS = (4, 15, 30, 60, 100, 150, 300, 600, 1200)
SIZE = 30000


def build_rows():
    program = sort_app.build_program()
    evaluator = Evaluator(
        program, "Sort", sort_app.input_generator, MACHINES["xeon8"]
    )
    rows = []
    for cutoff in CUTOFFS:
        config = ChoiceConfig()
        config.set_choice(
            sort_app.SORT_SITE,
            Selector(((sort_app.size_metric(cutoff), 0), (None, 2))),
        )
        rows.append((cutoff, evaluator.time(config, SIZE)))
    return rows


def test_intro_cutoff(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    best_cutoff, best_time = min(rows, key=lambda r: r[1])
    lines = [
        "Intro experiment: merge sort -> insertion sort cutoff sweep",
        f"(2MS over IS, n={SIZE}, Xeon 8-way profile)",
        fmt_row(["cutoff", "time"], [8, 14]),
    ]
    for cutoff, elapsed in rows:
        marker = "  <-- best" if cutoff == best_cutoff else ""
        lines.append(fmt_row([cutoff, f"{elapsed:.0f}"], [8, 14]) + marker)
    lines.append(
        f"best cutoff = {best_cutoff} "
        f"(paper: 60-150 beats libstdc++'s 15)"
    )
    write_report("intro_cutoff", lines)

    times = dict(rows)
    assert best_cutoff >= 30, "optimal cutoff should be well above 15"
    assert times[15] > best_time, "cutoff 15 must be suboptimal"
