"""Fusion microbenchmark: the verified fused rewrite vs the program as
written.

A two-rule elementwise pipeline (`A → T → B`, the consumer reading the
intermediate once) runs under the vector leaf path with `__fuse__` off
and on.  Fusion eliminates the intermediate matrix allocation and one
full traversal, collapsing the pipeline into a single vector sweep; the
outputs are checked bit-for-bit (the PB601 legality proof's claim).
For contrast, a PB602-blocked chain (rolling sum) is also timed with
the knob on — a verified no-op, so its "speedup" hovers at 1x.

Results go to ``benchmarks/results/fusion.txt`` (human) and
``benchmarks/results/BENCH_fusion.json`` (machine-readable; CI uploads
it as an artifact).

Script mode: ``python benchmarks/bench_fusion.py [--quick]``.
``--quick`` shrinks sizes/repeats and exits nonzero unless the fused
pipeline is at least 1.2x the unfused one — the CI perf gate.
"""

import argparse
import statistics
import sys
import time

import numpy as np

from harness import fmt_row, write_json, write_report

from repro.compiler import ChoiceConfig, compile_program

PIPELINE = """
transform Pipeline
from A[n, m]
through T[n, m]
to B[n, m]
{
  to (T.cell(x, y) t) from (A.cell(x, y) a) { t = a * 2.0 + 1.0; }
  to (B.cell(x, y) b) from (T.cell(x, y) t) { b = t * 1.5 - 0.5; }
}
"""

ROLLINGSUM = """
transform RollingSum
from A[n]
through S[n]
to B[n]
{
  primary to (S.cell(0) s) from (A.cell(0) a) { s = a; }
  to (S.cell(i) s) from (A.cell(i) a, S.cell(i - 1) prev) { s = a + prev; }
  to (B.cell(i) b) from (S.cell(i) s) { b = s; }
}
"""


def _config(transform: str, fuse: int, leaf: int = 2) -> ChoiceConfig:
    config = ChoiceConfig()
    config.set_tunable(f"{transform}.__leaf_path__", leaf)
    config.set_tunable(f"{transform}.__fuse__", fuse)
    return config


def _time_run(transform, inputs, config, repeats: int):
    # Warm up closure compilation / vector planning / the fused-variant
    # cache so the medians compare steady-state execution.
    transform.run({k: v.copy() for k, v in inputs.items()}, config)
    times = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = transform.run(
            {k: v.copy() for k, v in inputs.items()}, config
        )
        times.append(time.perf_counter() - start)
    return statistics.median(times), result


def _bench_case(name, transform, inputs, repeats, leaf=2):
    """Time unfused vs fused; verify bit-for-bit parity."""
    row = {"case": name, "times": {}}
    baseline = None
    for fuse, label in ((0, "unfused"), (1, "fused")):
        config = _config(transform.name, fuse, leaf)
        seconds, result = _time_run(transform, inputs, config, repeats)
        outputs = {
            out: matrix.data.tobytes()
            for out, matrix in result.outputs.items()
        }
        if baseline is None:
            baseline = outputs
        elif outputs != baseline:
            raise AssertionError(f"{name}: fused output differs from unfused")
        row["times"][label] = seconds
    row["speedup"] = row["times"]["unfused"] / row["times"]["fused"]
    row["has_fusion"] = transform.has_fusion()
    return row


def run_benchmark(quick: bool = False):
    rng = np.random.default_rng(13)
    pipe_n = 384 if quick else 1024
    rs_n = 512 if quick else 2048
    repeats = 5 if quick else 9

    rows = []

    program = compile_program(PIPELINE)
    transform = program.transform("Pipeline")
    assert transform.has_fusion(), "pipeline must be PB601-legal"
    inputs = {"A": rng.uniform(-4.0, 4.0, (pipe_n, pipe_n))}
    rows.append(_bench_case("pipeline", transform, inputs, repeats))

    program = compile_program(ROLLINGSUM)
    transform = program.transform("RollingSum")
    assert not transform.has_fusion(), "rolling sum must stay blocked"
    inputs = {"A": rng.uniform(-1.0, 1.0, rs_n)}
    # The chain rule is sequential: the closure path is its real engine.
    rows.append(_bench_case("rollingsum", transform, inputs, repeats, leaf=1))

    payload = {
        "quick": quick,
        "sizes": {"pipeline": pipe_n, "rollingsum": rs_n},
        "repeats": repeats,
        "cases": rows,
    }
    write_json("BENCH_fusion", payload)

    widths = [12, 12, 12, 10, 8]
    lines = [
        "Verified fusion: median wall-clock seconds per run (vector leaves)",
        fmt_row(["case", "unfused", "fused", "speedup", "fused?"], widths),
    ]
    for row in rows:
        t = row["times"]
        lines.append(
            fmt_row(
                [
                    row["case"],
                    f"{t['unfused']:.4f}",
                    f"{t['fused']:.4f}",
                    f"{row['speedup']:.2f}x",
                    "yes" if row["has_fusion"] else "no",
                ],
                widths,
            )
        )
    lines.append(
        "(rollingsum is PB602-blocked: __fuse__=1 is a verified no-op, "
        "so its ratio is noise around 1x)"
    )
    write_report("fusion", lines)
    return payload


def test_fusion(benchmark):
    payload = benchmark.pedantic(
        run_benchmark, args=(True,), rounds=1, iterations=1
    )
    by_case = {row["case"]: row for row in payload["cases"]}
    assert by_case["pipeline"]["speedup"] > 1.2
    assert by_case["pipeline"]["has_fusion"]
    assert not by_case["rollingsum"]["has_fusion"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes + enforce the CI gate (fused >= 1.2x unfused "
        "on the elementwise pipeline)",
    )
    args = parser.parse_args(argv)
    payload = run_benchmark(quick=args.quick)
    if args.quick:
        by_case = {row["case"]: row for row in payload["cases"]}
        speedup = by_case["pipeline"]["speedup"]
        if speedup < 1.2:
            print(
                f"FAIL: fused pipeline is {speedup:.2f}x the unfused run "
                f"(need >= 1.2x)",
                file=sys.stderr,
            )
            return 1
        print(f"fusion perf gate OK: fused {speedup:.2f}x unfused")
    return 0


if __name__ == "__main__":
    sys.exit(main())
