"""Fault recovery: the price of surviving crashes, hangs, and flakes.

The fault-tolerance layer promises that a tuning run under injected
faults finishes with the byte-identical configuration of a fault-free
run — recovery costs wall-clock time, never answers.  This benchmark
tunes Sort with ``jobs=2`` under fault plans of increasing severity,
records the wall-clock overhead and the recovery work performed
(retries, pool rebuilds, deadline timeouts), and asserts the parity
contract for every plan.
"""

import time

from harness import fmt_row, write_report

from repro.apps import sort as sort_app
from repro.autotuner import GeneticTuner
from repro.autotuner.parallel import EvaluatorSpec, ParallelEvaluator
from repro.faults import FaultInjector
from repro.observe import TraceSink

SPEC = EvaluatorSpec.make("repro.apps.sort:make_evaluator", "xeon8")
MIN_SIZE = 32
MAX_SIZE = 512

#: (label, injection spec or None for the clean baseline)
PLANS = (
    ("clean", None),
    ("crash 10%", "worker-crash:0.1"),
    ("crash 20% + hang 5%", "worker-crash:0.2,worker-hang:0.05,hang=2"),
    ("crash + hang + flaky", "worker-crash:0.2,worker-hang:0.05,"
                             "transient:0.1,corrupt-record:0.1,hang=2"),
)


def tune_under(spec_text):
    sink = TraceSink(capture_events=False)
    injector = FaultInjector.parse(spec_text) if spec_text else None
    evaluator = ParallelEvaluator.from_spec(
        SPEC,
        jobs=2,
        sink=sink,
        injector=injector,
        measure_timeout=1.0,
        retry_backoff=0.0,
    )
    tuner = GeneticTuner(
        evaluator,
        min_size=MIN_SIZE,
        max_size=MAX_SIZE,
        population_size=6,
        tunable_rounds=1,
        refine_passes=0,
        threshold_metric=sort_app.size_metric,
    )
    begin = time.perf_counter()
    try:
        result = tuner.tune()
    finally:
        evaluator.close()
    return result, time.perf_counter() - begin, sink


def build_rows():
    return [(label, *tune_under(spec)) for label, spec in PLANS]


def test_fault_recovery_overhead(benchmark):
    data = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    _, clean_result, clean_time, _ = data[0]

    widths = [22, 10, 10, 9, 9, 9]
    lines = [
        f"Fault recovery: Sort on xeon8, jobs=2, sizes "
        f"{MIN_SIZE}..{MAX_SIZE}",
        fmt_row(
            ["fault plan", "wall (s)", "overhead", "retries", "rebuilds",
             "timeouts"],
            widths,
        ),
    ]
    for label, result, elapsed, sink in data:
        lines.append(
            fmt_row(
                [
                    label,
                    f"{elapsed:.2f}",
                    f"{elapsed / clean_time:.2f}x",
                    sink.counter("tuner.pool.retries"),
                    sink.counter("tuner.pool.rebuilds"),
                    sink.counter("tuner.pool.timeouts"),
                ],
                widths,
            )
        )
    lines.append(
        "contract: every plan lands on the byte-identical configuration"
    )
    write_report("fault_recovery", lines)

    for label, result, _, _ in data[1:]:
        assert result.config.to_json() == clean_result.config.to_json(), label
        assert result.best_time == clean_result.best_time, label
