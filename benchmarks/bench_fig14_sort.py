"""Figure 14: Sort performance on 8 cores.

Series: insertion sort, quicksort, 2-way merge sort, radix sort, and the
autotuned hybrid, across input sizes up to 1750 (the paper's x-range).
Expected shape (not absolute numbers): the autotuned composition is at
least as fast as every single algorithm at every size, insertion sort
wins only at the small end, and the single-algorithm curves cross.
"""

import random

import pytest
from harness import cached_config, fmt_row, write_report

from repro.apps import sort as sort_app
from repro.autotuner import Evaluator, GeneticTuner
from repro.compiler import ChoiceConfig, Selector
from repro.runtime import MACHINES

SIZES = (125, 250, 500, 750, 1000, 1250, 1500, 1750)
SERIES = {"InsertionSort": 0, "QuickSort": 1, "MergeSort": 2, "RadixSort": 6}


def tune_sort_xeon8() -> ChoiceConfig:
    program = sort_app.build_program()
    evaluator = Evaluator(
        program, "Sort", sort_app.input_generator, MACHINES["xeon8"]
    )
    tuner = GeneticTuner(
        evaluator,
        min_size=64,
        max_size=16384,
        population_size=6,
        parents=2,
        tunable_rounds=1,
        refine_passes=0,
        threshold_metric=sort_app.size_metric,
    )
    return tuner.tune().config


def build_rows():
    program = sort_app.build_program()
    evaluator = Evaluator(
        program, "Sort", sort_app.input_generator, MACHINES["xeon8"]
    )
    autotuned = cached_config("sort_xeon8", tune_sort_xeon8)
    columns = list(SERIES) + ["Autotuned"]
    rows = []
    for size in SIZES:
        times = {}
        for name, option in SERIES.items():
            config = ChoiceConfig()
            config.set_choice(sort_app.SORT_SITE, Selector.static(option))
            times[name] = evaluator.time(config, size)
        times["Autotuned"] = evaluator.time(autotuned, size)
        rows.append((size, times))
    return autotuned, columns, rows


def test_fig14_sort(benchmark):
    autotuned, columns, rows = benchmark.pedantic(
        build_rows, rounds=1, iterations=1
    )
    widths = [6] + [14] * len(columns)
    lines = [
        "Figure 14: Sort on 8 cores (simulated time units vs input size)",
        f"autotuned config: {sort_app.describe_config(autotuned)}",
        fmt_row(["n"] + columns, widths),
    ]
    for size, times in rows:
        lines.append(
            fmt_row(
                [size] + [f"{times[c]:.0f}" for c in columns], widths
            )
        )
    write_report("fig14_sort", lines)

    # Shape assertions (who wins, where):
    for size, times in rows:
        best_single = min(times[c] for c in SERIES)
        assert times["Autotuned"] <= best_single * 1.10, (
            f"autotuned loses to a single algorithm at n={size}"
        )
    # Insertion sort must lose badly at the large end.
    _, large = rows[-1]
    assert large["InsertionSort"] > 2 * large["Autotuned"]
