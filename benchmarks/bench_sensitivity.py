"""Sensitivity of tuned choices to the machine's scheduling overheads.

The paper's cross-architecture results (Tables 1-2) hinge on one
mechanism: the ratio between compute speed and task-scheduling overhead
decides how much parallelism is worth exposing.  This ablation makes
the mechanism explicit by sweeping the spawn cost of a synthetic 8-core
machine and re-tuning the sort benchmark's sequential cutoff at each
point: cheaper spawning should drive the tuned cutoff down (finer tasks)
and expensive spawning should drive it up.
"""

import pytest
from harness import cached_config, fmt_row, write_report

from bench_fig14_sort import tune_sort_xeon8
from repro.apps import sort as sort_app
from repro.autotuner import Evaluator, nary_search
from repro.autotuner.candidates import set_tunable, Candidate
from repro.compiler import ChoiceConfig
from repro.runtime import Machine

SPAWN_COSTS = (20.0, 150.0, 1200.0)
SIZE = 32768


def machine_with_spawn(spawn: float) -> Machine:
    return Machine(
        name=f"synthetic-spawn{spawn:.0f}",
        cores=8,
        cycle_time=1.0,
        spawn_time=spawn,
        steal_time=4.0 * spawn,
    )


def tuned_cutoff_for(spawn: float, base_config: ChoiceConfig):
    program = sort_app.build_program()
    evaluator = Evaluator(
        program, "Sort", sort_app.input_generator, machine_with_spawn(spawn)
    )
    candidate = Candidate(config=base_config)

    def objective(value: int) -> float:
        probe = set_tunable(candidate, "Sort.__seq_cutoff__", value)
        return evaluator.time(probe.config, SIZE)

    best, cost = nary_search(objective, 8, SIZE * 2, arity=5, rounds=4)
    return best, cost


def build_rows():
    base = cached_config("sort_xeon8", tune_sort_xeon8)
    rows = []
    for spawn in SPAWN_COSTS:
        cutoff, cost = tuned_cutoff_for(spawn, base)
        rows.append((spawn, cutoff, cost))
    return rows


def test_sensitivity_spawn_cost(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    lines = [
        "Ablation: tuned sequential cutoff vs spawn cost "
        f"(sort, n={SIZE}, 8 cores)",
        fmt_row(["spawn cost", "tuned cutoff", "time"], [12, 14, 14]),
    ]
    for spawn, cutoff, cost in rows:
        lines.append(
            fmt_row([f"{spawn:.0f}", cutoff, f"{cost:.0f}"], [12, 14, 14])
        )
    write_report("sensitivity_spawn", lines)

    cutoffs = [cutoff for _, cutoff, _ in rows]
    # More expensive spawning -> coarser tasks (monotone non-decreasing).
    assert cutoffs == sorted(cutoffs)
    assert cutoffs[-1] > cutoffs[0]
