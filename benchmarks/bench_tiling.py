"""Tiling microbenchmark: the cache-blocked schedule vs the plain sweep.

A matmul accumulation chain with momentum (``S[k] = 0.625 S[k-1] +
0.375 S[k-2] + A[:,k] x B[k,:]``) runs under the vector leaf path at
sizes where the versioned accumulator exceeds the last-level cache: the
untiled schedule streams three whole planes per chain step from memory,
while ``__tile_i__``/``__tile_j__`` + ``__interchange__`` (PB604-legal:
all free-variable dependence offsets are zero) runs the entire chain
over one L2-resident tile at a time.  Outputs are checked bit-for-bit
at every tile size — the legality proof's claim.  For contrast, a
PB605-blocked wavefront stencil is also timed with the knobs on: the
engine's own re-proof refuses to tile it, so its "speedup" hovers at
1x.

Results go to ``benchmarks/results/tiling.txt`` (human) and
``benchmarks/results/BENCH_tiling.json`` (machine-readable; CI uploads
it as an artifact).

Script mode: ``python benchmarks/bench_tiling.py [--quick]``.
``--quick`` shrinks sizes/repeats and exits nonzero unless the best
tiled schedule is at least 1.2x the untiled one — the CI perf gate.
"""

import argparse
import statistics
import sys
import time

import numpy as np

from harness import fmt_row, write_json, write_report

from repro.compiler import ChoiceConfig, compile_program

MATMUL_MOMENTUM = """
transform MatMulMomentum
from A[n, p], B[p, m]
through S[p + 2, n, m]
to C[n, m]
{
  to (S.cell(0, i, j) s) from () { s = 0.0; }
  to (S.cell(1, i, j) s) from () { s = 0.0; }
  to (S.cell(k, i, j) s)
  from (S.cell(k - 1, i, j) r1, S.cell(k - 2, i, j) r2,
        A.cell(i, k - 2) a, B.cell(k - 2, j) b)
  {
    s = r1 * 0.625 + r2 * 0.375 + a * b;
  }
  to (C.cell(i, j) c) from (S.cell(p + 1, i, j) s) { c = s; }
}
"""

HEAT = """
transform Heat
from A[n]
to B[n]
through U<0..k>[n]
{
  to (U.cell(0, i) u) from (A.cell(i) a) { u = a; }
  to (U.cell(t, i) u)
  from (U.cell(t-1, i-1) l, U.cell(t-1, i) m, U.cell(t-1, i+1) r)
  {
    u = (l + 2 * m + r) / 4;
  }
  secondary to (U.cell(t, i) u) from (U.cell(t-1, i) m) { u = m; }
  to (B.cell(i) b) from (U.cell(k, i) u) { b = u; }
}
"""


def _config(transform: str, tile: int = 0, interchange: int = 0) -> ChoiceConfig:
    config = ChoiceConfig()
    config.set_tunable(f"{transform}.__leaf_path__", 2)
    if tile:
        config.set_tunable(f"{transform}.__tile_i__", tile)
        config.set_tunable(f"{transform}.__tile_j__", tile)
    config.set_tunable(f"{transform}.__interchange__", interchange)
    return config


def _time_run(transform, inputs, config, repeats: int, sizes=None):
    # Warm up closure compilation / vector planning / geometry caches so
    # the medians compare steady-state execution.
    transform.run(
        {k: v.copy() for k, v in inputs.items()}, config, sizes=sizes
    )
    times = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = transform.run(
            {k: v.copy() for k, v in inputs.items()}, config, sizes=sizes
        )
        times.append(time.perf_counter() - start)
    return statistics.median(times), result


def _bench_case(name, transform, inputs, tile_sizes, repeats, sizes=None):
    """Time untiled vs each tiled schedule; verify bit-for-bit parity."""
    row = {"case": name, "times": {}, "has_tiling": transform.has_tiling()}
    baseline_out = None
    for tile in (0,) + tuple(tile_sizes):
        label = "untiled" if tile == 0 else f"tile{tile}"
        config = _config(transform.name, tile, interchange=1 if tile else 0)
        seconds, result = _time_run(
            transform, inputs, config, repeats, sizes=sizes
        )
        outputs = {
            out: matrix.data.tobytes()
            for out, matrix in result.outputs.items()
        }
        if baseline_out is None:
            baseline_out = outputs
        elif outputs != baseline_out:
            raise AssertionError(f"{name}: {label} output differs from untiled")
        row["times"][label] = seconds
    untiled = row["times"]["untiled"]
    best_label = min(
        (lbl for lbl in row["times"] if lbl != "untiled"),
        key=lambda lbl: row["times"][lbl],
    )
    row["best"] = best_label
    row["speedup"] = untiled / row["times"][best_label]
    return row


def run_benchmark(quick: bool = False):
    rng = np.random.default_rng(29)
    # The accumulator must exceed the last-level cache for the untiled
    # sweep to pay memory bandwidth: (p + 2) * n * m * 8 bytes.
    n = 2048 if quick else 2560
    p = 10 if quick else 12
    heat_n = 2048 if quick else 4096
    heat_k = 48 if quick else 96
    tile_sizes = (128, 192, 256)
    repeats = 3 if quick else 5

    rows = []

    transform = compile_program(MATMUL_MOMENTUM).transform("MatMulMomentum")
    assert transform.has_tiling(), "momentum chain must be PB604-legal"
    inputs = {
        "A": rng.uniform(-1.0, 1.0, (n, p)),
        "B": rng.uniform(-1.0, 1.0, (p, n)),
    }
    rows.append(_bench_case("matmul", transform, inputs, tile_sizes, repeats))

    transform = compile_program(HEAT).transform("Heat")
    inputs = {"A": rng.uniform(-1.0, 1.0, heat_n)}
    # The interior wavefront rule is PB605-blocked: the knobs must be a
    # verified no-op (only the 1-D boundary chain could ever tile, and
    # its free extent is too small for these tile sizes).
    rows.append(
        _bench_case(
            "heat-blocked",
            transform,
            inputs,
            (128,),
            repeats,
            sizes={"k": heat_k},
        )
    )

    payload = {
        "quick": quick,
        "sizes": {
            "matmul": {"n": n, "m": n, "p": p},
            "heat-blocked": {"n": heat_n, "k": heat_k},
        },
        "tile_sizes": list(tile_sizes),
        "repeats": repeats,
        "cases": rows,
    }
    write_json("BENCH_tiling", payload)

    widths = [14, 12, 12, 10, 10]
    lines = [
        "Cache-blocked schedules: median wall-clock seconds per run "
        "(vector leaves)",
        fmt_row(["case", "untiled", "best tiled", "speedup", "tilable?"],
                widths),
    ]
    for row in rows:
        t = row["times"]
        lines.append(
            fmt_row(
                [
                    row["case"],
                    f"{t['untiled']:.4f}",
                    f"{t[row['best']]:.4f} ({row['best']})",
                    f"{row['speedup']:.2f}x",
                    "yes" if row["has_tiling"] else "no",
                ],
                widths,
            )
        )
    lines.append(
        "(heat-blocked is PB605-blocked: the tile knobs are a verified "
        "no-op, so its ratio is noise around 1x)"
    )
    write_report("tiling", lines)
    return payload


def test_tiling(benchmark):
    payload = benchmark.pedantic(
        run_benchmark, args=(True,), rounds=1, iterations=1
    )
    by_case = {row["case"]: row for row in payload["cases"]}
    assert by_case["matmul"]["speedup"] > 1.2
    assert by_case["matmul"]["has_tiling"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes + enforce the CI gate (best tiled >= 1.2x "
        "untiled on the matmul chain)",
    )
    args = parser.parse_args(argv)
    payload = run_benchmark(quick=args.quick)
    if args.quick:
        by_case = {row["case"]: row for row in payload["cases"]}
        speedup = by_case["matmul"]["speedup"]
        if speedup < 1.2:
            print(
                f"FAIL: best tiled matmul is {speedup:.2f}x the untiled "
                f"run (need >= 1.2x)",
                file=sys.stderr,
            )
            return 1
        print(
            f"tiling perf gate OK: best tiled ({by_case['matmul']['best']}) "
            f"{speedup:.2f}x untiled"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
