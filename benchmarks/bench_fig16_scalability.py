"""Figure 16: parallel scalability of the four autotuned benchmarks.

Speedup (relative to one worker) as worker threads are added, on the
Xeon 8-way profile, using each benchmark's 8-core-autotuned
configuration.  Shape expectations: all four benchmarks scale; the
embarrassingly-parallel-ish benchmarks (matmul, eigen via DC/bisection
structure) scale best, and nothing scales past the worker count.
"""

import random

import pytest
from harness import cached_config, fmt_row, write_report

from bench_fig11_poisson import MACHINE as _  # noqa: F401 (same profile)
from bench_fig12_eigen import tune_eigen_xeon8
from bench_fig14_sort import tune_sort_xeon8
from bench_fig15_matmul import tune_matmul_xeon8
from repro.apps import eigen as eig_app
from repro.apps import matmul as mm_app
from repro.apps import poisson as p_app
from repro.apps import sort as sort_app
from repro.runtime import MACHINES, WorkStealingScheduler

WORKERS = (1, 2, 3, 4, 5, 6, 7, 8)
MACHINE = MACHINES["xeon8"]


def graph_for(app, transform_name, config_name, tune, size):
    program = app.build_program()
    config = cached_config(config_name, tune)
    rng = random.Random(16)
    inputs = app.input_generator(size, rng)
    return program.transform(transform_name).run(inputs, config).graph


def build_rows():
    program_p = p_app.build_program()
    poisson_cfg = cached_config(
        "poisson_xeon8",
        lambda: p_app.tune_accuracy(program_p, MACHINE, max_level=7)[0],
    )
    rng = random.Random(16)
    x0, b = p_app.input_generator(65, rng)
    poisson_graph = (
        program_p.transform(p_app.poisson_name(4)).run([x0, b], poisson_cfg).graph
    )

    graphs = {
        "Matrix Multiply": graph_for(
            mm_app, "MatrixMultiply", "matmul_xeon8", tune_matmul_xeon8, 256
        ),
        "Sort": graph_for(sort_app, "Sort", "sort_xeon8", tune_sort_xeon8, 100_000),
        "Poisson": poisson_graph,
        "Eigenvector Solve": graph_for(
            eig_app, "Eig", "eigen_xeon8", tune_eigen_xeon8, 256
        ),
    }
    scheduler = WorkStealingScheduler(MACHINE)
    rows = {}
    for name, graph in graphs.items():
        base = scheduler.run(graph, workers=1).makespan
        rows[name] = [
            base / scheduler.run(graph, workers=w).makespan for w in WORKERS
        ]
    return rows


def test_fig16_scalability(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    names = list(rows)
    widths = [20] + [8] * len(WORKERS)
    lines = [
        "Figure 16: speedup vs worker threads (Xeon 8-way profile, "
        "autotuned configs)",
        fmt_row(["benchmark"] + [f"{w}thr" for w in WORKERS], widths),
    ]
    for name in names:
        lines.append(
            fmt_row([name] + [f"{s:.2f}" for s in rows[name]], widths)
        )
    write_report("fig16_scalability", lines)

    for name, speedups in rows.items():
        assert speedups[0] == pytest.approx(1.0)
        # Monotone-ish growth and a real win at 8 workers.
        assert speedups[-1] > 2.0, f"{name} does not scale"
        assert speedups[-1] <= 8.001
        # Speedup should not collapse as workers are added.
        assert speedups[-1] >= max(speedups) * 0.7
