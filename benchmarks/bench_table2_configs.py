"""Table 2: the automatically tuned sort configurations per architecture
and their parallel scalability.

For each machine profile we report the tuned algorithm composition in
the paper's notation (e.g. ``IS(600) QS(1420) 2MS(inf)``) and the
speedup of the tuned configuration on that machine's own core count
relative to one core.

Shape expectations: the compositions *differ across architectures*; the
Niagara profile (cheap scheduling relative to compute) leans on parallel
recursive algorithms, while the Intel profiles use more sequential
bottom layers; multi-core profiles show real scalability (paper: 1.92 on
2-core Mobile, 5.69-7.79 on the 8-way machines).
"""

import random

import pytest
from harness import fmt_row, write_report

from bench_table1_crosstrain import tuned_configs
from repro.apps import sort as sort_app
from repro.compiler.config import site_key
from repro.runtime import MACHINES, WorkStealingScheduler

RUN_SIZE = 100_000


def build_table():
    program = sort_app.build_program()
    configs = tuned_configs()
    rows = []
    for name, config in configs.items():
        machine = MACHINES[name]
        rng = random.Random(2)
        inputs = sort_app.input_generator(RUN_SIZE, rng)
        graph = program.transform("Sort").run(inputs, config).graph
        scheduler = WorkStealingScheduler(machine)
        base = scheduler.run(graph, workers=1).makespan
        native = scheduler.run(graph, workers=machine.cores).makespan
        rows.append(
            {
                "machine": name,
                "cores": machine.cores,
                "scalability": base / native,
                "config": sort_app.describe_config(config),
            }
        )
    return rows


def test_table2_configs(benchmark):
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    lines = [
        f"Table 2: tuned sort configurations per architecture (n={RUN_SIZE})",
        fmt_row(["machine", "cores", "scalability", "algorithm choices"],
                [10, 6, 12, 40]),
    ]
    for row in rows:
        lines.append(
            fmt_row(
                [
                    row["machine"],
                    row["cores"],
                    f"{row['scalability']:.2f}",
                    row["config"],
                ],
                [10, 6, 12, 40],
            )
        )
    write_report("table2_configs", lines)

    by_machine = {row["machine"]: row for row in rows}
    # Configurations are architecture-dependent (the paper's key claim).
    assert len({row["config"] for row in rows}) >= 2
    # Single-core profile cannot "scale"; multi-core profiles must.
    assert by_machine["xeon1"]["scalability"] == pytest.approx(1.0)
    assert by_machine["xeon8"]["scalability"] > 3.0
    assert by_machine["niagara"]["scalability"] > 3.0
    assert 1.0 < by_machine["mobile"]["scalability"] <= 2.001
